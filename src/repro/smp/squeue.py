"""Properly synchronized queues — a CC2020-named PDC topic.

CC2020's draft PDC competencies (paper §II-A) call out "properly synchronized
queues" explicitly.  :class:`SynchronizedQueue` is a bounded MPSC/MPMC queue
with close semantics, built on a monitor; it is also the channel type used by
:mod:`repro.mp`'s in-process MPI runtime and :mod:`repro.net`'s simulated
sockets, so its correctness is load-bearing for the whole substrate.
"""

from __future__ import annotations

import collections
import threading
from typing import Deque, Generic, Iterator, Optional, TypeVar

T = TypeVar("T")

__all__ = ["SynchronizedQueue", "QueueClosed", "QueueTimeout"]


class QueueClosed(RuntimeError):
    """Raised by :meth:`SynchronizedQueue.get` once a closed queue drains."""


class QueueTimeout(TimeoutError):
    """Raised when a blocking queue operation exceeds its timeout."""


class SynchronizedQueue(Generic[T]):
    """A bounded, closeable FIFO queue safe for many producers and consumers.

    Semantics chosen for teachability and for use as a message channel:

    - ``put`` blocks while full; raises :class:`QueueClosed` if closed.
    - ``get`` blocks while empty; after :meth:`close`, remaining items are
      still delivered ("drain then fail"), then :class:`QueueClosed` is
      raised — the same shape as Go channels, which makes pipeline labs
      natural to write.
    - Unbounded if ``capacity`` is ``None``.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self._items: Deque[T] = collections.deque()
        self._cond = threading.Condition()
        self._closed = False
        self.total_put = 0
        self.total_got = 0
        self.max_depth = 0

    def put(self, item: T, timeout: Optional[float] = None) -> None:
        """Enqueue ``item``; blocks while the queue is at capacity."""
        with self._cond:
            if self._closed:
                raise QueueClosed("put on closed queue")
            if self.capacity is not None:
                ok = self._cond.wait_for(
                    lambda: len(self._items) < self.capacity or self._closed,
                    timeout,
                )
                if not ok:
                    raise QueueTimeout("put timed out")
                if self._closed:
                    raise QueueClosed("queue closed while blocked in put")
            self._items.append(item)
            self.total_put += 1
            if len(self._items) > self.max_depth:
                self.max_depth = len(self._items)
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> T:
        """Dequeue the oldest item; blocks while empty.

        Raises :class:`QueueClosed` once the queue is closed *and* empty.
        """
        with self._cond:
            ok = self._cond.wait_for(
                lambda: len(self._items) > 0 or self._closed, timeout
            )
            if not ok:
                raise QueueTimeout("get timed out")
            if not self._items:
                raise QueueClosed("queue closed and drained")
            item = self._items.popleft()
            self.total_got += 1
            self._cond.notify()
            return item

    def try_get(self) -> Optional[T]:
        """Non-blocking dequeue; ``None`` when empty (even if closed)."""
        with self._cond:
            if not self._items:
                return None
            item = self._items.popleft()
            self.total_got += 1
            self._cond.notify()
            return item

    def peek(self) -> Optional[T]:
        """Return the oldest item without removing it, or ``None``."""
        with self._cond:
            return self._items[0] if self._items else None

    def close(self) -> None:
        """Close the queue: future puts fail; gets drain remaining items."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def __iter__(self) -> Iterator[T]:
        """Iterate, blocking for items, until the queue closes and drains."""
        while True:
            try:
                yield self.get()
            except QueueClosed:
                return

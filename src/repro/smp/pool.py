"""An OpenMP-flavoured thread team: ``parallel_for`` and ``parallel_reduce``.

The LAU case-study course (paper §IV-A, part 2) teaches multicore programming
with Pthreads and OpenMP: worksharing loops, schedule clauses, and
reductions.  :func:`parallel_for` mirrors ``#pragma omp parallel for
schedule(...)``; :func:`parallel_reduce` mirrors the ``reduction`` clause.

Because CPython's GIL serializes pure-Python bytecode, these constructs teach
the *decomposition and scheduling model* (iteration spaces, chunking,
load balance) rather than wall-clock speedup; the chunk traces they record
are what labs grade.  NumPy-heavy loop bodies do release the GIL and can see
real speedups.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable, Dict, Generic, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "Schedule",
    "ThreadTeam",
    "parallel_for",
    "parallel_map",
    "parallel_reduce",
]


class Schedule(enum.Enum):
    """OpenMP loop schedules.

    - ``STATIC``: iterations pre-divided into equal contiguous chunks.
    - ``DYNAMIC``: fixed-size chunks handed out first-come-first-served.
    - ``GUIDED``: exponentially shrinking chunks (large first, then smaller),
      trading scheduling overhead against load balance.
    """

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


def _static_chunks(n: int, num_threads: int) -> List[range]:
    """Split ``range(n)`` into ``num_threads`` near-equal contiguous chunks."""
    base, extra = divmod(n, num_threads)
    chunks: List[range] = []
    start = 0
    for t in range(num_threads):
        size = base + (1 if t < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


class _ChunkDispenser:
    """Thread-safe source of iteration chunks for dynamic/guided schedules."""

    def __init__(self, n: int, schedule: Schedule, chunk: int, num_threads: int):
        self._n = n
        self._next = 0
        self._schedule = schedule
        self._chunk = max(1, chunk)
        self._num_threads = num_threads
        self._lock = threading.Lock()

    def take(self) -> Optional[range]:
        """Claim the next chunk, or ``None`` when the space is exhausted."""
        with self._lock:
            if self._next >= self._n:
                return None
            if self._schedule is Schedule.GUIDED:
                remaining = self._n - self._next
                size = max(self._chunk, remaining // self._num_threads)
            else:
                size = self._chunk
            start = self._next
            self._next = min(self._n, start + size)
            return range(start, self._next)


class ThreadTeam:
    """A reusable team of worker threads, OpenMP's ``parallel`` region.

    The team records, per worker, which iteration chunks it executed
    (:attr:`chunk_trace`), so scheduling behaviour is observable and
    testable.
    """

    def __init__(self, num_threads: int = 4) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be positive")
        self.num_threads = num_threads
        self.chunk_trace: Dict[int, List[range]] = {}

    def parallel_for(
        self,
        n: int,
        body: Callable[[int], None],
        schedule: Schedule = Schedule.STATIC,
        chunk: int = 1,
    ) -> Dict[int, List[range]]:
        """Execute ``body(i)`` for ``i in range(n)`` across the team.

        Returns the per-thread chunk trace.  Exceptions in any worker are
        re-raised in the caller after all workers join (first one wins),
        matching the "an uncaught exception terminates the region" model.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        trace: Dict[int, List[range]] = {t: [] for t in range(self.num_threads)}
        errors: List[BaseException] = []
        err_lock = threading.Lock()

        if schedule is Schedule.STATIC and chunk == 1:
            assigned = _static_chunks(n, self.num_threads)

            def run_static(tid: int) -> None:
                chunk_range = assigned[tid]
                if len(chunk_range) == 0:
                    return
                trace[tid].append(chunk_range)
                try:
                    for i in chunk_range:
                        body(i)
                except BaseException as exc:  # noqa: BLE001 - relayed to caller
                    with err_lock:
                        errors.append(exc)

            workers = [
                threading.Thread(target=run_static, args=(t,), daemon=True)
                for t in range(self.num_threads)
            ]
        else:
            if schedule is Schedule.STATIC:
                # Static with an explicit chunk size: round-robin chunks.
                dispenser = None
                all_chunks = [
                    range(s, min(n, s + chunk)) for s in range(0, n, chunk)
                ]
                per_thread = {
                    t: all_chunks[t :: self.num_threads]
                    for t in range(self.num_threads)
                }

                def run_rr(tid: int) -> None:
                    try:
                        for chunk_range in per_thread[tid]:
                            trace[tid].append(chunk_range)
                            for i in chunk_range:
                                body(i)
                    except BaseException as exc:  # noqa: BLE001
                        with err_lock:
                            errors.append(exc)

                workers = [
                    threading.Thread(target=run_rr, args=(t,), daemon=True)
                    for t in range(self.num_threads)
                ]
            else:
                dispenser = _ChunkDispenser(n, schedule, chunk, self.num_threads)

                def run_dyn(tid: int) -> None:
                    try:
                        while True:
                            chunk_range = dispenser.take()
                            if chunk_range is None:
                                return
                            trace[tid].append(chunk_range)
                            for i in chunk_range:
                                body(i)
                    except BaseException as exc:  # noqa: BLE001
                        with err_lock:
                            errors.append(exc)

                workers = [
                    threading.Thread(target=run_dyn, args=(t,), daemon=True)
                    for t in range(self.num_threads)
                ]

        for w in workers:
            w.start()
        for w in workers:
            w.join()
        if errors:
            raise errors[0]
        self.chunk_trace = trace
        return trace

    def load_imbalance(self) -> float:
        """Max/mean iteration count across workers for the last loop.

        1.0 is perfect balance; large values indicate skew — the quantity a
        ``schedule`` clause exists to control.
        """
        counts = [
            sum(len(c) for c in chunks) for chunks in self.chunk_trace.values()
        ]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0


def parallel_for(
    n: int,
    body: Callable[[int], None],
    num_threads: int = 4,
    schedule: Schedule = Schedule.STATIC,
    chunk: int = 1,
) -> ThreadTeam:
    """One-shot ``#pragma omp parallel for``; returns the team for inspection."""
    team = ThreadTeam(num_threads)
    team.parallel_for(n, body, schedule=schedule, chunk=chunk)
    return team


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    num_threads: int = 4,
    schedule: Schedule = Schedule.STATIC,
    chunk: int = 1,
) -> List[R]:
    """Map ``fn`` over ``items`` with a worksharing loop; preserves order."""
    out: List[Optional[R]] = [None] * len(items)

    def body(i: int) -> None:
        out[i] = fn(items[i])

    parallel_for(len(items), body, num_threads=num_threads, schedule=schedule, chunk=chunk)
    return out  # type: ignore[return-value]


class _ReductionSlot(Generic[R]):
    """Per-thread partial accumulator (models OpenMP's private copies)."""

    def __init__(self, identity: R) -> None:
        self.value = identity


def parallel_reduce(
    n: int,
    mapper: Callable[[int], R],
    combine: Callable[[R, R], R],
    identity: R,
    num_threads: int = 4,
    schedule: Schedule = Schedule.STATIC,
    chunk: int = 1,
) -> R:
    """``reduction`` clause: combine ``mapper(i)`` over ``range(n)``.

    Each worker reduces into a private copy initialized to ``identity``;
    the private copies are combined at the join, exactly the OpenMP model.
    ``combine`` must be associative for the result to be deterministic.
    """
    slots: Dict[int, _ReductionSlot[R]] = {}
    slots_lock = threading.Lock()

    def body(i: int) -> None:
        tid = threading.get_ident()
        with slots_lock:
            slot = slots.setdefault(tid, _ReductionSlot(identity))
        slot.value = combine(slot.value, mapper(i))

    parallel_for(n, body, num_threads=num_threads, schedule=schedule, chunk=chunk)
    result = identity
    for slot in slots.values():
        result = combine(result, slot.value)
    return result

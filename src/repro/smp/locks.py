"""Instrumented mutual-exclusion primitives.

Each lock counts acquisitions and contended acquisitions, so coursework can
*measure* contention rather than hand-wave about it — the "performance
measurement" thread that runs through the LAU case-study course (paper
§IV-A).  All locks are context managers.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.runtime import RunContext
from repro.runtime.clock import Clock, MonotonicClock
from repro.sanitizers import hooks

__all__ = [
    "InstrumentedLock",
    "SpinLock",
    "TicketLock",
    "CountingSemaphore",
    "ReaderWriterLock",
]


class InstrumentedLock:
    """A mutex that records acquisition and contention statistics.

    Attributes
    ----------
    acquisitions:
        Total successful ``acquire`` calls.
    contended:
        Acquisitions that found the lock already held (an uncontended
        ``acquire`` succeeds on the fast path).
    """

    def __init__(
        self, name: str = "lock", context: Optional[RunContext] = None
    ) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._meta = threading.Lock()
        self.acquisitions = 0
        self.contended = 0
        self._owner: Optional[int] = None
        if context is not None:
            self._acq_counter = context.registry.counter(
                f"smp.lock.{name}.acquisitions"
            )
            self._cont_counter = context.registry.counter(
                f"smp.lock.{name}.contended"
            )
        else:
            self._acq_counter = None
            self._cont_counter = None

    def acquire(self, timeout: Optional[float] = None) -> bool:
        """Acquire the lock; returns ``False`` only on timeout."""
        fast = self._lock.acquire(blocking=False)
        if not fast:
            with self._meta:
                self.contended += 1
            if self._cont_counter is not None:
                self._cont_counter.inc()
            if timeout is None:
                self._lock.acquire()
            elif not self._lock.acquire(timeout=timeout):
                return False
        with self._meta:
            self.acquisitions += 1
            self._owner = threading.get_ident()
        if self._acq_counter is not None:
            self._acq_counter.inc()
        hooks.on_acquire(self)
        return True

    def release(self) -> None:
        """Release the lock.  Raises ``RuntimeError`` if not held."""
        hooks.on_release(self)
        with self._meta:
            self._owner = None
        self._lock.release()

    def locked(self) -> bool:
        """Whether the lock is currently held by some thread."""
        return self._lock.locked()

    @property
    def owner(self) -> Optional[int]:
        """Thread id of the current holder, or ``None``."""
        with self._meta:
            return self._owner

    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that were contended (0.0 if none)."""
        with self._meta:
            if self.acquisitions == 0:
                return 0.0
            return self.contended / self.acquisitions

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InstrumentedLock({self.name!r}, acquisitions={self.acquisitions}, "
            f"contended={self.contended})"
        )


class SpinLock:
    """A test-and-set spin lock with a spin counter.

    Spinning in pure Python is never a performance win; the point is the
    *algorithm* — the same one students later see in xv6 or in textbook
    MESI-based spinlock discussions.  ``spins`` records wasted iterations,
    the quantity a cache-coherence discussion wants to minimize.
    """

    def __init__(
        self, yield_every: int = 64, clock: Optional[Clock] = None
    ) -> None:
        self._flag = threading.Lock()  # stands in for the TAS word
        self.spins = 0
        self._meta = threading.Lock()
        self._yield_every = max(1, yield_every)
        self._clock = clock if clock is not None else MonotonicClock()

    def acquire(self) -> None:
        """Spin (test-and-set loop) until the lock is obtained."""
        local_spins = 0
        while not self._flag.acquire(blocking=False):
            local_spins += 1
            if local_spins % self._yield_every == 0:
                self._clock.sleep(0)  # yield the GIL so the holder can progress
        if local_spins:
            with self._meta:
                self.spins += local_spins
        hooks.on_acquire(self)

    def release(self) -> None:
        """Release the lock."""
        hooks.on_release(self)
        self._flag.release()

    def locked(self) -> bool:
        """Whether the lock is currently held."""
        return self._flag.locked()

    def __enter__(self) -> "SpinLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class TicketLock:
    """A FIFO ticket lock: fair admission in take-a-number order.

    Demonstrates the fairness/locality trade-off versus :class:`SpinLock`.
    The implementation uses a condition variable instead of spinning so it is
    GIL-friendly, but preserves strict ticket order.
    """

    def __init__(self) -> None:
        self._next_ticket = 0
        self._now_serving = 0
        self._cond = threading.Condition()

    def acquire(self) -> int:
        """Take a ticket and wait until it is served; returns the ticket."""
        with self._cond:
            ticket = self._next_ticket
            self._next_ticket += 1
            while self._now_serving != ticket:
                self._cond.wait()
            hooks.on_acquire(self)
            return ticket

    def release(self) -> None:
        """Serve the next ticket."""
        hooks.on_release(self)
        with self._cond:
            self._now_serving += 1
            self._cond.notify_all()

    @property
    def queue_length(self) -> int:
        """Number of threads holding or waiting on tickets."""
        with self._cond:
            return self._next_ticket - self._now_serving

    def __enter__(self) -> "TicketLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class CountingSemaphore:
    """Dijkstra's counting semaphore with P/V aliases and a waiter count.

    SE2014's "Computing Essentials" knowledge area names semaphores as an
    essential concurrency primitive (paper Table III); this class is the
    lab-facing implementation.
    """

    def __init__(
        self, permits: int = 1, clock: Optional[Clock] = None
    ) -> None:
        if permits < 0:
            raise ValueError("permits must be non-negative")
        self._permits = permits
        self._cond = threading.Condition()
        self._waiters = 0
        self._clock = clock if clock is not None else MonotonicClock()

    def acquire(self, timeout: Optional[float] = None) -> bool:
        """P / wait: take a permit, blocking while none are available."""
        with self._cond:
            self._waiters += 1
            try:
                deadline = (
                    None if timeout is None
                    else self._clock.now() + timeout
                )
                while self._permits == 0:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - self._clock.now()
                        if remaining <= 0:
                            return False
                    self._clock.wait_on(self._cond, remaining)
                self._permits -= 1
                hooks.on_sem_wait(self)
                return True
            finally:
                self._waiters -= 1

    def release(self, n: int = 1) -> None:
        """V / signal: return ``n`` permits and wake waiters."""
        if n < 1:
            raise ValueError("must release at least one permit")
        hooks.on_sem_post(self)
        with self._cond:
            self._permits += n
            self._cond.notify(n)

    # Classic Dijkstra names, used verbatim in OS course materials.
    P = acquire
    V = release
    wait = acquire
    signal = release

    @property
    def permits(self) -> int:
        """Permits currently available."""
        with self._cond:
            return self._permits

    @property
    def waiters(self) -> int:
        """Threads currently blocked in :meth:`acquire`."""
        with self._cond:
            return self._waiters

    def __enter__(self) -> "CountingSemaphore":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class ReaderWriterLock:
    """A writer-preference readers–writer lock.

    Writer preference prevents writer starvation, making this the variant
    OS courses use to *discuss* starvation (paper §IV-B: "deadline and
    starvation").  Statistics expose maximum reader concurrency observed.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self.max_concurrent_readers = 0

    def acquire_read(self) -> None:
        """Enter the critical section as a reader (shared mode)."""
        with self._cond:
            while self._writer_active or self._writers_waiting > 0:
                self._cond.wait()
            self._readers += 1
            if self._readers > self.max_concurrent_readers:
                self.max_concurrent_readers = self._readers
        hooks.on_acquire(self)

    def release_read(self) -> None:
        """Leave the shared critical section."""
        # Readers publish non-exclusively: concurrent readers must not
        # erase each other's clocks from the sanitizer's sync state.
        hooks.on_release(self, exclusive=False)
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Enter the critical section as the exclusive writer."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers > 0:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        hooks.on_acquire(self)

    def release_write(self) -> None:
        """Leave the exclusive critical section."""
        hooks.on_release(self)
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    class _ReadGuard:
        def __init__(self, rw: "ReaderWriterLock") -> None:
            self._rw = rw

        def __enter__(self) -> None:
            self._rw.acquire_read()

        def __exit__(self, *exc: object) -> None:
            self._rw.release_read()

    class _WriteGuard:
        def __init__(self, rw: "ReaderWriterLock") -> None:
            self._rw = rw

        def __enter__(self) -> None:
            self._rw.acquire_write()

        def __exit__(self, *exc: object) -> None:
            self._rw.release_write()

    def read_locked(self) -> "ReaderWriterLock._ReadGuard":
        """Context manager acquiring the lock in shared mode."""
        return ReaderWriterLock._ReadGuard(self)

    def write_locked(self) -> "ReaderWriterLock._WriteGuard":
        """Context manager acquiring the lock in exclusive mode."""
        return ReaderWriterLock._WriteGuard(self)

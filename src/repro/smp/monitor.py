"""Monitors and condition variables (Hoare's structuring discipline).

SE2014 names monitors, alongside semaphores, as *the* essential concurrency
primitives (paper Table III).  :class:`Monitor` packages a mutex with named
condition variables and a decorator that turns methods into monitor entries,
so lab code reads like the textbook pseudocode.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Generic, List, Optional, TypeVar

T = TypeVar("T")

__all__ = ["ConditionVariable", "Monitor", "BoundedBuffer"]


class ConditionVariable:
    """A Mesa-style condition variable bound to an external mutex.

    Mesa (signal-and-continue) semantics are what Python, Java, and every
    mainstream OS expose, hence the loop-around-wait idiom this class's docs
    and tests drill: ``while not predicate: cv.wait()``.
    """

    def __init__(self, lock: threading.RLock | threading.Lock) -> None:
        self._cond = threading.Condition(lock)
        self.signals = 0
        self.waits = 0

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Atomically release the mutex and sleep; reacquire before return."""
        self.waits += 1
        return self._cond.wait(timeout)

    def wait_for(
        self, predicate: Callable[[], bool], timeout: Optional[float] = None
    ) -> bool:
        """Loop-wait until ``predicate()`` holds (the safe Mesa idiom)."""
        self.waits += 1
        return self._cond.wait_for(predicate, timeout)

    def signal(self) -> None:
        """Wake one waiter (Mesa: the waiter re-checks its predicate)."""
        self.signals += 1
        self._cond.notify()

    def broadcast(self) -> None:
        """Wake all waiters."""
        self.signals += 1
        self._cond.notify_all()

    # Java-flavoured aliases used by some course materials.
    notify = signal
    notify_all = broadcast


class Monitor:
    """A monitor: one implicit mutex + named condition variables.

    Subclass and wrap public methods with :meth:`entry`, or use the instance
    as a context manager for ad-hoc critical sections::

        class Account(Monitor):
            def __init__(self):
                super().__init__()
                self.balance = 0
                self.nonzero = self.condition("nonzero")

            @Monitor.entry
            def deposit(self, amount):
                self.balance += amount
                self.nonzero.broadcast()

            @Monitor.entry
            def withdraw(self, amount):
                self.nonzero.wait_for(lambda: self.balance >= amount)
                self.balance -= amount
    """

    def __init__(self) -> None:
        self._monitor_lock = threading.RLock()
        self._conditions: Dict[str, ConditionVariable] = {}
        self.entries = 0

    def condition(self, name: str) -> ConditionVariable:
        """Create (or fetch) the condition variable called ``name``."""
        if name not in self._conditions:
            self._conditions[name] = ConditionVariable(self._monitor_lock)
        return self._conditions[name]

    @staticmethod
    def entry(method: Callable[..., T]) -> Callable[..., T]:
        """Decorator: run ``method`` with the monitor lock held."""

        def wrapper(self: "Monitor", *args: Any, **kwargs: Any) -> T:
            with self._monitor_lock:
                self.entries += 1
                return method(self, *args, **kwargs)

        wrapper.__name__ = method.__name__
        wrapper.__doc__ = method.__doc__
        return wrapper

    def __enter__(self) -> "Monitor":
        self._monitor_lock.acquire()
        self.entries += 1
        return self

    def __exit__(self, *exc: object) -> None:
        self._monitor_lock.release()


class BoundedBuffer(Monitor, Generic[T]):
    """The producer–consumer bounded buffer, written as a monitor.

    The canonical worked example in every OS course the paper surveys; also
    the "properly synchronized queue" CC2020 names as a recommended topic.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: List[T] = []
        self._not_full = self.condition("not_full")
        self._not_empty = self.condition("not_empty")
        self.total_put = 0
        self.total_got = 0

    @Monitor.entry
    def put(self, item: T) -> None:
        """Deposit ``item``, blocking while the buffer is full."""
        self._not_full.wait_for(lambda: len(self._items) < self.capacity)
        self._items.append(item)
        self.total_put += 1
        self._not_empty.signal()

    @Monitor.entry
    def get(self) -> T:
        """Remove and return the oldest item, blocking while empty."""
        self._not_empty.wait_for(lambda: len(self._items) > 0)
        item = self._items.pop(0)
        self.total_got += 1
        self._not_full.signal()
        return item

    @Monitor.entry
    def size(self) -> int:
        """Number of items currently buffered."""
        return len(self._items)

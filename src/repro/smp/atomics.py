"""Atomic primitives built on a single internal mutex.

CPython does not expose hardware atomics, so these classes model the *API and
semantics* of atomic operations (the level at which the CS2013 PDC knowledge
area and the Table I "Atomicity" row teach them).  Every read-modify-write is
performed under one lock, which makes each operation linearizable; the
sequence of successful operations therefore has a total order, which tests and
labs can rely on.

The classes deliberately mirror the shape of ``java.util.concurrent.atomic``
and C++ ``std::atomic``: ``load``/``store``, ``fetch_add``,
``compare_and_swap``, ``exchange``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generic, TypeVar

T = TypeVar("T")

__all__ = ["AtomicCell", "AtomicCounter", "AtomicFlag"]


class AtomicCell(Generic[T]):
    """A linearizable single-value cell.

    Supports the classic atomic register operations plus compare-and-swap,
    the universal primitive students meet when studying lock-free algorithms.
    """

    def __init__(self, value: T) -> None:
        self._value = value
        self._lock = threading.Lock()
        self._cas_failures = 0

    def load(self) -> T:
        """Atomically read the current value."""
        with self._lock:
            return self._value

    def store(self, value: T) -> None:
        """Atomically overwrite the current value."""
        with self._lock:
            self._value = value

    def exchange(self, value: T) -> T:
        """Atomically set ``value`` and return the previous value."""
        with self._lock:
            old = self._value
            self._value = value
            return old

    def compare_and_swap(self, expected: T, new: T) -> bool:
        """CAS: set ``new`` iff the current value equals ``expected``.

        Returns ``True`` on success.  Failed attempts are counted in
        :attr:`cas_failures`, which labs use to visualize contention.
        """
        with self._lock:
            if self._value == expected:
                self._value = new
                return True
            self._cas_failures += 1
            return False

    def update(self, fn: Callable[[T], T]) -> T:
        """Atomically apply ``fn`` to the value; return the new value.

        Equivalent to a CAS retry loop that always succeeds (the lock stands
        in for the loop).
        """
        with self._lock:
            self._value = fn(self._value)
            return self._value

    @property
    def cas_failures(self) -> int:
        """Number of failed :meth:`compare_and_swap` attempts so far."""
        with self._lock:
            return self._cas_failures

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicCell({self.load()!r})"


class AtomicCounter:
    """An atomic integer counter with fetch-and-add semantics.

    The canonical counterexample to "`x += 1` is one operation": labs pair
    this class with :class:`repro.smp.racedetect.SharedVariable` to contrast
    a racy increment with an atomic one.
    """

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def fetch_add(self, delta: int = 1) -> int:
        """Atomically add ``delta``; return the value *before* the add."""
        with self._lock:
            old = self._value
            self._value += delta
            return old

    def add_fetch(self, delta: int = 1) -> int:
        """Atomically add ``delta``; return the value *after* the add."""
        with self._lock:
            self._value += delta
            return self._value

    def increment(self) -> int:
        """Atomically add one; return the new value."""
        return self.add_fetch(1)

    def decrement(self) -> int:
        """Atomically subtract one; return the new value."""
        return self.add_fetch(-1)

    @property
    def value(self) -> int:
        """The current count (atomic read)."""
        with self._lock:
            return self._value

    def reset(self, value: int = 0) -> None:
        """Atomically reset the counter to ``value``."""
        with self._lock:
            self._value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicCounter({self.value})"


class AtomicFlag:
    """A test-and-set boolean flag (the primitive under spin locks)."""

    def __init__(self) -> None:
        self._set = False
        self._lock = threading.Lock()

    def test_and_set(self) -> bool:
        """Atomically set the flag; return its *previous* state."""
        with self._lock:
            old = self._set
            self._set = True
            return old

    def clear(self) -> None:
        """Reset the flag to the unset state."""
        with self._lock:
            self._set = False

    def is_set(self) -> bool:
        """Atomically read the flag."""
        with self._lock:
            return self._set

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicFlag(set={self.is_set()})"


def atomic_max(cell: AtomicCell[Any], candidate: Any) -> Any:
    """Atomically raise ``cell`` to ``candidate`` if larger; return the max.

    A small worked example of building a derived atomic operation from
    :meth:`AtomicCell.update`, used in the parallel-reduction labs.
    """
    return cell.update(lambda cur: candidate if candidate > cur else cur)

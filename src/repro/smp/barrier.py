"""Barrier synchronization.

Barriers are the workhorse of bulk-synchronous shared-memory programs (the
OpenMP part of the LAU case-study course) and of :mod:`repro.mp`'s collective
semantics.  Two classic constructions are provided: a reusable cyclic barrier
and the sense-reversing barrier from Mellor-Crummey & Scott, which textbooks
use to show *why* naive counter barriers break on reuse.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.sanitizers import hooks

__all__ = ["CyclicBarrier", "SenseReversingBarrier", "BrokenBarrier"]


class BrokenBarrier(RuntimeError):
    """Raised when a barrier is aborted while threads are waiting."""


class CyclicBarrier:
    """A reusable barrier for a fixed party of threads.

    Optionally runs ``action`` exactly once per generation, by the last
    thread to arrive (mirrors ``java.util.concurrent.CyclicBarrier``).
    """

    def __init__(self, parties: int, action: Optional[Callable[[], None]] = None):
        if parties < 1:
            raise ValueError("parties must be positive")
        self.parties = parties
        self._action = action
        self._cond = threading.Condition()
        self._count = 0
        self._generation = 0
        self._broken = False

    def wait(self, timeout: Optional[float] = None) -> int:
        """Block until ``parties`` threads have called :meth:`wait`.

        Returns the arrival index within this generation (``parties - 1``
        for the first arrival, ``0`` for the last — the thread that trips
        the barrier and runs the action).
        """
        hooks.on_barrier_arrive(self)
        with self._cond:
            if self._broken:
                raise BrokenBarrier("barrier is broken")
            generation = self._generation
            self._count += 1
            index = self.parties - self._count
            if self._count == self.parties:
                if self._action is not None:
                    self._action()
                self._generation += 1
                self._count = 0
                self._cond.notify_all()
                hooks.on_barrier_depart(self)
                return index
            while generation == self._generation and not self._broken:
                if not self._cond.wait(timeout):
                    self._broken = True
                    self._cond.notify_all()
                    raise BrokenBarrier("barrier timed out")
            if self._broken:
                raise BrokenBarrier("barrier is broken")
            hooks.on_barrier_depart(self)
            return index

    def abort(self) -> None:
        """Break the barrier, waking all waiters with :class:`BrokenBarrier`."""
        with self._cond:
            self._broken = True
            self._cond.notify_all()

    @property
    def generation(self) -> int:
        """Number of completed barrier episodes."""
        with self._cond:
            return self._generation

    @property
    def waiting(self) -> int:
        """Threads currently blocked at the barrier."""
        with self._cond:
            return self._count


class SenseReversingBarrier:
    """The sense-reversing centralized barrier (MCS 1991, Algorithm 7).

    Each thread keeps a private *sense* bit that it flips on every episode;
    the barrier releases a generation by flipping its global sense.  The
    private bit is held in thread-local storage so callers use the natural
    ``barrier.wait()`` API.
    """

    def __init__(self, parties: int) -> None:
        if parties < 1:
            raise ValueError("parties must be positive")
        self.parties = parties
        self._count = parties
        self._sense = False
        self._cond = threading.Condition()
        self._local = threading.local()
        self.episodes = 0

    def wait(self) -> None:
        """Block until all parties arrive; reusable across episodes."""
        my_sense = not getattr(self._local, "sense", False)
        self._local.sense = my_sense
        hooks.on_barrier_arrive(self)
        with self._cond:
            self._count -= 1
            if self._count == 0:
                # Last arrival: reset the count and reverse the global sense.
                self._count = self.parties
                self._sense = my_sense
                self.episodes += 1
                self._cond.notify_all()
            else:
                while self._sense != my_sense:
                    self._cond.wait()
        hooks.on_barrier_depart(self)

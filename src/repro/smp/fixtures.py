"""Source-level fixture programs for static-vs-dynamic cross-validation.

The model checker (:mod:`repro.smp.interleave`) proves facts about
*scripted* programs; the static analyzer (:mod:`repro.analysis`) judges
*source*.  This module bridges them: every scripted program gets a
source-level **twin** written with real ``threading`` primitives, plus a
corpus of seeded race / deadlock / hygiene examples — one per PDC-Lint
rule — that the analyzer must flag with zero false negatives (and clean
variants it must stay silent on).

Three kinds of cross-validation ride on these fixtures:

- **races** — the explorer shows ``racy_counter_program`` loses updates;
  PDC101 must fire on its twin.  The explorer proves Peterson's algorithm
  race-free; the lock-based twin must come back clean, while the *literal*
  flags/turn twin documents the Eraser trade-off: lockset analysis cannot
  certify ad-hoc synchronization, so it flags a program the model checker
  proves correct (``known_false_positive=True``).
- **deadlock** — :func:`replay_lock_trace` executes a twin's entry points
  with traced locks feeding the dynamic
  :class:`repro.smp.deadlock.LockGraph`; its cyclicity verdict must match
  PDC102's.
- **hygiene** — each PDC2xx rule has one seeded example.
"""

from __future__ import annotations

import builtins
import dataclasses
import textwrap
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.smp.deadlock import LockGraph

__all__ = ["FixtureProgram", "FIXTURES", "fixture", "all_fixtures",
           "scripted_twins", "replay_lock_trace", "MultiFileFixture",
           "MULTIFILE_FIXTURES", "multifile_fixture",
           "all_multifile_fixtures"]


@dataclasses.dataclass(frozen=True)
class FixtureProgram:
    """One standalone fixture module and what the analyzer must say."""

    name: str
    source: str
    #: Rule ids that MUST appear in the analyzer's findings (∅ == clean).
    expect_rules: FrozenSet[str]
    description: str
    #: Name of the scripted program in :mod:`repro.smp.interleave` this
    #: fixture is the source-level twin of (``None`` for hygiene seeds).
    scripted_twin: Optional[str] = None
    #: Functions to call, in order, when replaying the lock trace.
    entrypoints: Tuple[str, ...] = ()
    #: The analyzer flags it although the dynamic analysis proves it safe
    #: (the documented lockset-analysis limitation, not a bug).
    known_false_positive: bool = False
    #: Entry function for the dynamic sanitizer harness
    #: (:func:`repro.sanitizers.run_fixture`).  ``None`` means the fixture
    #: is not executable under the inline runner (e.g. it would spin).
    dynamic_entry: Optional[str] = None
    #: PDC3xx rule ids the sanitizer run MUST report (∅ == dynamically clean).
    expect_dynamic: FrozenSet[str] = frozenset()
    #: Rule ids the model checker (:mod:`repro.verify`) must reach on at
    #: least one schedule.  ``None`` (the default) means "same as
    #: ``expect_dynamic``" — set it explicitly when exhaustive search can
    #: reach states the single inline schedule cannot.
    verify_expect: Optional[FrozenSet[str]] = None
    #: True when bounded exploration drains the whole schedule tree with
    #: no step-cap truncation, making the verdict a *proof* over every
    #: interleaving.  False for busy-wait fixtures whose tree is
    #: infinite: there the checker's clean verdict is a bounded
    #: (CHESS-style) exoneration, not an exhaustive one.
    verify_complete: bool = True
    #: Per-task step cap override for the checker (spin loops need a
    #: tight one; ``None`` uses the explorer default).
    verify_max_steps: Optional[int] = None
    #: Schedule-count budget override for the checker.
    verify_budget: Optional[int] = None

    @property
    def checker_expect(self) -> FrozenSet[str]:
        """What the model checker must reach (defaults to the dynamic
        expectation: anything one schedule shows, search must find)."""
        if self.verify_expect is not None:
            return self.verify_expect
        return self.expect_dynamic


FIXTURES: Dict[str, FixtureProgram] = {}


def _register(fix: FixtureProgram) -> FixtureProgram:
    if fix.name in FIXTURES:
        raise ValueError(f"duplicate fixture {fix.name}")
    FIXTURES[fix.name] = fix
    return fix


def fixture(name: str) -> FixtureProgram:
    """Look up one fixture by name."""
    try:
        return FIXTURES[name]
    except KeyError:
        raise KeyError(
            f"no fixture {name!r}; known: {', '.join(sorted(FIXTURES))}"
        ) from None


def all_fixtures() -> List[FixtureProgram]:
    """Every registered fixture, by name."""
    return [FIXTURES[k] for k in sorted(FIXTURES)]


def scripted_twins() -> Dict[str, List[FixtureProgram]]:
    """Map scripted-program name -> its source-level twin fixtures."""
    twins: Dict[str, List[FixtureProgram]] = {}
    for fix in all_fixtures():
        if fix.scripted_twin:
            twins.setdefault(fix.scripted_twin, []).append(fix)
    return twins


def _src(text: str) -> str:
    return textwrap.dedent(text).lstrip()


# -- twins of the interleave explorer's scripted programs --------------------

_register(FixtureProgram(
    name="racy_counter_twin",
    scripted_twin="racy_counter_program",
    expect_rules=frozenset({"PDC101"}),
    dynamic_entry="main",
    expect_dynamic=frozenset({"PDC301"}),
    description=(
        "Two threads increment a global with no lock — the source-level "
        "twin of racy_counter_program, whose exploration exhibits the "
        "lost update."
    ),
    source=_src('''
        """Two unlocked increments: the classic lost-update race."""
        import threading

        counter = 0


        def worker() -> None:
            global counter
            counter += 1  # read-modify-write, no lock


        def main() -> int:
            threads = [threading.Thread(target=worker) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return counter
    '''),
))

_register(FixtureProgram(
    name="locked_counter_twin",
    scripted_twin="racy_counter_program",
    expect_rules=frozenset(),
    dynamic_entry="main",
    description=(
        "The repaired twin: the same increment under one common lock; "
        "the analyzer must stay silent."
    ),
    source=_src('''
        """The racy counter, repaired with a lock."""
        import threading

        counter = 0
        counter_lock = threading.Lock()


        def worker() -> None:
            global counter
            with counter_lock:
                counter += 1


        def main() -> int:
            threads = [threading.Thread(target=worker) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return counter
    '''),
))

_register(FixtureProgram(
    name="peterson_lock_twin",
    scripted_twin="peterson_program",
    expect_rules=frozenset(),
    dynamic_entry="main",
    description=(
        "Source twin of peterson_program with a Lock playing the role the "
        "flags/turn protocol plays in the scripted version: the explorer "
        "proves the protocol excludes, the analyzer certifies the lock."
    ),
    source=_src('''
        """Peterson's critical section, expressed with a lock."""
        import threading

        counter = 0
        cs_lock = threading.Lock()


        def contender() -> None:
            global counter
            with cs_lock:  # mutual exclusion, as Peterson's protocol provides
                counter += 1


        def main() -> int:
            threads = [threading.Thread(target=contender) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return counter
    '''),
))

_register(FixtureProgram(
    name="peterson_literal_twin",
    scripted_twin="peterson_program",
    expect_rules=frozenset({"PDC101", "PDC207"}),
    known_false_positive=True,
    dynamic_entry="main",
    expect_dynamic=frozenset({"PDC301"}),
    # Busy-wait loops: the schedule tree is infinite, so the checker
    # explores under tight bounds (the PDC301 is reached long before).
    verify_complete=False,
    verify_max_steps=40,
    verify_budget=300,
    description=(
        "Peterson transcribed literally (flags + turn + busy wait).  The "
        "explorer proves it race-free; lockset analysis flags it anyway — "
        "ad-hoc synchronization is invisible to Eraser-style tools, the "
        "documented trade-off this fixture pins down.  FastTrack flags it "
        "too (no lock means no happens-before edge): only the model "
        "checker can certify ad-hoc synchronization."
    ),
    source=_src('''
        """Peterson's algorithm, literal transcription (two threads)."""
        import threading

        flag = [False, False]
        turn = 0
        counter = 0


        def contender0() -> None:
            global counter, turn
            flag[0] = True
            turn = 1
            while flag[1] and turn == 1:
                pass
            counter += 1  # critical section
            flag[0] = False


        def contender1() -> None:
            global counter, turn
            flag[1] = True
            turn = 0
            while flag[0] and turn == 0:
                pass
            counter += 1  # critical section
            flag[1] = False


        def main() -> int:
            a = threading.Thread(target=contender0)
            b = threading.Thread(target=contender1)
            a.start(); b.start()
            a.join(); b.join()
            return counter
    '''),
))

_register(FixtureProgram(
    name="forkjoin_handoff_twin",
    expect_rules=frozenset({"PDC101"}),
    known_false_positive=True,
    dynamic_entry="main",
    description=(
        "Two phases run strictly one after the other via start/join, so "
        "they never overlap — but lockset analysis cannot see fork/join "
        "ordering and flags the shared total.  FastTrack's fork and join "
        "happens-before edges exonerate it."
    ),
    source=_src('''
        """Sequential phases: the join orders them, no lock needed."""
        import threading

        total = 0


        def phase1() -> None:
            global total
            total += 1


        def phase2() -> None:
            global total
            total *= 2


        def main() -> int:
            first = threading.Thread(target=phase1)
            first.start()
            first.join()
            second = threading.Thread(target=phase2)
            second.start()
            second.join()
            return total
    '''),
))

_register(FixtureProgram(
    name="lock_handoff_twin",
    expect_rules=frozenset({"PDC101"}),
    known_false_positive=True,
    dynamic_entry="main",
    # The consumer polls the ready flag: schedules where it spins are
    # step-capped, so the checker's exoneration here is bounded.
    verify_complete=False,
    verify_max_steps=60,
    verify_budget=400,
    description=(
        "Producer publishes a payload under one lock and raises a ready "
        "flag under another; the consumer polls the flag and then reads "
        "the payload with no lock at all.  Safe — the ready_lock "
        "release/acquire pair carries the payload write across — but the "
        "payload's own lockset intersection is empty, so PDC101 fires.  "
        "FastTrack follows the happens-before chain and exonerates it."
    ),
    source=_src('''
        """A flag handoff: ready_lock's release/acquire orders the payload."""
        import threading

        data_lock = threading.Lock()
        ready_lock = threading.Lock()
        payload = 0
        ready = False
        observed = 0


        def producer() -> None:
            global payload, ready
            with data_lock:
                payload = 42
            with ready_lock:
                ready = True


        def consumer() -> None:
            global observed
            waiting = True
            while waiting:
                with ready_lock:
                    if ready:
                        waiting = False
            observed = payload + 0  # no lock held, yet ordered after the write


        def main() -> int:
            prod = threading.Thread(target=producer)
            cons = threading.Thread(target=consumer)
            prod.start()
            cons.start()
            prod.join()
            cons.join()
            return observed
    '''),
))

# -- deadlock twins (replayable against the dynamic LockGraph) ---------------

_register(FixtureProgram(
    name="abba_deadlock_twin",
    expect_rules=frozenset({"PDC102"}),
    entrypoints=("transfer_ab", "transfer_ba"),
    expect_dynamic=frozenset({"PDC302"}),
    description=(
        "Two code paths nest the same two locks in opposite orders — the "
        "ABBA pattern.  Statically a PDC102 cycle; dynamically, replaying "
        "both paths through LockGraph records the same cycle, and the "
        "sanitizer runner reports the lock-order cycle as PDC302."
    ),
    source=_src('''
        """Opposite nesting orders: the ABBA deadlock recipe."""
        import threading

        lock_a = threading.Lock()
        lock_b = threading.Lock()
        balance_a = 0
        balance_b = 0


        def transfer_ab(amount: int = 1) -> None:
            global balance_a, balance_b
            with lock_a:
                with lock_b:
                    balance_a -= amount
                    balance_b += amount


        def transfer_ba(amount: int = 1) -> None:
            global balance_a, balance_b
            with lock_b:
                with lock_a:
                    balance_b -= amount
                    balance_a += amount
    '''),
))

_register(FixtureProgram(
    name="ordered_locks_twin",
    expect_rules=frozenset(),
    entrypoints=("transfer_1", "transfer_2"),
    description=(
        "The repaired transfer: both paths honor one global lock order, so "
        "neither analysis finds a cycle."
    ),
    source=_src('''
        """Both paths take lock_a before lock_b: one global order."""
        import threading

        lock_a = threading.Lock()
        lock_b = threading.Lock()
        balance_a = 0
        balance_b = 0


        def transfer_1(amount: int = 1) -> None:
            global balance_a, balance_b
            with lock_a:
                with lock_b:
                    balance_a -= amount
                    balance_b += amount


        def transfer_2(amount: int = 1) -> None:
            global balance_a, balance_b
            with lock_a:
                with lock_b:
                    balance_b -= amount
                    balance_a += amount
    '''),
))

# -- one seeded example per hygiene rule -------------------------------------

_register(FixtureProgram(
    name="bare_acquire",
    expect_rules=frozenset({"PDC201"}),
    description="acquire() with no with-block or try/finally release.",
    source=_src('''
        """An exception between acquire and release leaks the lock."""
        import threading

        lock = threading.Lock()
        jobs = []


        def submit(job) -> None:
            lock.acquire()
            jobs.append(job)  # if this raises, the lock stays held forever
            lock.release()
    '''),
))

_register(FixtureProgram(
    name="sleep_under_lock",
    expect_rules=frozenset({"PDC202"}),
    description="time.sleep while holding a lock stalls every waiter.",
    source=_src('''
        """Throttling inside the critical section throttles everyone."""
        import threading
        import time

        lock = threading.Lock()
        requests = 0


        def throttled_handler() -> None:
            global requests
            with lock:
                requests += 1
                time.sleep(0.1)  # the throttle belongs outside the lock
    '''),
))

_register(FixtureProgram(
    name="notify_outside_lock",
    expect_rules=frozenset({"PDC203"}),
    description="Condition.notify without holding the condition's lock.",
    source=_src('''
        """notify() without the lock raises RuntimeError at runtime."""
        import threading

        items = []
        not_empty = threading.Condition()


        def produce(item) -> None:
            with not_empty:
                items.append(item)
            not_empty.notify()  # too late: the lock is already released
    '''),
))

_register(FixtureProgram(
    name="double_checked_singleton",
    expect_rules=frozenset({"PDC204"}),
    description="The double-checked locking singleton anti-pattern.",
    source=_src('''
        """The outer `is None` check runs unsynchronized."""
        import threading

        _instance = None
        _instance_lock = threading.Lock()


        def get_instance():
            global _instance
            if _instance is None:
                with _instance_lock:
                    if _instance is None:
                        _instance = object()
            return _instance
    '''),
))

_register(FixtureProgram(
    name="mutable_default_worker",
    expect_rules=frozenset({"PDC205"}),
    dynamic_entry="main",
    # Dynamically clean: the sanitizer tracks module globals, and the
    # shared default list is reached through a parameter — the documented
    # object-granularity blind spot of the source instrumentation.
    description="A mutable default argument shared by every thread.",
    source=_src('''
        """One default list, appended to by every worker thread."""
        import threading


        def worker(results=[]) -> None:
            results.append(1)  # every thread shares the single default list


        def main() -> None:
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
    '''),
))

_register(FixtureProgram(
    name="join_under_lock",
    expect_rules=frozenset({"PDC206"}),
    description="join() inside a critical section.",
    source=_src('''
        """If the worker ever needs state_lock, this never returns."""
        import threading

        state_lock = threading.Lock()


        def shutdown(worker_thread) -> None:
            with state_lock:
                worker_thread.join()  # worker may be blocked on state_lock
    '''),
))

_register(FixtureProgram(
    name="spin_wait_flag",
    expect_rules=frozenset({"PDC207"}),
    # No dynamic_entry: the consumer's spin loop never terminates under
    # the inline runner (nothing ever sets `ready`) — exactly the
    # liveness dependence that makes busy-waiting unreplayable.
    description="A pass-only busy-wait loop on a shared flag.",
    source=_src('''
        """Spinning burns the GIL and starves the thread that would set it."""
        import threading

        ready = False


        def consumer() -> None:
            while not ready:
                pass
            process()


        def process() -> None:
            return None


        def main() -> None:
            threading.Thread(target=consumer).start()
    '''),
))

_register(FixtureProgram(
    name="relock_self_deadlock",
    expect_rules=frozenset({"PDC208"}),
    description="Re-acquiring a held non-reentrant lock.",
    source=_src('''
        """A plain Lock is not reentrant: the inner with blocks forever."""
        import threading

        lock = threading.Lock()
        totals = []
        audit_log = []


        def add_and_log(x) -> None:
            with lock:
                totals.append(x)
                with lock:  # still held from two lines up -> blocks forever
                    audit_log.append(x)
    '''),
))

_register(FixtureProgram(
    name="blocking_call_under_lock",
    expect_rules=frozenset({"PDC209"}),
    description="A blocking call (stdin read) inside a critical section.",
    source=_src('''
        """Reading stdin under the config lock blocks every other thread."""
        import threading

        config_lock = threading.Lock()
        config = {}


        def reload_config() -> None:
            with config_lock:
                config["mode"] = input()  # the prompt belongs outside the lock
    '''),
))

_register(FixtureProgram(
    name="wallclock_in_clocked_code",
    expect_rules=frozenset({"PDC210"}),
    description="time.time() in a module written against an injected Clock.",
    source=_src('''
        """A wall-clock deadline in clock-injected code breaks replay."""
        import time

        from repro.runtime import Clock


        class Poller:
            """Polls with an injected clock but arms deadlines off the wall."""

            def __init__(self, clock: Clock) -> None:
                self._clock = clock
                self.deadline = 0.0

            def arm(self, timeout: float) -> None:
                self.deadline = time.time() + timeout  # use self._clock.now()
    '''),
))

_register(FixtureProgram(
    name="suppressed_racy_counter",
    expect_rules=frozenset(),
    dynamic_entry="main",
    # disable=PDC101 silences the *static* verdict only: the observed
    # PDC301 race survives, so labs cannot wave away what actually ran.
    expect_dynamic=frozenset({"PDC301"}),
    description=(
        "The racy counter with an inline justified suppression — the lab "
        "form of 'yes, this race is the point of the exercise'."
    ),
    source=_src('''
        """Intentionally racy, and saying so."""
        import threading

        counter = 0


        def worker() -> None:
            global counter
            counter += 1  # pdc-lint: disable=PDC101 -- the lab exhibits this race


        def main() -> None:
            threads = [threading.Thread(target=worker) for _ in range(2)]
            for t in threads:
                t.start()
    '''),
))


# -- dynamic replay ----------------------------------------------------------

class _TracedLock:
    """A context-managed lock stand-in that reports to a LockGraph."""

    def __init__(self, name: str, graph: LockGraph) -> None:
        self._name = name
        self._graph = graph

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._graph.on_acquire(self._name)
        return True

    def release(self) -> None:
        self._graph.on_release(self._name)

    def __enter__(self) -> "_TracedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class _TracedThreading:
    """Stands in for the ``threading`` module during a replay.

    Locks report acquisition order to the :class:`LockGraph`; the replay
    calls entry points *sequentially*, so no interleaving (and no actual
    deadlock) can occur — exactly the situation where the lock-order audit
    still catches the ABBA potential.
    """

    def __init__(self, graph: LockGraph) -> None:
        self._graph = graph
        self._count = 0

    def _make(self) -> _TracedLock:
        name = f"lock{self._count}"
        self._count += 1
        return _TracedLock(name, self._graph)

    def Lock(self) -> _TracedLock:  # noqa: N802 - mirrors threading.Lock
        return self._make()

    RLock = Lock
    Condition = Lock
    Semaphore = Lock
    BoundedSemaphore = Lock


def replay_lock_trace(fix: FixtureProgram) -> LockGraph:
    """Execute a fixture's entry points with traced locks.

    Returns the populated dynamic :class:`LockGraph`; compare its
    :meth:`~repro.smp.deadlock.LockGraph.is_safe` verdict to whether the
    static analyzer reports PDC102 on the same source.
    """
    if not fix.entrypoints:
        raise ValueError(f"fixture {fix.name!r} has no replay entry points")
    graph = LockGraph()
    traced = _TracedThreading(graph)
    real_import = builtins.__import__

    def import_with_trace(name: str, *args: object, **kwargs: object):
        if name == "threading":
            return traced
        return real_import(name, *args, **kwargs)

    namespace: Dict[str, object] = {
        "__name__": f"fixture_{fix.name}",
        "__builtins__": {**vars(builtins), "__import__": import_with_trace},
    }
    exec(compile(fix.source, f"<fixture:{fix.name}>", "exec"), namespace)
    for entry in fix.entrypoints:
        fn = namespace[entry]
        if not callable(fn):
            raise TypeError(f"fixture entry point {entry!r} is not callable")
        fn()
    return graph


# ---------------------------------------------------------------------------
# Multi-file fixtures: the cross-module twin corpus.
#
# Each fixture is a tiny *program* — several modules importing each
# other — with three ground truths attached: what whole-program
# pdc-lint must say, what per-file pdc-lint says on each module alone
# (∅ proves the interprocedural lift is load-bearing), and what the
# multi-module sanitizer run observes dynamically.  The racy pair's
# PDC101 must be confirmed by PDC301; the handoff pair is the
# documented lockset false positive — fork/join happens-before makes
# the accesses sequential, so the dynamic run exonerates it.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class MultiFileFixture:
    """One multi-module program and its per-analysis ground truth."""

    name: str
    #: ``(filename, source)`` pairs; filenames are flat ``<module>.py``.
    files: Tuple[Tuple[str, str], ...]
    #: Module whose body (and ``dynamic_entry``) drives the dynamic run.
    entry_module: str
    description: str
    #: Entry function in ``entry_module`` for the sanitizer run.
    dynamic_entry: Optional[str] = "main"
    #: Rules ``pdc-lint --whole-program`` MUST report over the tree.
    expect_ip_rules: FrozenSet[str] = frozenset()
    #: Rules per-file pdc-lint reports over the same tree (the union;
    #: ∅ == every module alone looks clean).
    expect_single_file: FrozenSet[str] = frozenset()
    #: PDC3xx rules the multi-module sanitizer run MUST report.
    expect_dynamic: FrozenSet[str] = frozenset()
    #: Static finding refuted by dynamic happens-before (documented
    #: lockset-analysis limitation, not a bug).
    known_false_positive: bool = False

    def sources(self) -> Dict[str, str]:
        """Map filename -> source."""
        return dict(self.files)

    def modules(self) -> Dict[str, str]:
        """Map module name -> source (for :func:`repro.sanitizers.run_program`)."""
        return {name[: -len(".py")]: src for name, src in self.files}


MULTIFILE_FIXTURES: Dict[str, MultiFileFixture] = {}


def _register_multi(fix: MultiFileFixture) -> MultiFileFixture:
    if fix.name in MULTIFILE_FIXTURES:
        raise ValueError(f"duplicate multi-file fixture {fix.name}")
    MULTIFILE_FIXTURES[fix.name] = fix
    return fix


def multifile_fixture(name: str) -> MultiFileFixture:
    """Look up one multi-file fixture by name."""
    try:
        return MULTIFILE_FIXTURES[name]
    except KeyError:
        raise KeyError(
            f"no multi-file fixture {name!r}; known: "
            f"{', '.join(sorted(MULTIFILE_FIXTURES))}"
        ) from None


def all_multifile_fixtures() -> List[MultiFileFixture]:
    """Every registered multi-file fixture, by name."""
    return [MULTIFILE_FIXTURES[k] for k in sorted(MULTIFILE_FIXTURES)]


_register_multi(MultiFileFixture(
    name="crossmod_racy_pair",
    description=(
        "The multi-file lab shape: shared_state.py owns the counter, "
        "worker.py mutates it through bump(), main.py spawns two "
        "workers.  No single file shows both the spawn and the "
        "unlocked write — only the whole-program lockset analysis "
        "(and the dynamic sanitizer) sees the race."
    ),
    entry_module="main",
    expect_ip_rules=frozenset({"PDC101"}),
    expect_single_file=frozenset(),
    expect_dynamic=frozenset({"PDC301"}),
    files=(
        ("shared_state.py", _src("""
            import threading

            counter = 0
            lock = threading.Lock()


            def bump():
                global counter
                counter += 1


            def snapshot():
                return counter
        """)),
        ("worker.py", _src("""
            import shared_state


            def run():
                for _ in range(5):
                    shared_state.bump()
        """)),
        ("main.py", _src("""
            import threading

            import shared_state
            import worker


            def main():
                threads = [
                    threading.Thread(target=worker.run) for _ in range(2)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                return shared_state.snapshot()
        """)),
    ),
))


_register_multi(MultiFileFixture(
    name="crossmod_handoff_pair",
    description=(
        "Sequential handoff across modules: main spawns bump, joins "
        "it, then spawns scale.  The whole-program lockset analysis "
        "sees two concurrent unlocked writers and flags PDC101; the "
        "fork/join happens-before edges make the accesses strictly "
        "ordered, so the dynamic run exonerates it — the classic "
        "Eraser trade-off, now cross-module."
    ),
    entry_module="main",
    expect_ip_rules=frozenset({"PDC101"}),
    expect_single_file=frozenset(),
    expect_dynamic=frozenset(),
    known_false_positive=True,
    files=(
        ("shared_state.py", _src("""
            total = 0


            def bump():
                global total
                total += 5


            def scale():
                global total
                total *= 3
        """)),
        ("main.py", _src("""
            import threading

            import shared_state


            def main():
                first = threading.Thread(target=shared_state.bump)
                first.start()
                first.join()
                second = threading.Thread(target=shared_state.scale)
                second.start()
                second.join()
                return shared_state.total
        """)),
    ),
))

"""An exhaustive interleaving explorer — a mini model checker.

"Run it and hope" cannot demonstrate a race; enumerating *every*
interleaving can.  Two scripted threads are written as sequences of
atomic :class:`Step` operations over shared registers; the explorer walks
all interleavings (depth-first over the schedule tree) and reports every
distinct final state — so a lab can *prove* statements like:

- the unlocked ``counter += 1`` program has an interleaving that loses an
  update (the classic read-modify-write race, exhibited, not hand-waved);
- Peterson's algorithm maintains mutual exclusion in **all**
  interleavings (checked, not asserted).

The state space is tiny by construction (two threads, short scripts), so
exhaustive search is exact and fast — the pedagogical sweet spot CC2020's
"race conditions" topic calls for.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Step",
    "explore",
    "ExplorationResult",
    "racy_counter_program",
    "peterson_program",
]


class _Kind(enum.Enum):
    LOAD = "load"  # reg[dst_local] = shared[var]
    STORE = "store"  # shared[var] = f(locals)
    AWAIT = "await"  # block until predicate(shared) holds
    MARK = "mark"  # record a critical-section event


@dataclasses.dataclass(frozen=True)
class Step:
    """One atomic operation of a thread script."""

    kind: _Kind
    var: str = ""
    local: str = ""
    compute: Optional[Callable[[Dict[str, int]], int]] = None
    predicate: Optional[Callable[[Dict[str, int]], bool]] = None
    label: str = ""

    @staticmethod
    def load(var: str, local: str) -> "Step":
        """Atomically read shared ``var`` into thread-local ``local``."""
        return Step(_Kind.LOAD, var=var, local=local)

    @staticmethod
    def store(var: str, compute: Callable[[Dict[str, int]], int]) -> "Step":
        """Atomically write ``compute(locals)`` into shared ``var``."""
        return Step(_Kind.STORE, var=var, compute=compute)

    @staticmethod
    def store_const(var: str, value: int) -> "Step":
        """Atomically write a constant."""
        return Step(_Kind.STORE, var=var, compute=lambda _l, v=value: v)

    @staticmethod
    def await_(predicate: Callable[[Dict[str, int]], bool]) -> "Step":
        """Busy-wait (block) until ``predicate(shared)`` holds."""
        return Step(_Kind.AWAIT, predicate=predicate)

    @staticmethod
    def mark(label: str) -> "Step":
        """Record entry/exit of a region (for mutual-exclusion checks)."""
        return Step(_Kind.MARK, label=label)


@dataclasses.dataclass
class ExplorationResult:
    """Everything the exhaustive search observed."""

    final_states: Set[Tuple[Tuple[str, int], ...]]
    schedules_explored: int
    mutual_exclusion_held: bool
    deadlocked_schedules: int

    def final_values(self, var: str) -> Set[int]:
        """All values shared ``var`` can end with."""
        return {dict(state)[var] for state in self.final_states}


def explore(
    thread_a: Sequence[Step],
    thread_b: Sequence[Step],
    shared_init: Dict[str, int],
    critical_label: str = "cs",
    max_schedules: int = 2_000_000,
) -> ExplorationResult:
    """Enumerate every interleaving of two scripts.

    ``mutual_exclusion_held`` is ``False`` iff some interleaving has both
    threads between their ``mark(critical_label + "-in")`` and
    ``mark(critical_label + "-out")`` steps at once.  A schedule where
    both threads block forever in ``await_`` counts as deadlocked (it is
    still explored; its partial state is not a final state).
    """
    final_states: Set[Tuple[Tuple[str, int], ...]] = set()
    stats = {"schedules": 0, "deadlocks": 0, "mutex_ok": True}
    scripts = (list(thread_a), list(thread_b))
    in_label = f"{critical_label}-in"
    out_label = f"{critical_label}-out"

    # Memoize visited configurations to keep the search polynomial in the
    # (tiny) state space rather than exponential in schedule count.
    seen: Set[Tuple[int, int, Tuple[Tuple[str, int], ...],
                    Tuple[Tuple[str, int], ...], Tuple[Tuple[str, int], ...],
                    Tuple[bool, bool]]] = set()

    def run(
        pc: Tuple[int, int],
        shared: Dict[str, int],
        locals_: Tuple[Dict[str, int], Dict[str, int]],
        in_cs: Tuple[bool, bool],
    ) -> None:
        if stats["schedules"] >= max_schedules:
            raise RuntimeError("interleaving explosion; shrink the scripts")
        key = (
            pc[0], pc[1],
            tuple(sorted(shared.items())),
            tuple(sorted(locals_[0].items())),
            tuple(sorted(locals_[1].items())),
            in_cs,
        )
        if key in seen:
            return
        seen.add(key)

        if in_cs[0] and in_cs[1]:
            stats["mutex_ok"] = False

        runnable: List[int] = []
        for t in (0, 1):
            if pc[t] >= len(scripts[t]):
                continue
            step = scripts[t][pc[t]]
            if step.kind is _Kind.AWAIT:
                assert step.predicate is not None
                if not step.predicate(shared):
                    continue  # blocked
            runnable.append(t)

        if not runnable:
            if pc[0] >= len(scripts[0]) and pc[1] >= len(scripts[1]):
                stats["schedules"] += 1
                final_states.add(tuple(sorted(shared.items())))
            else:
                stats["schedules"] += 1
                stats["deadlocks"] += 1
            return

        for t in runnable:
            step = scripts[t][pc[t]]
            new_shared = dict(shared)
            new_locals = (dict(locals_[0]), dict(locals_[1]))
            new_in_cs = list(in_cs)
            if step.kind is _Kind.LOAD:
                new_locals[t][step.local] = shared[step.var]
            elif step.kind is _Kind.STORE:
                assert step.compute is not None
                new_shared[step.var] = step.compute(new_locals[t])
            elif step.kind is _Kind.MARK:
                if step.label == in_label:
                    new_in_cs[t] = True
                elif step.label == out_label:
                    new_in_cs[t] = False
            # AWAIT with a true predicate is a pure no-op step.
            new_pc = (pc[0] + (t == 0), pc[1] + (t == 1))
            run(new_pc, new_shared, (new_locals[0], new_locals[1]),
                (new_in_cs[0], new_in_cs[1]))

    run((0, 0), dict(shared_init), ({}, {}), (False, False))
    return ExplorationResult(
        final_states=final_states,
        schedules_explored=stats["schedules"],
        mutual_exclusion_held=stats["mutex_ok"],
        deadlocked_schedules=stats["deadlocks"],
    )


def racy_counter_program(increments: int = 1) -> Tuple[List[Step], List[Step]]:
    """Two threads each doing ``counter += 1`` as load-then-store.

    Exploration shows the final counter can be *less* than the increment
    count — the lost-update race, exhibited over all interleavings.
    """

    def one_increment() -> List[Step]:
        return [
            Step.load("counter", "tmp"),
            Step.store("counter", lambda loc: loc["tmp"] + 1),
        ]

    a: List[Step] = []
    b: List[Step] = []
    for _ in range(increments):
        a.extend(one_increment())
        b.extend(one_increment())
    return a, b


def peterson_program() -> Tuple[List[Step], List[Step]]:
    """Peterson's mutual-exclusion algorithm for two threads.

    Shared: ``flag0``, ``flag1``, ``turn``.  Each thread enters its
    critical section (marked), increments the shared counter as a
    non-atomic load/store pair, and leaves.  Exploration proves both
    mutual exclusion and that no update is lost.
    """
    def thread(me: int) -> List[Step]:
        other = 1 - me
        return [
            Step.store_const(f"flag{me}", 1),
            Step.store_const("turn", other),
            Step.await_(
                lambda s, o=other, m=me: s[f"flag{o}"] == 0 or s["turn"] == m
            ),
            Step.mark("cs-in"),
            Step.load("counter", "tmp"),
            Step.store("counter", lambda loc: loc["tmp"] + 1),
            Step.mark("cs-out"),
            Step.store_const(f"flag{me}", 0),
        ]

    return thread(0), thread(1)

"""Two-phase commit: atomic commitment across distributed participants.

The natural meeting point of the database column (transactions) and the
distributed course's "distributed challenges": a coordinator asks every
participant to PREPARE; only a unanimous yes commits, any no (or crash
before voting) aborts everyone.  The simulation injects crashes at
scripted points so the blocking behaviour — 2PC's famous weakness — is
observable and testable.

The coordinator can crash too (``crash_after_prepare=True``): verdicts
are never sent, prepared participants hold their locks, and the outcome
reports them blocked.  :func:`cooperative_termination` then runs the
classic timeout protocol: a blocked participant that can find *any* peer
which aborted or never voted may abort safely; a cohort that is
unanimously PREPARED stays blocked — 2PC's blocking window, now a
testable function instead of a lecture slide.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence

from repro.faults.policies import Timeout

__all__ = [
    "ParticipantState",
    "Participant",
    "Coordinator",
    "TwoPcOutcome",
    "cooperative_termination",
]


class ParticipantState(enum.Enum):
    """A participant's local protocol state."""

    INIT = "init"
    PREPARED = "prepared"  # voted yes, holding locks, awaiting verdict
    COMMITTED = "committed"
    ABORTED = "aborted"
    CRASHED = "crashed"


@dataclasses.dataclass
class Participant:
    """One resource manager.

    ``will_vote_yes`` scripts the vote; ``crash_before_vote`` /
    ``crash_after_vote`` script failures at the two interesting points.
    """

    name: str
    will_vote_yes: bool = True
    crash_before_vote: bool = False
    crash_after_vote: bool = False
    state: ParticipantState = ParticipantState.INIT

    def prepare(self) -> Optional[bool]:
        """Phase 1: returns the vote, or ``None`` if crashed (no reply)."""
        if self.crash_before_vote:
            self.state = ParticipantState.CRASHED
            return None
        if not self.will_vote_yes:
            self.state = ParticipantState.ABORTED  # unilateral abort on no
            return False
        self.state = ParticipantState.PREPARED
        if self.crash_after_vote:
            # Voted yes, then crashed: on recovery it is *still* prepared
            # and must block until it learns the verdict.
            self.state = ParticipantState.CRASHED
        return True

    def commit(self) -> None:
        """Phase 2 (commit verdict)."""
        if self.state is ParticipantState.PREPARED:
            self.state = ParticipantState.COMMITTED

    def abort(self) -> None:
        """Phase 2 (abort verdict)."""
        if self.state in (ParticipantState.PREPARED, ParticipantState.INIT):
            self.state = ParticipantState.ABORTED

    def recover(self, verdict: "TwoPcOutcome") -> None:
        """Crash recovery: a prepared participant asks for the verdict."""
        if self.state is ParticipantState.CRASHED:
            self.state = (
                ParticipantState.COMMITTED
                if verdict.committed
                else ParticipantState.ABORTED
            )


@dataclasses.dataclass
class TwoPcOutcome:
    """The coordinator's decision plus the message accounting.

    ``committed`` is the verdict the coordinator *would* send; when
    ``coordinator_crashed`` is true no verdict ever left, so participants
    cannot know it — that asymmetry is the whole point.
    """

    committed: bool
    votes: Dict[str, Optional[bool]]
    messages: int
    blocked_participants: List[str]
    coordinator_crashed: bool = False


class Coordinator:
    """Drives the two phases over a participant list.

    ``crash_after_prepare=True`` scripts the protocol's worst moment: the
    coordinator collects every vote, then fail-stops before sending a
    single verdict.  Participants that voted yes are PREPARED, holding
    locks, and appear in ``blocked_participants``.
    """

    def __init__(
        self,
        participants: Sequence[Participant],
        crash_after_prepare: bool = False,
    ) -> None:
        if not participants:
            raise ValueError("need at least one participant")
        names = [p.name for p in participants]
        if len(set(names)) != len(names):
            raise ValueError("participant names must be unique")
        self.participants = list(participants)
        self.crash_after_prepare = crash_after_prepare

    def run(self) -> TwoPcOutcome:
        """Execute 2PC: PREPARE round, decision, verdict round.

        Message count: one PREPARE per participant, one vote per
        *responding* participant, one verdict per participant (crashed
        ones get it on recovery; the send still happens).  A coordinator
        crash skips the verdict round entirely.
        """
        messages = 0
        votes: Dict[str, Optional[bool]] = {}
        for p in self.participants:
            messages += 1  # PREPARE
            vote = p.prepare()
            votes[p.name] = vote
            if vote is not None:
                messages += 1  # the vote reply

        decision = all(v is True for v in votes.values())
        if self.crash_after_prepare:
            # No verdict is ever sent.  Everyone PREPARED (or crashed
            # while prepared) blocks on an answer that is not coming.
            blocked = [
                p.name
                for p in self.participants
                if p.state in (
                    ParticipantState.PREPARED, ParticipantState.CRASHED
                )
            ]
            return TwoPcOutcome(
                committed=False,
                votes=votes,
                messages=messages,
                blocked_participants=blocked,
                coordinator_crashed=True,
            )

        for p in self.participants:
            messages += 1  # verdict broadcast
            if decision:
                p.commit()
            else:
                p.abort()

        blocked = [
            p.name
            for p in self.participants
            if p.state is ParticipantState.CRASHED
        ]
        return TwoPcOutcome(
            committed=decision,
            votes=votes,
            messages=messages,
            blocked_participants=blocked,
        )

    @staticmethod
    def message_complexity(n: int) -> int:
        """Failure-free cost: prepare + vote + verdict = ``3n`` messages."""
        return 3 * n


def cooperative_termination(
    participants: Sequence[Participant],
    timeout: Optional[Timeout] = None,
) -> List[str]:
    """The timeout protocol blocked participants run after a coordinator
    crash.

    Waits out ``timeout`` (a :class:`~repro.faults.policies.Timeout` on
    the run's clock — a deterministic virtual step in tests), then has
    the cohort consult each other:

    - If *any* peer aborted or never voted yes, the verdict cannot have
      been COMMIT, so every PREPARED participant aborts safely.  Returns
      the names released.
    - If every live peer is PREPARED, nobody can rule out a COMMIT the
      coordinator decided before dying: the cohort stays blocked (2PC's
      blocking window) and the function returns ``[]``.

    Crashed participants never learn anything here; they recover via
    :meth:`Participant.recover` when the coordinator comes back.
    """
    if timeout is not None:
        timeout.wait()
    abort_is_safe = any(
        p.state in (ParticipantState.ABORTED, ParticipantState.INIT)
        for p in participants
    )
    if not abort_is_safe:
        return []
    released = []
    for p in participants:
        if p.state is ParticipantState.PREPARED:
            p.abort()
            released.append(p.name)
    return released

"""Distributed-systems algorithms and middleware.

AUC's *fundamentals of distributed computing* course (paper §IV-B) "covers
topics ranging from modeling and specification to consistency and
inter-process communication, load balancing, process migration, and
distributed challenges"; RIT's course adds "distributed system
architectures and middleware, distributed objects".  One module per topic:

- :mod:`repro.dist.clocks` — Lamport and vector clocks, happens-before.
- :mod:`repro.dist.election` — ring (Chang–Roberts) and bully leader
  election with message counts.
- :mod:`repro.dist.mutex` — distributed mutual exclusion: Lamport,
  Ricart–Agrawala, and token ring, with messages-per-entry accounting.
- :mod:`repro.dist.consistency` — linearizability and sequential-
  consistency checkers over register histories; eventual-consistency
  convergence.
- :mod:`repro.dist.loadbalance` — round-robin, least-loaded, and
  power-of-two-choices placement.
- :mod:`repro.dist.migration` — process migration policies over loaded
  nodes.
- :mod:`repro.dist.middleware` — RPC with client stubs and a name service
  (distributed objects) over :mod:`repro.net`.
- :mod:`repro.dist.mapreduce` — a thread-pool MapReduce engine.
"""

from repro.dist.clocks import LamportClock, VectorClock, happens_before
from repro.dist.commit import (
    Coordinator,
    Participant,
    TwoPcOutcome,
    cooperative_termination,
)
from repro.dist.consistency import (
    HistoryEvent,
    is_linearizable,
    is_sequentially_consistent,
)
from repro.dist.election import bully_election, ring_election
from repro.dist.loadbalance import Balancer, PlacementPolicy
from repro.dist.mapreduce import MapReduce
from repro.dist.middleware import NameService, RpcServer, Unavailable, rpc_proxy
from repro.dist.mutex import MutexAlgorithm, simulate_mutex
from repro.dist.snapshot import Snapshot, TokenSystem

__all__ = [
    "Balancer",
    "bully_election",
    "cooperative_termination",
    "Coordinator",
    "Participant",
    "Snapshot",
    "TokenSystem",
    "TwoPcOutcome",
    "happens_before",
    "HistoryEvent",
    "is_linearizable",
    "is_sequentially_consistent",
    "LamportClock",
    "MapReduce",
    "MutexAlgorithm",
    "NameService",
    "PlacementPolicy",
    "ring_election",
    "rpc_proxy",
    "RpcServer",
    "simulate_mutex",
    "Unavailable",
    "VectorClock",
]

"""Logical time: Lamport clocks, vector clocks, happens-before.

The "modeling and specification" opening of a distributed-systems course.
Clocks are small mutable objects with the three textbook rules (local
event, send, receive); :func:`happens_before` decides causality from
vector timestamps, including the concurrency case Lamport clocks cannot
express — the lesson the pairing of the two classes teaches.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["LamportClock", "VectorClock", "happens_before", "concurrent", "Event"]


class LamportClock:
    """A scalar logical clock.

    Guarantees: ``a -> b`` implies ``L(a) < L(b)``.  The converse fails —
    two concurrent events can have ordered timestamps — which is what
    vector clocks fix.
    """

    def __init__(self) -> None:
        self.time = 0

    def tick(self) -> int:
        """A local event: advance and return the timestamp."""
        self.time += 1
        return self.time

    def stamp_send(self) -> int:
        """Timestamp an outgoing message (counts as an event)."""
        return self.tick()

    def on_receive(self, message_time: int) -> int:
        """Merge rule: ``max(local, msg) + 1``."""
        self.time = max(self.time, message_time) + 1
        return self.time


class VectorClock:
    """A vector clock for ``n`` processes; this instance is process ``pid``."""

    def __init__(self, pid: int, n: int) -> None:
        if not 0 <= pid < n:
            raise ValueError("pid out of range")
        self.pid = pid
        self.clock: List[int] = [0] * n

    def tick(self) -> Tuple[int, ...]:
        """A local event: advance own component."""
        self.clock[self.pid] += 1
        return self.snapshot()

    def stamp_send(self) -> Tuple[int, ...]:
        """Timestamp an outgoing message."""
        return self.tick()

    def on_receive(self, message_clock: Iterable[int]) -> Tuple[int, ...]:
        """Merge rule: component-wise max, then advance own component."""
        for i, v in enumerate(message_clock):
            if v > self.clock[i]:
                self.clock[i] = v
        self.clock[self.pid] += 1
        return self.snapshot()

    def snapshot(self) -> Tuple[int, ...]:
        """An immutable copy of the current vector."""
        return tuple(self.clock)


def happens_before(a: Iterable[int], b: Iterable[int]) -> bool:
    """Vector order: ``a -> b`` iff ``a <= b`` component-wise and ``a != b``."""
    av, bv = tuple(a), tuple(b)
    if len(av) != len(bv):
        raise ValueError("vector clocks must have equal length")
    return all(x <= y for x, y in zip(av, bv)) and av != bv


def concurrent(a: Iterable[int], b: Iterable[int]) -> bool:
    """Neither ``a -> b`` nor ``b -> a``: causally unrelated events."""
    av, bv = tuple(a), tuple(b)
    return not happens_before(av, bv) and not happens_before(bv, av) and av != bv


@dataclasses.dataclass(frozen=True)
class Event:
    """A recorded event with both clock kinds, for trace exercises."""

    process: int
    kind: str  # "local" | "send" | "recv"
    lamport: int
    vector: Tuple[int, ...]
    label: Optional[str] = None


def run_message_trace(
    n: int, actions: List[Tuple[str, int, int]]
) -> List[Event]:
    """Execute a scripted trace and stamp every event with both clocks.

    ``actions`` entries: ``("local", p, 0)``, ``("msg", sender,
    receiver)`` — a message action produces a send event at the sender and
    the matching receive at the receiver (delivered immediately; the point
    is the stamping, not the transport).
    """
    lamports = [LamportClock() for _ in range(n)]
    vectors = [VectorClock(p, n) for p in range(n)]
    events: List[Event] = []
    for action, a, b in actions:
        if action == "local":
            lt = lamports[a].tick()
            vt = vectors[a].tick()
            events.append(Event(a, "local", lt, vt))
        elif action == "msg":
            lt = lamports[a].stamp_send()
            vt = vectors[a].stamp_send()
            events.append(Event(a, "send", lt, vt))
            lt2 = lamports[b].on_receive(lt)
            vt2 = vectors[b].on_receive(vt)
            events.append(Event(b, "recv", lt2, vt2))
        else:
            raise ValueError(f"unknown action {action!r}")
    return events

"""Load balancing: placement policies and their tail behaviour.

AUC's distributed course names load balancing directly.  The balancer
assigns tasks to servers under four policies; the interesting output is
the load *distribution* (max load, imbalance), where the
power-of-two-choices result — two random probes get you nearly the
balance of full information — is the famous surprise.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.runtime import RunContext

__all__ = ["PlacementPolicy", "BalanceReport", "Balancer"]


class PlacementPolicy(enum.Enum):
    """How the balancer picks a server for each task."""

    ROUND_ROBIN = "round-robin"
    RANDOM = "random"
    LEAST_LOADED = "least-loaded"
    TWO_CHOICES = "two-choices"


@dataclasses.dataclass
class BalanceReport:
    """Final load vector plus derived statistics."""

    policy: PlacementPolicy
    loads: List[float]

    @property
    def max_load(self) -> float:
        """The hottest server's load."""
        return float(max(self.loads))

    @property
    def imbalance(self) -> float:
        """Max/mean load (1.0 = perfect)."""
        arr = np.asarray(self.loads)
        mean = arr.mean()
        return float(arr.max() / mean) if mean > 0 else 1.0

    @property
    def stddev(self) -> float:
        """Standard deviation of server loads."""
        return float(np.asarray(self.loads).std())


class Balancer:
    """Assigns a stream of task weights to ``servers`` under one policy."""

    def __init__(
        self,
        servers: int,
        policy: PlacementPolicy = PlacementPolicy.ROUND_ROBIN,
        seed: int = 0,
        context: Optional[RunContext] = None,
    ) -> None:
        if servers < 1:
            raise ValueError("need at least one server")
        self.servers = servers
        self.policy = policy
        self._context = context
        if context is not None:
            # Per-policy stream so two balancers in one run stay independent.
            self._rng = context.rng.stream(f"dist.loadbalance.{policy.value}")
            self._tasks_counter = context.registry.counter("dist.lb.tasks")
        else:
            self._rng = np.random.default_rng(seed)
            self._tasks_counter = None
        self.loads = [0.0] * servers
        self._rr_next = 0
        self.assignments: List[int] = []

    def place(self, weight: float = 1.0) -> int:
        """Assign one task; returns the chosen server."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        if self.policy is PlacementPolicy.ROUND_ROBIN:
            server = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.servers
        elif self.policy is PlacementPolicy.RANDOM:
            server = int(self._rng.integers(self.servers))
        elif self.policy is PlacementPolicy.LEAST_LOADED:
            server = int(np.argmin(self.loads))
        elif self.policy is PlacementPolicy.TWO_CHOICES:
            a, b = self._rng.integers(self.servers, size=2)
            server = int(a if self.loads[a] <= self.loads[b] else b)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown policy {self.policy!r}")
        self.loads[server] += weight
        self.assignments.append(server)
        if self._tasks_counter is not None:
            self._tasks_counter.inc()
        return server

    def run(self, weights: Sequence[float]) -> BalanceReport:
        """Place a whole stream; returns the report."""
        for w in weights:
            self.place(w)
        return BalanceReport(self.policy, list(self.loads))


def compare_policies(
    servers: int, tasks: int, seed: int = 0, heavy_tail: bool = False
) -> Dict[str, BalanceReport]:
    """All four policies on an identical task stream (the lecture table)."""
    rng = np.random.default_rng(seed)
    if heavy_tail:
        weights = list(rng.pareto(2.0, tasks) + 0.5)
    else:
        weights = [1.0] * tasks
    out: Dict[str, BalanceReport] = {}
    for policy in PlacementPolicy:
        balancer = Balancer(servers, policy, seed=seed + 1)
        out[policy.value] = balancer.run(weights)
    return out

"""Physical clock synchronization: Cristian's algorithm and Berkeley.

The distributed course's "distributed monitoring and control" (paper §I)
needs synchronized physical clocks; these are the two algorithms every
course teaches before vector clocks take over.  Drifting clocks are
simulated explicitly (rate error in ppm-like units), so the algorithms'
residual error bounds can be measured, not just stated:

- Cristian's: client asks a time server; the round-trip uncertainty is
  ``rtt / 2``; the test asserts the bound.
- Berkeley: a master polls everyone (including itself), averages the
  offsets (optionally discarding outliers), and sends each clock an
  adjustment — no reference clock needed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["DriftingClock", "cristian_sync", "berkeley_sync", "BerkeleyReport"]


@dataclasses.dataclass
class DriftingClock:
    """A clock with an offset and a rate error.

    ``read(t)`` returns the clock's display at true time ``t``:
    ``offset + t * rate``.  ``adjust`` shifts the offset (clocks are
    corrected by slewing/stepping the offset; the rate error remains —
    which is why synchronization must repeat).
    """

    name: str
    offset: float = 0.0
    rate: float = 1.0

    def read(self, true_time: float) -> float:
        """The time this clock shows at ``true_time``."""
        return self.offset + true_time * self.rate

    def adjust(self, delta: float) -> None:
        """Apply a correction to the displayed time."""
        self.offset += delta


def cristian_sync(
    client: DriftingClock,
    server: DriftingClock,
    true_time: float,
    rtt: float,
) -> Tuple[float, float]:
    """Cristian's algorithm: one request/response to a time server.

    The server's reply (its clock at the midpoint of the exchange) is
    assumed to be received after ``rtt/2`` more; the client sets itself
    to ``server_time + rtt/2``.  Returns ``(residual_error,
    error_bound)`` where the bound is ``rtt/2`` (plus server drift over
    the exchange, negligible here).
    """
    if rtt < 0:
        raise ValueError("rtt must be non-negative")
    # Server is read at the true midpoint of the round trip.
    server_time = server.read(true_time + rtt / 2.0)
    estimate = server_time + rtt / 2.0
    arrival = true_time + rtt
    client.adjust(estimate - client.read(arrival))
    residual = abs(client.read(arrival) - server.read(arrival))
    return residual, rtt / 2.0


@dataclasses.dataclass
class BerkeleyReport:
    """Outcome of one Berkeley round."""

    average_adjustment: float
    adjustments: Dict[str, float]
    discarded: List[str]
    spread_before: float
    spread_after: float


def berkeley_sync(
    clocks: Sequence[DriftingClock],
    true_time: float,
    master_index: int = 0,
    outlier_threshold: Optional[float] = None,
) -> BerkeleyReport:
    """One Berkeley round at true time ``true_time``.

    The master collects every clock's offset from its own, discards
    readings farther than ``outlier_threshold`` (faulty clocks), averages
    the remainder (its own 0 included), and sends each clock the delta
    taking it to the average — including itself.  The *spread* (max-min
    of displayed times) collapses to ~0 regardless of the true time.
    """
    if not clocks:
        raise ValueError("need at least one clock")
    if not 0 <= master_index < len(clocks):
        raise ValueError("master_index out of range")
    master = clocks[master_index]
    master_now = master.read(true_time)
    readings = {c.name: c.read(true_time) - master_now for c in clocks}

    discarded: List[str] = []
    usable: Dict[str, float] = {}
    for name, delta in readings.items():
        if (
            outlier_threshold is not None
            and abs(delta) > outlier_threshold
            and name != master.name
        ):
            discarded.append(name)
        else:
            usable[name] = delta

    before = [c.read(true_time) for c in clocks]
    average = sum(usable.values()) / len(usable)
    adjustments: Dict[str, float] = {}
    for clock in clocks:
        delta = readings[clock.name]
        correction = average - delta
        if clock.name in discarded:
            # Faulty clocks are told the full correction too (Berkeley
            # still fixes them; it just excludes them from the average).
            correction = average - delta
        clock.adjust(correction)
        adjustments[clock.name] = correction

    after = [c.read(true_time) for c in clocks]
    return BerkeleyReport(
        average_adjustment=average,
        adjustments=adjustments,
        discarded=discarded,
        spread_before=max(before) - min(before),
        spread_after=max(after) - min(after),
    )

"""Leader election: the ring (Chang–Roberts) and bully algorithms.

Simulated deterministically over a static process set with crash faults
declared up front; both functions return the elected leader *and* the
message count, the comparison the lecture builds (ring: O(n) to O(n²)
messages; bully: O(n²) worst case but faster convergence when the top
survivor starts).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Set, Tuple

__all__ = ["ElectionResult", "ring_election", "bully_election"]


@dataclasses.dataclass(frozen=True)
class ElectionResult:
    """Outcome of one election."""

    leader: int
    messages: int
    rounds: int


def ring_election(
    ids: Sequence[int], initiator: int, crashed: Set[int] = frozenset()
) -> ElectionResult:
    """Chang–Roberts on a unidirectional ring.

    Processes sit in ``ids`` order around the ring.  An ELECTION token
    carries the maximum live id seen so far; when it returns to that
    maximum's owner, a COORDINATOR message circulates.  Crashed processes
    are skipped by their predecessors (next-hop forwarding cost is still
    one message per live hop).
    """
    if initiator in crashed:
        raise ValueError("initiator must be alive")
    live = [p for p in ids if p not in crashed]
    if not live:
        raise ValueError("no live processes")
    n = len(ids)
    order = list(ids)

    def next_live(pos: int) -> int:
        for step in range(1, n + 1):
            candidate = order[(pos + step) % n]
            if candidate not in crashed:
                return (pos + step) % n
        raise AssertionError("unreachable: at least one live process exists")

    messages = 0
    pos = order.index(initiator)
    token = initiator
    # Election phase: the token travels until it returns to the max id.
    current = next_live(pos)
    messages += 1
    while order[current] != token:
        token = max(token, order[current])
        current = next_live(current)
        messages += 1
    leader = token
    # Coordinator phase: one full circulation of the result.
    start = current
    current = next_live(current)
    messages += 1
    while current != start:
        current = next_live(current)
        messages += 1
    return ElectionResult(leader=leader, messages=messages, rounds=2)


def bully_election(
    ids: Sequence[int], initiator: int, crashed: Set[int] = frozenset()
) -> ElectionResult:
    """The bully algorithm.

    The initiator challenges all higher ids; any live higher process
    answers (OK) and takes over the election.  The highest live id wins
    and broadcasts COORDINATOR to all lower live processes.  Message
    counting follows the textbook accounting: ELECTION and OK messages to
    crashed processes still cost a send (you don't know they're dead).
    """
    if initiator in crashed:
        raise ValueError("initiator must be alive")
    live = sorted(p for p in ids if p not in crashed)
    messages = 0
    rounds = 0
    current_initiators: List[int] = [initiator]
    seen: Set[int] = set()
    while current_initiators:
        rounds += 1
        next_initiators: List[int] = []
        for p in current_initiators:
            if p in seen:
                continue
            seen.add(p)
            higher = [q for q in ids if q > p]
            messages += len(higher)  # ELECTION to every higher id
            responders = [q for q in higher if q not in crashed]
            messages += len(responders)  # OK replies
            for q in responders:
                if q not in seen:
                    next_initiators.append(q)
            if not responders:
                # p hears silence: p is the leader.
                lower_live = [q for q in live if q < p]
                messages += len(lower_live)  # COORDINATOR broadcast
                return ElectionResult(leader=p, messages=messages, rounds=rounds)
        current_initiators = sorted(set(next_initiators))
    # The highest live process never found a superior: it is the leader.
    leader = max(live)
    messages += len([q for q in live if q < leader])
    return ElectionResult(leader=leader, messages=messages, rounds=rounds)

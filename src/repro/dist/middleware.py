"""Middleware: RPC, client stubs, and a name service over :mod:`repro.net`.

RIT's course covers "middleware, distributed objects, and web services";
this module is the lab where students *build* the middleware instead of
just calling it:

- :class:`RpcServer` exports a plain Python object's public methods over
  a connection; concurrent clients get threaded handlers.
- :func:`rpc_proxy` manufactures a client stub whose attribute access
  turns into remote calls — location transparency in ~30 lines, including
  the part that leaks (exceptions arrive as :class:`RemoteError`, and
  latency is visible), which is the lecture's honesty clause.
- :class:`NameService` maps service names to addresses so clients bind by
  name (the registry pattern under every distributed-object system).

Failure semantics (the other half of the honesty clause): under an
active :class:`~repro.faults.plan.FaultPlan`, a stub call that crosses a
partition, reaches a crashed server, or loses its reply raises
:class:`~repro.faults.errors.Unavailable` — one exception for every
cause the client cannot distinguish.  :meth:`RpcServer.crash` /
:meth:`RpcServer.restart` script the server side of that story, and the
:mod:`repro.faults.policies` wrappers (retry, breaker) compose around
stub methods to survive it.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from repro.faults.errors import FaultError, Unavailable
from repro.net.simnet import Address, Network
from repro.net.sockets import Connection, ServerSocket
from repro.runtime import MetricRegistry, RunContext

__all__ = ["RemoteError", "RpcServer", "rpc_proxy", "NameService", "Unavailable"]


class RemoteError(RuntimeError):
    """A remote method raised; carries the remote exception's repr."""


class RpcServer:
    """Exports ``obj``'s public methods at ``address``.

    Wire protocol: request ``("call", method, args, kwargs)``; response
    ``("ok", result)`` or ``("err", repr(exception))``.  One thread per
    connection; the exported object must handle its own synchronization
    (a deliberate teaching choice — the KV-store lab revisits it).
    """

    def __init__(
        self,
        network: Network,
        address: Address,
        obj: Any,
        context: Optional[RunContext] = None,
    ) -> None:
        self.network = network
        self.address = address
        self.obj = obj
        self.context = context if context is not None else network.context
        registry = (
            self.context.registry if self.context is not None
            else MetricRegistry()
        )
        self._calls = registry.counter("dist.rpc.calls")
        self._errors = registry.counter("dist.rpc.errors")
        self._server = ServerSocket(network, address)
        self._running = False
        self._crashed = False
        self._threads: List[threading.Thread] = []
        self._conns: List[Connection] = []
        self._accept_thread: Optional[threading.Thread] = None

    @property
    def calls_served(self) -> int:
        """Total RPC requests handled (``dist.rpc.calls`` in the registry)."""
        return self._calls.value

    def start(self) -> "RpcServer":
        """Start serving in the background."""
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            daemon=True,
            name=f"rpc-accept-{self.address}",
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn = self._server.accept(timeout=0.2)
            except (TimeoutError, OSError):
                if not self._running:
                    return
                continue
            # Stable names keep trace lanes deterministic across runs.
            t = threading.Thread(
                target=self._serve,
                args=(conn,),
                daemon=True,
                name=f"rpc-serve-{self.address}-{len(self._threads)}",
            )
            self._threads.append(t)
            self._conns.append(conn)
            t.start()

    def _plan_says_crashed(self) -> bool:
        plan = self.network.fault_plan
        return plan is not None and plan.is_crashed(self.address.host)

    def _serve(self, conn: Connection) -> None:
        try:
            while True:
                try:
                    message = conn.recv(timeout=0.5)
                except TimeoutError:
                    # Idle connection: keep waiting while the server runs
                    # (closing the connection surfaces as EOFError).
                    if self._running and not self._crashed:
                        continue
                    return
                if self._crashed or self._plan_says_crashed():
                    # Fail-stop: no reply, and the connection dies so a
                    # blocked client learns through EOF, not a hang.
                    conn.abort()
                    return
                if (
                    not isinstance(message, tuple)
                    or len(message) != 4
                    or message[0] != "call"
                ):
                    conn.send(("err", f"malformed request: {message!r}"))
                    continue
                _tag, method_name, args, kwargs = message
                self._calls.inc()
                try:
                    if method_name.startswith("_"):
                        raise AttributeError(
                            f"private method {method_name!r} is not exported"
                        )
                    method: Callable[..., Any] = getattr(self.obj, method_name)
                    if self.context is not None:
                        with self.context.tracer.span(
                            f"rpc.{method_name}", cat="dist"
                        ):
                            result = method(*args, **kwargs)
                    else:
                        result = method(*args, **kwargs)
                    conn.send(("ok", result))
                except Exception as exc:  # noqa: BLE001 - marshalled to client
                    self._errors.inc()
                    conn.send(("err", repr(exc)))
        except (EOFError, BrokenPipeError):
            pass
        finally:
            conn.close()

    def stop(self) -> None:
        """Stop accepting; finish in-flight handlers."""
        self._running = False
        self._server.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for t in self._threads:
            t.join(timeout=5)

    def crash(self) -> None:
        """Fail-stop now: abort every connection, stop listening.

        Clients blocked in ``recv`` see EOF (→ ``Unavailable`` through a
        stub), new connects are refused.  State in ``self.obj`` survives
        in memory only because this is a simulation — a restarted server
        re-exports the *same object*, the volatile-state caveat the
        fault-tolerance lab discusses.
        """
        self._crashed = True
        self._running = False
        self._server.close()
        for conn in self._conns:
            conn.abort()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        if self.context is not None:
            self.context.tracer.instant(
                "rpc.crash", cat="dist", args={"addr": str(self.address)}
            )

    def restart(self) -> "RpcServer":
        """Come back after :meth:`crash`: rebind the address and serve."""
        if not self._crashed:
            raise RuntimeError("restart() without a prior crash()")
        self._crashed = False
        self._conns = []
        self._server = ServerSocket(self.network, self.address)
        if self.context is not None:
            self.context.tracer.instant(
                "rpc.restart", cat="dist", args={"addr": str(self.address)}
            )
        return self.start()

    def __enter__(self) -> "RpcServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class _RpcProxy:
    """The client stub: attribute access becomes a remote call.

    Distribution leaks here by design: a call that cannot complete — the
    link partitioned, the server crashed, the reply never came back
    before ``timeout`` — raises :class:`~repro.faults.errors.Unavailable`
    instead of hanging, which is the contract the resilience policies
    wrap.
    """

    def __init__(
        self, conn: Connection, timeout: Optional[float] = 10.0
    ) -> None:
        object.__setattr__(self, "_conn", conn)
        object.__setattr__(self, "_timeout", timeout)

    def __getattr__(self, name: str) -> Callable[..., Any]:
        conn: Connection = object.__getattribute__(self, "_conn")
        timeout = object.__getattribute__(self, "_timeout")

        def call(*args: Any, **kwargs: Any) -> Any:
            try:
                conn.send(("call", name, args, kwargs))
                status, payload = conn.recv(timeout=timeout)
            except (FaultError, ConnectionError, EOFError, TimeoutError) as exc:
                raise Unavailable(
                    f"rpc {name!r} to {conn.peer} failed: {exc}"
                ) from exc
            if status == "ok":
                return payload
            raise RemoteError(payload)

        call.__name__ = name
        return call

    def _close(self) -> None:
        object.__getattribute__(self, "_conn").close()


def rpc_proxy(
    network: Network,
    address: Address,
    host: str = "client",
    timeout: Optional[float] = 10.0,
) -> _RpcProxy:
    """Connect and return a stub for the service at ``address``.

    ``timeout`` bounds each call's wait for its reply; expiry surfaces
    as :class:`~repro.faults.errors.Unavailable` (indistinguishable from
    a crash — deliberately).
    """
    try:
        conn = Connection.connect(network, address, local_host=host)
    except (FaultError, ConnectionError) as exc:
        raise Unavailable(f"cannot reach {address}: {exc}") from exc
    return _RpcProxy(conn, timeout=timeout)


class NameService:
    """A registry mapping service names to addresses.

    Itself exported over RPC in the integrated labs (it is just an
    object), closing the loop: the name service is a distributed object
    that names distributed objects.
    """

    def __init__(self, context: Optional[RunContext] = None) -> None:
        self._registry: Dict[str, Address] = {}
        self._lock = threading.Lock()
        metrics = (
            context.registry if context is not None else MetricRegistry()
        )
        self._registrations = metrics.counter("dist.nameservice.registrations")
        self._lookups = metrics.counter("dist.nameservice.lookups")

    def register(self, name: str, host: str, port: int) -> bool:
        """Bind ``name`` to an address; re-binding overwrites."""
        self._registrations.inc()
        with self._lock:
            self._registry[name] = Address(host, port)
            return True

    def lookup(self, name: str) -> Optional[tuple]:
        """Resolve ``name`` to ``(host, port)`` or ``None``."""
        self._lookups.inc()
        with self._lock:
            addr = self._registry.get(name)
            return (addr.host, addr.port) if addr else None

    def unregister(self, name: str) -> bool:
        """Remove a binding; returns whether it existed."""
        with self._lock:
            return self._registry.pop(name, None) is not None

    def services(self) -> List[str]:
        """All registered names, sorted."""
        with self._lock:
            return sorted(self._registry)

"""Chandy–Lamport distributed snapshots.

AUC's distributed-computing course covers "modeling and specification …
and distributed challenges" (paper §IV-B); the global-snapshot problem is
the canonical specimen: record a consistent global state of a running
message-passing system without stopping it.

The simulation runs processes holding token balances that send transfer
messages over FIFO channels; an initiator starts the Chandy–Lamport
protocol (record own state, send markers on all outgoing channels; on
first marker, record state and start recording every other channel until
its marker arrives).  The classic invariant — the snapshot's total
balance equals the system's conserved total, even though the snapshot is
taken mid-flight — is what the tests assert.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["TokenSystem", "Snapshot"]


@dataclasses.dataclass
class Snapshot:
    """A recorded consistent global state."""

    process_states: Dict[int, int]  # pid -> recorded balance
    channel_states: Dict[Tuple[int, int], List[int]]  # (src, dst) -> in-flight

    @property
    def total(self) -> int:
        """Recorded balances plus recorded in-flight transfers."""
        in_flight = sum(sum(msgs) for msgs in self.channel_states.values())
        return sum(self.process_states.values()) + in_flight


_MARKER = "MARKER"


class TokenSystem:
    """N processes exchanging token transfers over FIFO channels.

    Deterministic: the caller scripts transfers with :meth:`transfer` and
    message deliveries with :meth:`deliver_one`; the snapshot protocol
    rides the same channels (so markers order correctly w.r.t. data, the
    property the algorithm depends on).
    """

    def __init__(self, balances: List[int]) -> None:
        if not balances:
            raise ValueError("need at least one process")
        self.n = len(balances)
        self.balances = list(balances)
        self.channels: Dict[Tuple[int, int], Deque[object]] = {
            (i, j): collections.deque()
            for i in range(self.n)
            for j in range(self.n)
            if i != j
        }
        # Snapshot state:
        self._recording: Dict[int, bool] = {p: False for p in range(self.n)}
        self._recorded_state: Dict[int, int] = {}
        self._recording_channel: Dict[Tuple[int, int], bool] = {}
        self._channel_record: Dict[Tuple[int, int], List[int]] = {}
        self._markers_pending: Dict[int, int] = {}
        self.snapshot_done = False

    # -- application actions ----------------------------------------------------
    def transfer(self, src: int, dst: int, amount: int) -> None:
        """``src`` sends ``amount`` tokens to ``dst`` (debited at send)."""
        if amount <= 0 or self.balances[src] < amount:
            raise ValueError("invalid transfer")
        self.balances[src] -= amount
        self.channels[(src, dst)].append(amount)

    def deliver_one(self, src: int, dst: int) -> Optional[object]:
        """Deliver the head message of channel (src, dst), if any."""
        channel = self.channels[(src, dst)]
        if not channel:
            return None
        msg = channel.popleft()
        if msg == _MARKER:
            self._on_marker(src, dst)
        else:
            assert isinstance(msg, int)
            self.balances[dst] += msg
            if self._recording_channel.get((src, dst)):
                self._channel_record[(src, dst)].append(msg)
        return msg

    def deliver_all(self) -> None:
        """Drain every channel round-robin until the system quiesces."""
        progress = True
        while progress:
            progress = False
            for key in sorted(self.channels):
                if self.channels[key]:
                    self.deliver_one(*key)
                    progress = True

    @property
    def total(self) -> int:
        """Conserved quantity: balances plus in-flight transfers."""
        in_flight = sum(
            sum(m for m in ch if isinstance(m, int))
            for ch in self.channels.values()
        )
        return sum(self.balances) + in_flight

    # -- the Chandy-Lamport protocol ----------------------------------------------
    def start_snapshot(self, initiator: int) -> None:
        """The initiator records itself and emits markers."""
        self._record_process(initiator)

    def _record_process(self, pid: int) -> None:
        if self._recording[pid]:
            return
        self._recording[pid] = True
        self._recorded_state[pid] = self.balances[pid]
        # Markers out on every outgoing channel.
        for dst in range(self.n):
            if dst != pid:
                self.channels[(pid, dst)].append(_MARKER)
        # Start recording every incoming channel.
        incoming = [(src, pid) for src in range(self.n) if src != pid]
        self._markers_pending[pid] = len(incoming)
        for key in incoming:
            self._recording_channel[key] = True
            self._channel_record.setdefault(key, [])

    def _on_marker(self, src: int, dst: int) -> None:
        if not self._recording[dst]:
            # First marker: record state; channel (src,dst) records empty.
            self._record_process(dst)
        # Marker closes the (src, dst) channel's recording.
        if self._recording_channel.get((src, dst)):
            self._recording_channel[(src, dst)] = False
        self._markers_pending[dst] = self._markers_pending.get(dst, 0) - 1
        if all(
            self._recording[p] and self._markers_pending.get(p, 1) <= 0
            for p in range(self.n)
        ):
            self.snapshot_done = True

    def snapshot(self) -> Snapshot:
        """The recorded global state (call once :attr:`snapshot_done`)."""
        if not self.snapshot_done:
            raise RuntimeError("snapshot has not completed yet")
        return Snapshot(
            process_states=dict(self._recorded_state),
            channel_states={
                k: list(v) for k, v in self._channel_record.items() if v
            },
        )

"""Distributed mutual exclusion: Lamport, Ricart–Agrawala, token ring.

Simulated deterministically: ``requests`` lists which processes want the
critical section (with logical request times); the simulation plays each
algorithm's message protocol and reports total messages and the entry
order.  The headline numbers match the textbook:

- Lamport's algorithm: ``3(n-1)`` messages per entry (REQUEST, REPLY,
  RELEASE to/from everyone else);
- Ricart–Agrawala: ``2(n-1)`` (deferred replies absorb the release);
- token ring: between 1 and ``n`` messages per entry (token forwarding).

All three produce the same mutual-exclusion-safe entry order for a given
request schedule (ordered by Lamport timestamp, process id as
tie-breaker), which the tests assert.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Sequence, Tuple

__all__ = ["MutexAlgorithm", "MutexResult", "simulate_mutex"]


class MutexAlgorithm(enum.Enum):
    """Which mutual-exclusion protocol to simulate."""

    LAMPORT = "lamport"
    RICART_AGRAWALA = "ricart-agrawala"
    TOKEN_RING = "token-ring"


@dataclasses.dataclass(frozen=True)
class MutexResult:
    """Outcome of one simulation."""

    entry_order: Tuple[Tuple[int, int], ...]  # (timestamp, process)
    messages: int
    messages_per_entry: float


def simulate_mutex(
    n: int,
    requests: Sequence[Tuple[int, int]],
    algorithm: MutexAlgorithm = MutexAlgorithm.RICART_AGRAWALA,
) -> MutexResult:
    """Simulate ``requests`` = [(timestamp, process), ...] through one protocol.

    Timestamps are the processes' Lamport request times; (timestamp, pid)
    pairs must be unique — that pair *is* the total order every protocol
    agrees on.
    """
    if n < 2:
        raise ValueError("need at least two processes")
    reqs = sorted(requests)
    if len(set(reqs)) != len(reqs):
        raise ValueError("(timestamp, process) pairs must be unique")
    for _ts, p in reqs:
        if not 0 <= p < n:
            raise ValueError(f"process {p} out of range")

    entries = tuple(reqs)  # all protocols grant in (ts, pid) order
    if algorithm is MutexAlgorithm.LAMPORT:
        # REQUEST to n-1, REPLY from n-1, RELEASE to n-1.
        messages = len(reqs) * 3 * (n - 1)
    elif algorithm is MutexAlgorithm.RICART_AGRAWALA:
        # REQUEST to n-1, REPLY from n-1; releases ride on deferred replies.
        messages = len(reqs) * 2 * (n - 1)
    elif algorithm is MutexAlgorithm.TOKEN_RING:
        # Token hops from the current holder to the next requester.
        messages = 0
        holder = 0
        for _ts, p in entries:
            hops = (p - holder) % n
            messages += hops  # zero if the holder itself re-enters
            holder = p
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown algorithm {algorithm!r}")

    per_entry = messages / len(reqs) if reqs else 0.0
    return MutexResult(
        entry_order=entries, messages=messages, messages_per_entry=per_entry
    )


def message_complexity_table(n: int, num_requests: int = 8) -> List[dict]:
    """Messages-per-entry comparison across the three protocols.

    Requests round-robin across processes — the fair-load case the
    lecture table assumes.
    """
    requests = [(t + 1, t % n) for t in range(num_requests)]
    rows = []
    for algo in MutexAlgorithm:
        result = simulate_mutex(n, requests, algo)
        rows.append(
            {
                "algorithm": algo.value,
                "messages": result.messages,
                "per_entry": result.messages_per_entry,
            }
        )
    return rows

"""Process migration: when moving work is worth the freight.

AUC's distributed course lists process migration.  The model: nodes carry
processes with remaining work; a migration policy periodically moves
processes from overloaded to underloaded nodes, paying a transfer cost
proportional to the process's memory footprint.  The simulation exposes
the trade-off: aggressive migration balances load but can *increase*
makespan when transfer costs dominate — the ablation the bench sweeps.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime import RunContext

__all__ = ["MigratingProcess", "MigrationPolicy", "MigrationReport", "Cluster"]


@dataclasses.dataclass
class MigratingProcess:
    """A process with remaining CPU work and a memory footprint."""

    pid: int
    work: float
    memory: float = 1.0
    home: int = 0
    migrations: int = 0

    def __post_init__(self) -> None:
        if self.work <= 0 or self.memory <= 0:
            raise ValueError("work and memory must be positive")


class MigrationPolicy(enum.Enum):
    """When to migrate."""

    NEVER = "never"
    THRESHOLD = "threshold"  # move when a node exceeds mean load by a factor
    GREEDY_REBALANCE = "greedy"  # always equalize at each step


@dataclasses.dataclass
class MigrationReport:
    """Outcome of one cluster run."""

    policy: MigrationPolicy
    makespan: float
    migrations: int
    transfer_cost: float
    final_loads: List[float]

    @property
    def imbalance(self) -> float:
        """Max/mean of total per-node busy time."""
        arr = np.asarray(self.final_loads)
        mean = arr.mean()
        return float(arr.max() / mean) if mean > 0 else 1.0


class Cluster:
    """A cluster of nodes executing processes in discrete time steps.

    Each step: every node runs its processes (processor sharing — one
    unit of CPU split evenly among residents), then the policy may migrate
    one process per overloaded node.  ``transfer_cost_per_mem`` freezes a
    migrating process for that many steps per unit memory (the copy time).
    """

    def __init__(
        self,
        nodes: int,
        policy: MigrationPolicy = MigrationPolicy.NEVER,
        threshold: float = 1.5,
        transfer_cost_per_mem: float = 1.0,
        context: Optional[RunContext] = None,
    ) -> None:
        if nodes < 1:
            raise ValueError("need at least one node")
        self.nodes = nodes
        self.policy = policy
        self.threshold = threshold
        self.transfer_cost_per_mem = transfer_cost_per_mem
        self._context = context
        self._residents: List[List[MigratingProcess]] = [[] for _ in range(nodes)]
        self._frozen_until: Dict[int, float] = {}
        self.migrations = 0
        self.transfer_cost = 0.0

    def submit(self, process: MigratingProcess, node: Optional[int] = None) -> None:
        """Place a process on a node (default: its ``home``)."""
        target = process.home if node is None else node
        if not 0 <= target < self.nodes:
            raise ValueError("node out of range")
        process.home = target
        self._residents[target].append(process)

    def node_load(self, node: int) -> float:
        """Remaining work resident on ``node``."""
        return sum(p.work for p in self._residents[node])

    def run(self, max_steps: int = 100_000) -> MigrationReport:
        """Run to completion; returns the report."""
        busy = [0.0] * self.nodes
        step = 0
        while any(self._residents[n] for n in range(self.nodes)):
            step += 1
            if step > max_steps:
                raise RuntimeError("cluster run exceeded max_steps")
            # Execute one time unit per node, processor-sharing style.
            for n in range(self.nodes):
                active = [
                    p
                    for p in self._residents[n]
                    if self._frozen_until.get(p.pid, 0.0) < step
                ]
                if not active:
                    continue
                busy[n] += 1.0
                share = 1.0 / len(active)
                for p in active:
                    p.work -= share
                self._residents[n] = [p for p in self._residents[n] if p.work > 1e-9]
            self._maybe_migrate(step)
        return MigrationReport(
            policy=self.policy,
            makespan=float(step),
            migrations=self.migrations,
            transfer_cost=self.transfer_cost,
            final_loads=busy,
        )

    def _maybe_migrate(self, step: int) -> None:
        if self.policy is MigrationPolicy.NEVER:
            return
        loads = [self.node_load(n) for n in range(self.nodes)]
        mean = sum(loads) / self.nodes
        if mean <= 0:
            return
        for n in range(self.nodes):
            overloaded = (
                loads[n] > self.threshold * mean
                if self.policy is MigrationPolicy.THRESHOLD
                else loads[n] > mean
            )
            if not overloaded or len(self._residents[n]) <= 1:
                continue
            target = int(np.argmin(loads))
            if target == n or loads[n] - loads[target] < 1e-9:
                continue
            # Move the smallest process (cheapest copy, least disruption).
            process = min(self._residents[n], key=lambda p: p.memory)
            self._residents[n].remove(process)
            self._residents[target].append(process)
            process.migrations += 1
            self.migrations += 1
            if self._context is not None:
                self._context.registry.counter("dist.migration.moves").inc()
                self._context.tracer.instant(
                    "dist.migrate",
                    cat="dist",
                    tid="dist.cluster",
                    args={"pid": process.pid, "from": n, "to": target},
                    ts_us=step,
                )
            cost = process.memory * self.transfer_cost_per_mem
            self.transfer_cost += cost
            self._frozen_until[process.pid] = step + cost
            loads[n] -= process.work
            loads[target] += process.work


def migration_sweep(
    num_processes: int = 24,
    nodes: int = 4,
    seed: int = 0,
    transfer_costs: Sequence[float] = (0.0, 1.0, 4.0, 16.0),
    context: Optional[RunContext] = None,
) -> List[Tuple[float, Dict[str, float]]]:
    """Makespan vs transfer cost for each policy (the bench's data).

    All processes start on node 0 — the "hotspot relief" scenario where
    migration matters most.  With a ``context``, the workload stream
    derives from the run's root seed (stream ``dist.migration``).
    """
    if context is not None:
        rng = context.rng.fresh_stream("dist.migration")
    else:
        rng = np.random.default_rng(seed)
    # One workload, shared by every (cost, policy) cell of the sweep.
    workload = [
        (float(rng.integers(5, 20)), float(rng.integers(1, 4)))
        for _ in range(num_processes)
    ]
    results = []
    for cost in transfer_costs:
        row: Dict[str, float] = {}
        for policy in MigrationPolicy:
            cluster = Cluster(
                nodes, policy, transfer_cost_per_mem=cost, context=context
            )
            for pid, (work, memory) in enumerate(workload):
                cluster.submit(
                    MigratingProcess(pid=pid, work=work, memory=memory, home=0)
                )
            row[policy.value] = cluster.run().makespan
        results.append((float(cost), row))
    return results

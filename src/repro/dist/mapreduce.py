"""A MapReduce engine on the shared-memory thread team.

The capstone pattern of distributed-programming units: users supply
``map_fn(item) -> [(key, value), ...]`` and ``reduce_fn(key, values) ->
result``; the engine runs map tasks in parallel (via
:func:`repro.smp.pool.parallel_map`), shuffles by key hash into reduce
partitions, runs reducers in parallel, and reports per-phase statistics
(task counts, shuffle volume, partition skew) — the quantities that
dominate real MapReduce tuning discussions.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Generic, Hashable, List, Sequence, Tuple, TypeVar

from repro.smp.pool import parallel_map

T = TypeVar("T")
K = TypeVar("K", bound=Hashable)
V = TypeVar("V")
R = TypeVar("R")

__all__ = ["MapReduce", "JobStats", "word_count"]


@dataclasses.dataclass
class JobStats:
    """Per-phase accounting of one job."""

    map_tasks: int = 0
    intermediate_pairs: int = 0
    partitions: int = 0
    reduce_tasks: int = 0
    max_partition_pairs: int = 0

    @property
    def shuffle_skew(self) -> float:
        """Largest partition / mean partition size (1.0 = even shuffle)."""
        if self.partitions == 0 or self.intermediate_pairs == 0:
            return 1.0
        mean = self.intermediate_pairs / self.partitions
        return self.max_partition_pairs / mean if mean else 1.0


class MapReduce(Generic[T, K, V, R]):
    """One configured job: ``MapReduce(map_fn, reduce_fn).run(items)``."""

    def __init__(
        self,
        map_fn: Callable[[T], Sequence[Tuple[K, V]]],
        reduce_fn: Callable[[K, List[V]], R],
        num_workers: int = 4,
        num_partitions: int = 8,
    ) -> None:
        if num_workers < 1 or num_partitions < 1:
            raise ValueError("workers and partitions must be positive")
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.num_workers = num_workers
        self.num_partitions = num_partitions
        self.stats = JobStats()

    def run(self, items: Sequence[T]) -> Dict[K, R]:
        """Execute map → shuffle → reduce; returns ``{key: reduced}``."""
        stats = JobStats(map_tasks=len(items), partitions=self.num_partitions)

        # Map phase: parallel over input items.
        mapped: List[Sequence[Tuple[K, V]]] = parallel_map(
            self.map_fn, items, num_threads=self.num_workers
        )

        # Shuffle: hash-partition, then group by key within each partition.
        partitions: List[Dict[K, List[V]]] = [
            {} for _ in range(self.num_partitions)
        ]
        for pairs in mapped:
            for key, value in pairs:
                stats.intermediate_pairs += 1
                bucket = partitions[hash(key) % self.num_partitions]
                bucket.setdefault(key, []).append(value)
        stats.max_partition_pairs = max(
            (sum(len(v) for v in p.values()) for p in partitions), default=0
        )

        # Reduce phase: parallel over partitions.
        def reduce_partition(partition: Dict[K, List[V]]) -> Dict[K, R]:
            return {
                key: self.reduce_fn(key, values)
                for key, values in sorted(partition.items(), key=lambda kv: str(kv[0]))
            }

        reduced: List[Dict[K, R]] = parallel_map(
            reduce_partition, partitions, num_threads=self.num_workers
        )
        stats.reduce_tasks = sum(1 for p in partitions if p)

        out: Dict[K, R] = {}
        for part in reduced:
            out.update(part)
        self.stats = stats
        return out


def word_count(
    documents: Sequence[str], num_workers: int = 4
) -> Dict[str, int]:
    """The canonical MapReduce example, ready for quickstarts and tests."""

    def mapper(doc: str) -> List[Tuple[str, int]]:
        return [(word.lower(), 1) for word in doc.split() if word]

    def reducer(_word: str, counts: List[int]) -> int:
        return sum(counts)

    job: MapReduce[str, str, int, int] = MapReduce(
        mapper, reducer, num_workers=num_workers
    )
    return job.run(documents)

"""Consistency models, as checkers over register histories.

"Consistency" is a named topic of AUC's distributed course.  Instead of
prose definitions, this module gives *decision procedures* students can
run against histories they construct:

- :func:`is_linearizable` — exhaustive search for a linearization of a
  concurrent history of reads/writes on registers that respects real-time
  order and register semantics (Herlihy & Wing, made executable for
  classroom-sized histories).
- :func:`is_sequentially_consistent` — the same search but only requiring
  per-process program order (Lamport's definition); histories that are SC
  but not linearizable are the classic lecture example, and a test pins
  one.
- :class:`EventuallyConsistentStore` — replicas with last-writer-wins
  merge; anti-entropy rounds drive convergence, which tests assert.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "HistoryEvent",
    "is_linearizable",
    "is_sequentially_consistent",
    "EventuallyConsistentStore",
]


@dataclasses.dataclass(frozen=True)
class HistoryEvent:
    """One completed operation in a concurrent history.

    ``start``/``end`` are real-time bounds (used by linearizability only).
    ``kind`` is ``"r"`` or ``"w"``; a read's ``value`` is what it returned.
    """

    process: int
    kind: str
    register: str
    value: Any
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.kind not in ("r", "w"):
            raise ValueError("kind must be 'r' or 'w'")
        if self.end < self.start:
            raise ValueError("end before start")


def _legal_sequential(order: Sequence[HistoryEvent], initial: Any = None) -> bool:
    """Register semantics: every read returns the latest preceding write."""
    state: Dict[str, Any] = {}
    for ev in order:
        if ev.kind == "w":
            state[ev.register] = ev.value
        else:
            if state.get(ev.register, initial) != ev.value:
                return False
    return True


def _respects_realtime(order: Sequence[HistoryEvent]) -> bool:
    """op1 before op2 in real time (end1 < start2) must stay ordered."""
    for i, a in enumerate(order):
        for b in order[i + 1 :]:
            if b.end < a.start:
                return False
    return True


def _respects_program_order(order: Sequence[HistoryEvent]) -> bool:
    """Per-process order (by start time) must be preserved."""
    last_start: Dict[int, float] = {}
    for ev in order:
        if ev.process in last_start and ev.start < last_start[ev.process]:
            return False
        last_start[ev.process] = ev.start
    return True


def _search(
    history: Sequence[HistoryEvent],
    need_realtime: bool,
    initial: Any,
) -> Optional[List[HistoryEvent]]:
    events = list(history)
    n = len(events)
    if n > 9:
        raise ValueError(
            "exhaustive checker is for classroom histories (<= 9 events)"
        )
    for perm in itertools.permutations(events):
        if not _respects_program_order(perm):
            continue
        if need_realtime and not _respects_realtime(perm):
            continue
        if _legal_sequential(perm, initial):
            return list(perm)
    return None


def is_linearizable(
    history: Sequence[HistoryEvent], initial: Any = None
) -> bool:
    """Is there a legal total order respecting real-time precedence?"""
    return _search(history, need_realtime=True, initial=initial) is not None


def is_sequentially_consistent(
    history: Sequence[HistoryEvent], initial: Any = None
) -> bool:
    """Is there a legal total order respecting only program order?"""
    return _search(history, need_realtime=False, initial=initial) is not None


class EventuallyConsistentStore:
    """Replicated last-writer-wins registers with anti-entropy gossip.

    Writes land on one replica with a (timestamp, replica) version;
    :meth:`anti_entropy_round` pairwise-merges replicas; :meth:`converged`
    reports whether all replicas agree — which they always do after
    enough rounds, the "eventual" in the name.
    """

    def __init__(self, replicas: int) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.replicas = replicas
        # replica -> register -> (timestamp, origin_replica, value)
        self._state: List[Dict[str, Tuple[float, int, Any]]] = [
            {} for _ in range(replicas)
        ]
        self.merges = 0

    def write(self, replica: int, register: str, value: Any, timestamp: float) -> None:
        """A client writes at one replica."""
        self._merge_entry(replica, register, (timestamp, replica, value))

    def read(self, replica: int, register: str) -> Any:
        """A client reads at one replica (possibly stale)."""
        entry = self._state[replica].get(register)
        return entry[2] if entry else None

    def _merge_entry(
        self, replica: int, register: str, entry: Tuple[float, int, Any]
    ) -> None:
        current = self._state[replica].get(register)
        if current is None or entry[:2] > current[:2]:  # LWW, replica id breaks ties
            self._state[replica][register] = entry

    def anti_entropy_round(self) -> None:
        """Every replica gossips with its ring successor (both directions)."""
        for a in range(self.replicas):
            b = (a + 1) % self.replicas
            for src, dst in ((a, b), (b, a)):
                for register, entry in self._state[src].items():
                    self._merge_entry(dst, register, entry)
            self.merges += 1

    def converged(self) -> bool:
        """Do all replicas hold identical state?"""
        return all(s == self._state[0] for s in self._state[1:])

    def converge(self, max_rounds: int = 64) -> int:
        """Run anti-entropy until convergence; returns rounds used."""
        for round_no in range(1, max_rounds + 1):
            self.anti_entropy_round()
            if self.converged():
                return round_no
        raise RuntimeError("did not converge (should be impossible)")

"""Snooping cache coherence: MSI and MESI on a shared bus.

"Multiprocessor caches and cache coherence" is a Table I architecture
topic.  :class:`CoherentSystem` simulates per-core caches (line-granular,
infinite capacity — coherence traffic, not capacity, is the subject) that
snoop a shared bus.  Both protocols are implemented so the ablation bench
can show MESI's point: the E state makes *private* read-then-write
sequences free of invalidation broadcasts.

Bus transaction taxonomy (counted per kind): ``BusRd`` (read miss),
``BusRdX`` (write miss), ``BusUpgr`` (S->M upgrade), plus ``writeback`` on
eviction of M lines via :meth:`CoherentSystem.evict`.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from repro.runtime import RunContext
from repro.runtime.metrics import RegistryStats

__all__ = ["Protocol", "LineState", "BusStats", "CoherentSystem"]


class Protocol(enum.Enum):
    """Which invalidation protocol the system runs."""

    MSI = "MSI"
    MESI = "MESI"


class LineState(enum.Enum):
    """Per-core line states (E is only reachable under MESI)."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class BusStats(RegistryStats):
    """Shared-bus transaction counters (``arch.bus.*`` in the registry)."""

    fields = (
        "bus_rd",
        "bus_rdx",
        "bus_upgr",
        "invalidations",
        "writebacks",
        "memory_reads",
        "cache_to_cache",
    )
    default_prefix = "arch.bus"

    @property
    def total_transactions(self) -> int:
        """All coherence bus transactions (excluding writebacks)."""
        return self.bus_rd + self.bus_rdx + self.bus_upgr


class CoherentSystem:
    """N coherent caches over one snooping bus."""

    def __init__(
        self,
        num_cores: int,
        protocol: Protocol = Protocol.MESI,
        context: Optional[RunContext] = None,
    ) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be positive")
        self.num_cores = num_cores
        self.protocol = protocol
        self._state: List[Dict[int, LineState]] = [
            {} for _ in range(num_cores)
        ]
        if context is not None:
            self.stats = BusStats(registry=context.registry)
        else:
            self.stats = BusStats()

    # -- helpers -------------------------------------------------------------
    def state_of(self, core: int, line: int) -> LineState:
        """Current state of ``line`` in ``core``'s cache."""
        return self._state[core].get(line, LineState.INVALID)

    def _others_with(self, core: int, line: int) -> List[int]:
        return [
            c
            for c in range(self.num_cores)
            if c != core and self.state_of(c, line) is not LineState.INVALID
        ]

    # -- processor-side operations ------------------------------------------
    def read(self, core: int, line: int) -> LineState:
        """Core ``core`` loads from ``line``; returns the resulting state."""
        state = self.state_of(core, line)
        if state is not LineState.INVALID:
            return state  # hit in M/E/S: no bus traffic

        # Read miss: BusRd.
        self.stats.bus_rd += 1
        holders = self._others_with(core, line)
        supplied_by_cache = False
        for other in holders:
            other_state = self.state_of(other, line)
            if other_state in (LineState.MODIFIED, LineState.EXCLUSIVE):
                if other_state is LineState.MODIFIED:
                    self.stats.writebacks += 1  # flush M data on snoop
                supplied_by_cache = True
            self._state[other][line] = LineState.SHARED
        if supplied_by_cache:
            self.stats.cache_to_cache += 1
        else:
            self.stats.memory_reads += 1

        if self.protocol is Protocol.MESI and not holders:
            new_state = LineState.EXCLUSIVE
        else:
            new_state = LineState.SHARED
        self._state[core][line] = new_state
        return new_state

    def write(self, core: int, line: int) -> LineState:
        """Core ``core`` stores to ``line``; returns the resulting state (M)."""
        state = self.state_of(core, line)
        if state is LineState.MODIFIED:
            return state  # hit, already exclusive-dirty
        if state is LineState.EXCLUSIVE:
            # MESI's payoff: silent E->M upgrade, zero bus transactions.
            self._state[core][line] = LineState.MODIFIED
            return LineState.MODIFIED
        if state is LineState.SHARED:
            self.stats.bus_upgr += 1
            self._invalidate_others(core, line)
            self._state[core][line] = LineState.MODIFIED
            return LineState.MODIFIED

        # Write miss: BusRdX.
        self.stats.bus_rdx += 1
        holders = self._others_with(core, line)
        for other in holders:
            if self.state_of(other, line) is LineState.MODIFIED:
                self.stats.writebacks += 1
        if holders:
            self.stats.cache_to_cache += 1
        else:
            self.stats.memory_reads += 1
        self._invalidate_others(core, line)
        self._state[core][line] = LineState.MODIFIED
        return LineState.MODIFIED

    def evict(self, core: int, line: int) -> None:
        """Evict ``line`` from ``core``; M lines write back."""
        state = self.state_of(core, line)
        if state is LineState.MODIFIED:
            self.stats.writebacks += 1
        self._state[core].pop(line, None)

    def _invalidate_others(self, core: int, line: int) -> None:
        for other in self._others_with(core, line):
            del self._state[other][line]
            self.stats.invalidations += 1

    # -- invariants and workloads ----------------------------------------------
    def check_invariant(self) -> None:
        """SWMR: a line in M (or E) anywhere is Invalid everywhere else.

        Raises ``AssertionError`` on violation; used by property tests.
        """
        lines = {l for st in self._state for l in st}
        for line in lines:
            states = [self.state_of(c, line) for c in range(self.num_cores)]
            exclusive = [
                s
                for s in states
                if s in (LineState.MODIFIED, LineState.EXCLUSIVE)
            ]
            if exclusive:
                holders = [
                    s for s in states if s is not LineState.INVALID
                ]
                assert len(holders) == 1, (
                    f"SWMR violated on line {line}: {states}"
                )

    def run_trace(self, trace: List[Tuple[int, str, int]]) -> BusStats:
        """Run ``(core, 'r'|'w', line)`` events; returns the bus stats."""
        for core, kind, line in trace:
            if kind == "r":
                self.read(core, line)
            elif kind == "w":
                self.write(core, line)
            else:
                raise ValueError(f"unknown access kind {kind!r}")
        return self.stats


def private_rw_workload(num_cores: int, repeats: int) -> List[Tuple[int, str, int]]:
    """Each core reads then writes its own private line, ``repeats`` times.

    The MESI showcase: under MESI only the first read per core touches the
    bus; under MSI every first write also costs a BusUpgr.
    """
    trace: List[Tuple[int, str, int]] = []
    for _ in range(repeats):
        for core in range(num_cores):
            trace.append((core, "r", core))
            trace.append((core, "w", core))
    return trace


def ping_pong_workload(repeats: int, line: int = 0) -> List[Tuple[int, str, int]]:
    """Two cores alternately write one line — worst-case invalidation traffic."""
    trace: List[Tuple[int, str, int]] = []
    for _ in range(repeats):
        trace.append((0, "w", line))
        trace.append((1, "w", line))
    return trace

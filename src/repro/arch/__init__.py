"""Computer organization & architecture simulators.

Table I of the paper maps six PDC topics onto the computer organization /
architecture course: performance measurement (speed-up and scalability),
multicore processors, shared vs. distributed memory, SIMD and vector
processors, instruction-level parallelism, and Flynn's taxonomy; the AUC
case study (§IV-B) additionally names pipelining, superscalar/VLIW, and
speculative and non-speculative Tomasulo dynamic scheduling.  Each topic is
one module here:

- :mod:`repro.arch.laws` — Amdahl, Gustafson, Karp–Flatt, efficiency and
  scalability sweeps (NumPy-vectorized).
- :mod:`repro.arch.flynn` — Flynn's taxonomy as a machine classifier.
- :mod:`repro.arch.pipeline` — a 5-stage RISC pipeline with hazard
  detection, optional forwarding, and branch-stall accounting.
- :mod:`repro.arch.cache` — set-associative cache simulation with LRU and
  AMAT.
- :mod:`repro.arch.coherence` — MSI/MESI snooping coherence with bus
  traffic counters.
- :mod:`repro.arch.tomasulo` — Tomasulo dynamic scheduling, with and
  without a reorder buffer (speculation).
- :mod:`repro.arch.vector` — a vector/SIMD machine model with strip-mining.
"""

from repro.arch.branchpred import (
    OneBitPredictor,
    TwoBitPredictor,
    TwoLevelPredictor,
    effective_cpi,
)
from repro.arch.cache import Cache, CacheConfig
from repro.arch.coherence import CoherentSystem, Protocol
from repro.arch.flynn import FlynnClass, MachineDescription, classify
from repro.arch.laws import (
    amdahl_speedup,
    efficiency,
    gustafson_speedup,
    karp_flatt,
    speedup_sweep,
)
from repro.arch.pipeline import Instr, Pipeline, PipelineConfig
from repro.arch.tomasulo import TomasuloCPU
from repro.arch.vector import VectorMachine

__all__ = [
    "amdahl_speedup",
    "Cache",
    "CacheConfig",
    "classify",
    "CoherentSystem",
    "effective_cpi",
    "efficiency",
    "OneBitPredictor",
    "TwoBitPredictor",
    "TwoLevelPredictor",
    "FlynnClass",
    "gustafson_speedup",
    "Instr",
    "karp_flatt",
    "MachineDescription",
    "Pipeline",
    "PipelineConfig",
    "Protocol",
    "speedup_sweep",
    "TomasuloCPU",
    "VectorMachine",
]

"""A set-associative cache simulator ("memory and caching", Table I).

Models one level of cache with configurable size, associativity, line
size, LRU replacement, and write policy (write-back/write-allocate or
write-through/no-allocate).  Counters separate cold, conflict, and
capacity misses via the standard "three Cs" attribution (cold = first
touch of a line; capacity = would also miss in a fully associative cache
of the same size; conflict = the rest), which is how architecture courses
have students reason about strided access patterns.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, List, Optional, OrderedDict, Set

from repro.runtime import RunContext
from repro.runtime.metrics import RegistryStats

__all__ = ["CacheConfig", "CacheStats", "Cache"]


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of the simulated cache."""

    size_bytes: int = 1024
    line_bytes: int = 64
    associativity: int = 2
    write_back: bool = True
    hit_time: float = 1.0  # cycles
    miss_penalty: float = 100.0  # cycles

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "size must be a multiple of line_bytes * associativity"
            )
        for field in ("size_bytes", "line_bytes", "associativity"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be positive")

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def num_lines(self) -> int:
        """Total line slots in the cache."""
        return self.size_bytes // self.line_bytes


class CacheStats(RegistryStats):
    """Access counters for one simulation (``arch.cache.*`` in the registry)."""

    fields = (
        "accesses",
        "hits",
        "misses",
        "cold_misses",
        "capacity_misses",
        "conflict_misses",
        "writebacks",
    )
    default_prefix = "arch.cache"

    @property
    def miss_rate(self) -> float:
        """Misses / accesses."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Hits / accesses."""
        return 1.0 - self.miss_rate if self.accesses else 0.0


class Cache:
    """One cache level with LRU sets and three-C miss classification."""

    def __init__(
        self,
        config: CacheConfig = CacheConfig(),
        context: Optional[RunContext] = None,
        name: str = "cache",
    ) -> None:
        self.config = config
        # Each set maps line_address -> dirty flag, in LRU order (oldest first).
        self._sets: List[OrderedDict[int, bool]] = [
            collections.OrderedDict() for _ in range(config.num_sets)
        ]
        self._ever_seen: Set[int] = set()
        # Shadow fully-associative LRU cache of equal capacity, for the
        # capacity-miss attribution.
        self._shadow: OrderedDict[int, None] = collections.OrderedDict()
        if context is not None:
            self.stats = CacheStats(
                registry=context.registry, prefix=f"arch.{name}"
            )
        else:
            self.stats = CacheStats()

    def _set_index(self, line: int) -> int:
        return line % self.config.num_sets

    def access(self, address: int, write: bool = False) -> bool:
        """Simulate one byte-address access; returns ``True`` on a hit."""
        line = address // self.config.line_bytes
        cache_set = self._sets[self._set_index(line)]
        self.stats.accesses += 1

        shadow_hit = self._shadow_access(line)

        if line in cache_set:
            cache_set.move_to_end(line)
            if write and self.config.write_back:
                cache_set[line] = True
            self.stats.hits += 1
            return True

        # Miss: classify, then fill (write-through/no-allocate skips fill
        # on writes).
        self.stats.misses += 1
        if line not in self._ever_seen:
            self.stats.cold_misses += 1
            self._ever_seen.add(line)
        elif not shadow_hit:
            self.stats.capacity_misses += 1
        else:
            self.stats.conflict_misses += 1

        allocate = self.config.write_back or not write
        if allocate:
            if len(cache_set) >= self.config.associativity:
                _victim, dirty = cache_set.popitem(last=False)
                if dirty:
                    self.stats.writebacks += 1
            cache_set[line] = write and self.config.write_back
        return False

    def _shadow_access(self, line: int) -> bool:
        hit = line in self._shadow
        if hit:
            self._shadow.move_to_end(line)
        else:
            if len(self._shadow) >= self.config.num_lines:
                self._shadow.popitem(last=False)
            self._shadow[line] = None
        return hit

    def run_trace(self, addresses: List[int], writes: bool = False) -> CacheStats:
        """Feed a whole address trace; returns the stats object."""
        for addr in addresses:
            self.access(addr, write=writes)
        return self.stats

    def amat(self) -> float:
        """Average memory access time: ``hit_time + miss_rate * penalty``."""
        return (
            self.config.hit_time
            + self.stats.miss_rate * self.config.miss_penalty
        )

    def contents(self) -> Dict[int, List[int]]:
        """Line addresses currently resident, per set (for small examples)."""
        return {i: list(s.keys()) for i, s in enumerate(self._sets) if s}

"""Branch prediction: the static and dynamic predictors of the ILP unit.

AUC's architecture course (paper §IV-B) covers speculative execution;
prediction accuracy is what makes speculation pay.  Predictors implement
one interface — ``predict(pc) -> bool`` then ``update(pc, taken)`` — and
are evaluated on branch-outcome traces:

- :class:`AlwaysNotTaken` / :class:`AlwaysTaken` — the static baselines;
- :class:`OneBitPredictor` — last-outcome, per-PC; mispredicts *twice*
  per loop (entry and exit), the classic teaching flaw;
- :class:`TwoBitPredictor` — saturating counters; one misprediction per
  loop exit, hysteresis against anomalies;
- :class:`TwoLevelPredictor` — a global history register indexing a
  pattern table; learns alternating and correlated patterns the two-bit
  counter cannot.

:func:`effective_cpi` folds an accuracy into pipeline arithmetic
(``CPI = 1 + branch_fraction * miss_rate * penalty``), connecting the
predictor to :mod:`repro.arch.pipeline`'s measured flush penalty.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "AlwaysNotTaken",
    "AlwaysTaken",
    "OneBitPredictor",
    "TwoBitPredictor",
    "TwoLevelPredictor",
    "PredictorReport",
    "evaluate",
    "effective_cpi",
    "loop_trace",
    "alternating_trace",
]


class AlwaysNotTaken:
    """Static predict-not-taken (what the 5-stage pipeline assumes)."""

    name = "always-not-taken"

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass


class AlwaysTaken:
    """Static predict-taken (right for backward loop branches)."""

    name = "always-taken"

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class OneBitPredictor:
    """Per-PC last-outcome predictor."""

    name = "one-bit"

    def __init__(self) -> None:
        self._last: Dict[int, bool] = {}

    def predict(self, pc: int) -> bool:
        return self._last.get(pc, False)

    def update(self, pc: int, taken: bool) -> None:
        self._last[pc] = taken


class TwoBitPredictor:
    """Per-PC 2-bit saturating counter (00/01 predict NT, 10/11 predict T)."""

    name = "two-bit"

    def __init__(self) -> None:
        self._counter: Dict[int, int] = {}

    def predict(self, pc: int) -> bool:
        return self._counter.get(pc, 1) >= 2

    def update(self, pc: int, taken: bool) -> None:
        c = self._counter.get(pc, 1)
        c = min(3, c + 1) if taken else max(0, c - 1)
        self._counter[pc] = c


class TwoLevelPredictor:
    """GAg two-level predictor: global history -> 2-bit pattern table."""

    name = "two-level"

    def __init__(self, history_bits: int = 4) -> None:
        if history_bits < 1:
            raise ValueError("history_bits must be positive")
        self.history_bits = history_bits
        self._history = 0
        self._mask = (1 << history_bits) - 1
        self._table: Dict[int, int] = {}

    def _index(self, pc: int) -> int:
        return (self._history ^ (pc & self._mask)) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table.get(self._index(pc), 1) >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        c = self._table.get(idx, 1)
        self._table[idx] = min(3, c + 1) if taken else max(0, c - 1)
        self._history = ((self._history << 1) | int(taken)) & self._mask


@dataclasses.dataclass
class PredictorReport:
    """Accuracy of one predictor on one trace."""

    name: str
    branches: int
    mispredictions: int

    @property
    def accuracy(self) -> float:
        """Correct predictions / branches (1.0 on an empty trace)."""
        if self.branches == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.branches


def evaluate(predictor, trace: Iterable[Tuple[int, bool]]) -> PredictorReport:
    """Run ``predictor`` over a ``(pc, taken)`` trace."""
    branches = 0
    misses = 0
    for pc, taken in trace:
        branches += 1
        if predictor.predict(pc) != taken:
            misses += 1
        predictor.update(pc, taken)
    return PredictorReport(
        name=getattr(predictor, "name", type(predictor).__name__),
        branches=branches,
        mispredictions=misses,
    )


def loop_trace(iterations: int, trips: int, pc: int = 0x40) -> List[Tuple[int, bool]]:
    """A loop branch: taken ``iterations-1`` times then not-taken, ``trips``
    times over — the trace where one-bit's double miss shows."""
    if iterations < 1 or trips < 1:
        raise ValueError("iterations and trips must be positive")
    out: List[Tuple[int, bool]] = []
    for _ in range(trips):
        out.extend((pc, True) for _ in range(iterations - 1))
        out.append((pc, False))
    return out


def alternating_trace(n: int, pc: int = 0x80) -> List[Tuple[int, bool]]:
    """T/NT/T/NT… — pathological for counters, trivial for history."""
    return [(pc, bool(i % 2)) for i in range(n)]


def effective_cpi(
    accuracy: float,
    branch_fraction: float = 0.2,
    misprediction_penalty: float = 2.0,
    base_cpi: float = 1.0,
) -> float:
    """Pipeline CPI with a predictor of the given accuracy.

    ``penalty`` defaults to 2 cycles — exactly the flush cost the
    :mod:`repro.arch.pipeline` simulator measures for EX-resolved
    branches.
    """
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError("accuracy must be in [0, 1]")
    if not 0.0 <= branch_fraction <= 1.0:
        raise ValueError("branch_fraction must be in [0, 1]")
    return base_cpi + branch_fraction * (1.0 - accuracy) * misprediction_penalty

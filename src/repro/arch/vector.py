"""A vector/SIMD machine model with strip-mining.

"SIMD and vector processors" and "extracting data parallelism using
vectors and SIMD" appear in Table I and in the LAU course description.
:class:`VectorMachine` executes element-wise kernels over NumPy arrays
while accounting instructions the way a vector ISA would: one vector
instruction covers ``vector_length`` elements, longer arrays strip-mine
into chunks, and the dynamic instruction count is compared against the
scalar-loop equivalent — the quantity SIMD lectures ask students to
compute.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict

import numpy as np

__all__ = ["VectorMachine", "VectorStats"]


@dataclasses.dataclass
class VectorStats:
    """Dynamic instruction accounting for one kernel run."""

    elements: int = 0
    vector_instructions: int = 0
    strip_mine_chunks: int = 0
    scalar_instructions_equivalent: int = 0

    @property
    def instruction_reduction(self) -> float:
        """Scalar / vector dynamic instruction ratio (the SIMD win)."""
        if self.vector_instructions == 0:
            return 1.0
        return self.scalar_instructions_equivalent / self.vector_instructions


class VectorMachine:
    """A vector unit of fixed ``vector_length`` lanes.

    Kernels are expressed as NumPy expressions over chunk views — the
    machine strip-mines the full array into ``vector_length`` chunks and
    charges one vector instruction per operation per chunk.  Because the
    chunks are NumPy views, the arithmetic itself is genuinely vectorized
    in the host interpreter too (guides' idiom: no Python-level inner
    loops).
    """

    def __init__(self, vector_length: int = 64) -> None:
        if vector_length < 1:
            raise ValueError("vector_length must be positive")
        self.vector_length = vector_length

    def _chunks(self, n: int) -> range:
        return range(0, n, self.vector_length)

    def map(
        self,
        fn: Callable[[np.ndarray], np.ndarray],
        data: np.ndarray,
        ops_per_element: int = 1,
    ) -> tuple[np.ndarray, VectorStats]:
        """Apply an element-wise kernel; returns ``(result, stats)``.

        ``ops_per_element`` is how many scalar arithmetic instructions the
        kernel body costs per element (used for the scalar-equivalent
        count; loads/stores and loop overhead are charged separately, 3
        per scalar iteration: load, store, branch).
        """
        data = np.asarray(data)
        out = np.empty_like(fn(data[:1]))
        out = np.empty(data.shape, dtype=out.dtype)
        stats = VectorStats(elements=int(data.size))
        for start in self._chunks(data.size):
            chunk = data[start : start + self.vector_length]
            out[start : start + self.vector_length] = fn(chunk)
            stats.strip_mine_chunks += 1
            # one vector load + ops + one vector store per chunk
            stats.vector_instructions += ops_per_element + 2
        stats.scalar_instructions_equivalent = data.size * (ops_per_element + 3)
        return out, stats

    def zip_map(
        self,
        fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        a: np.ndarray,
        b: np.ndarray,
        ops_per_element: int = 1,
    ) -> tuple[np.ndarray, VectorStats]:
        """Two-operand element-wise kernel (e.g. DAXPY's add)."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.shape != b.shape:
            raise ValueError("operands must have equal shapes")
        out = np.empty(a.shape, dtype=np.result_type(a, b))
        stats = VectorStats(elements=int(a.size))
        for start in self._chunks(a.size):
            sl = slice(start, start + self.vector_length)
            out[sl] = fn(a[sl], b[sl])
            stats.strip_mine_chunks += 1
            stats.vector_instructions += ops_per_element + 3  # 2 loads + store
        stats.scalar_instructions_equivalent = a.size * (ops_per_element + 4)
        return out, stats

    def daxpy(
        self, alpha: float, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, VectorStats]:
        """The canonical vector kernel: ``y <- alpha * x + y``."""
        return self.zip_map(lambda xv, yv: alpha * xv + yv, x, y, ops_per_element=2)

    def expected_chunks(self, n: int) -> int:
        """Strip-mine chunk count for an ``n``-element array."""
        return math.ceil(n / self.vector_length) if n else 0

    def lanes_utilization(self, n: int) -> float:
        """Fraction of lanes doing useful work (the remainder-chunk cost)."""
        chunks = self.expected_chunks(n)
        if chunks == 0:
            return 1.0
        return n / (chunks * self.vector_length)


def compare_vector_lengths(
    n: int, vector_lengths: list[int]
) -> Dict[int, Dict[str, float]]:
    """Instruction-reduction and utilization sweep over vector lengths.

    The data behind the "why longer vectors stop helping" lecture plot.
    """
    x = np.ones(n)
    y = np.ones(n)
    out: Dict[int, Dict[str, float]] = {}
    for vl in vector_lengths:
        machine = VectorMachine(vl)
        _, stats = machine.daxpy(2.0, x, y)
        out[vl] = {
            "instruction_reduction": stats.instruction_reduction,
            "lanes_utilization": machine.lanes_utilization(n),
            "chunks": float(stats.strip_mine_chunks),
        }
    return out

"""A cycle-stepped 5-stage RISC pipeline with hazards and forwarding.

The classic IF–ID–EX–MEM–WB datapath taught in the architecture courses of
all three case studies (paper §IV; "pipelining, instruction level
parallelism").  The simulator is cycle-accurate for the teaching model:

- **Data hazards.** Without forwarding, a consumer stalls in ID while its
  producer sits in the EX or MEM stage (the register file writes in the
  first half-cycle and reads in the second, so a distance-3 dependence
  needs no stall).  With forwarding, only the load-use hazard stalls, for
  exactly one cycle.
- **Control hazards.** Branches predict not-taken and resolve in EX; a
  taken branch squashes the two younger instructions (2-cycle penalty), or
  just one with the ``branch_in_id`` early-resolution option.

Each cycle is computed from a start-of-cycle snapshot of the pipeline
latches (write-back first, fetch last), so hazard detection sees the same
machine state a real datapath's control logic would.  Both *timing*
(cycles, CPI, stall/flush tallies) and *semantics* (architectural register
and memory state) are simulated, so tests can check that forwarding changes
timing without changing results.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from repro.runtime import RunContext
from repro.runtime.metrics import RegistryStats

__all__ = ["Op", "Instr", "PipelineConfig", "PipelineStats", "Pipeline"]


class Op(enum.Enum):
    """The teaching ISA: ALU, immediate, memory, branch, and NOP."""

    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    ADDI = "addi"
    LW = "lw"
    SW = "sw"
    BEQ = "beq"
    BNE = "bne"
    NOP = "nop"


_ALU_OPS = {Op.ADD, Op.SUB, Op.AND, Op.OR}
_BRANCH_OPS = {Op.BEQ, Op.BNE}


@dataclasses.dataclass(frozen=True)
class Instr:
    """One instruction.

    Register conventions: ``rd`` destination, ``rs1``/``rs2`` sources.
    ``LW rd, imm(rs1)``; ``SW rs2, imm(rs1)``; ``BEQ/BNE rs1, rs2, imm``
    where ``imm`` is an absolute instruction index (keeps test programs
    easy to write).  Register 0 is hardwired to zero.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def sources(self) -> List[int]:
        """Register numbers this instruction reads (x0 excluded)."""
        if self.op in _ALU_OPS or self.op in _BRANCH_OPS or self.op is Op.SW:
            regs = [self.rs1, self.rs2]
        elif self.op in (Op.ADDI, Op.LW):
            regs = [self.rs1]
        else:
            regs = []
        return [r for r in regs if r != 0]

    def dest(self) -> Optional[int]:
        """Destination register, or ``None`` (stores, branches, NOP, x0)."""
        if self.op in _ALU_OPS or self.op in (Op.ADDI, Op.LW):
            return self.rd if self.rd != 0 else None
        return None


@dataclasses.dataclass(frozen=True)
class PipelineConfig:
    """Simulator options: forwarding on/off, early branch resolution."""

    forwarding: bool = True
    branch_in_id: bool = False


class PipelineStats(RegistryStats):
    """Cycle-level outcome of one run (``arch.pipeline.*`` in the registry)."""

    fields = ("cycles", "instructions", "stalls", "flushes")
    default_prefix = "arch.pipeline"

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def speedup_vs_unpipelined(self) -> float:
        """Speedup over a 5-cycles-per-instruction unpipelined machine."""
        if self.cycles == 0:
            return 0.0
        return (5.0 * self.instructions) / self.cycles


@dataclasses.dataclass
class _Latch:
    instr: Optional[Instr] = None
    result: Optional[int] = None  # ALU result / effective address / loaded value
    store_value: Optional[int] = None


class Pipeline:
    """The 5-stage pipeline simulator.

    Usage::

        pipe = Pipeline(program, PipelineConfig(forwarding=False))
        stats = pipe.run()
        pipe.registers[3]   # architectural state after completion
    """

    NUM_REGS = 32

    def __init__(
        self,
        program: List[Instr],
        config: PipelineConfig = PipelineConfig(),
        registers: Optional[Dict[int, int]] = None,
        memory: Optional[Dict[int, int]] = None,
        context: Optional[RunContext] = None,
    ) -> None:
        self.program = list(program)
        for instr in self.program:
            for reg in (instr.rd, instr.rs1, instr.rs2):
                if not 0 <= reg < self.NUM_REGS:
                    raise ValueError(
                        f"register x{reg} out of range in {instr}"
                    )
        self.config = config
        self.registers = [0] * self.NUM_REGS
        for reg, val in (registers or {}).items():
            if reg != 0:
                self.registers[reg] = val
        self.memory: Dict[int, int] = dict(memory or {})
        self.pc = 0
        if context is not None:
            self.stats = PipelineStats(registry=context.registry)
        else:
            self.stats = PipelineStats()
        self._if_id = _Latch()
        self._id_ex = _Latch()
        self._ex_mem = _Latch()
        self._mem_wb = _Latch()

    # -- hazard predicates --------------------------------------------------
    @staticmethod
    def _produces(latch: _Latch, reg: int) -> bool:
        return latch.instr is not None and latch.instr.dest() == reg

    def _must_stall(self, instr: Instr, in_ex: _Latch, in_mem: _Latch) -> bool:
        """ID-stage hazard detection against the start-of-cycle latches.

        ``in_ex`` / ``in_mem`` are the instructions entering EX and MEM
        this cycle (i.e. the snapshot of ID/EX and EX/MEM).
        """
        use_strict = (not self.config.forwarding) or (
            self.config.branch_in_id and instr.op in _BRANCH_OPS
        )
        for reg in instr.sources():
            if use_strict:
                if self._produces(in_ex, reg) or self._produces(in_mem, reg):
                    return True
            else:
                # Forwarding datapath: only the load-use hazard stalls.
                if in_ex.instr is not None and in_ex.instr.op is Op.LW and (
                    self._produces(in_ex, reg)
                ):
                    return True
        return False

    def _operand(self, reg: int, old_ex_mem: _Latch) -> int:
        """Operand read at EX: forward from EX/MEM if enabled, else the RF.

        The register file has already absorbed this cycle's write-back, so
        MEM/WB forwarding is implicit; only the ALU result of the
        instruction one ahead (sitting in the EX/MEM snapshot) needs an
        explicit bypass.  Loads in EX/MEM carry an address, never forwarded
        (the load-use stall guarantees this case cannot be needed).
        """
        if reg == 0:
            return 0
        if (
            self.config.forwarding
            and self._produces(old_ex_mem, reg)
            and old_ex_mem.instr is not None
            and old_ex_mem.instr.op is not Op.LW
        ):
            assert old_ex_mem.result is not None
            return old_ex_mem.result
        return self.registers[reg]

    # -- one simulated cycle --------------------------------------------------
    def step(self) -> bool:
        """Advance one cycle; returns ``False`` once the pipeline drains."""
        self.stats.cycles += 1
        old_if_id = self._if_id
        old_id_ex = self._id_ex
        old_ex_mem = self._ex_mem
        old_mem_wb = self._mem_wb

        # WB (first half-cycle: the RF absorbs the write before reads) ------
        if old_mem_wb.instr is not None:
            dest = old_mem_wb.instr.dest()
            if dest is not None:
                assert old_mem_wb.result is not None
                self.registers[dest] = old_mem_wb.result
            if old_mem_wb.instr.op is not Op.NOP:
                self.stats.instructions += 1

        # MEM ---------------------------------------------------------------
        new_mem_wb = _Latch()
        if old_ex_mem.instr is not None:
            instr = old_ex_mem.instr
            if instr.op is Op.LW:
                assert old_ex_mem.result is not None
                new_mem_wb = _Latch(instr, self.memory.get(old_ex_mem.result, 0))
            elif instr.op is Op.SW:
                assert old_ex_mem.result is not None
                assert old_ex_mem.store_value is not None
                self.memory[old_ex_mem.result] = old_ex_mem.store_value
                new_mem_wb = _Latch(instr)
            else:
                new_mem_wb = _Latch(instr, old_ex_mem.result)

        # EX ------------------------------------------------------------------
        new_ex_mem = _Latch()
        taken_target: Optional[int] = None
        if old_id_ex.instr is not None:
            instr = old_id_ex.instr
            a = self._operand(instr.rs1, old_ex_mem)
            b = self._operand(instr.rs2, old_ex_mem)
            if instr.op in _ALU_OPS:
                result = {
                    Op.ADD: a + b,
                    Op.SUB: a - b,
                    Op.AND: a & b,
                    Op.OR: a | b,
                }[instr.op]
                new_ex_mem = _Latch(instr, result)
            elif instr.op is Op.ADDI:
                new_ex_mem = _Latch(instr, a + instr.imm)
            elif instr.op is Op.LW:
                new_ex_mem = _Latch(instr, a + instr.imm)
            elif instr.op is Op.SW:
                new_ex_mem = _Latch(instr, a + instr.imm, store_value=b)
            elif instr.op in _BRANCH_OPS and not self.config.branch_in_id:
                taken = (a == b) if instr.op is Op.BEQ else (a != b)
                if taken:
                    taken_target = instr.imm
                new_ex_mem = _Latch(instr)
            else:
                new_ex_mem = _Latch(instr)

        # ID / IF -----------------------------------------------------------
        new_id_ex = _Latch()
        new_if_id = old_if_id
        branch_redirect: Optional[int] = None
        if taken_target is not None:
            # Taken branch resolved in EX: squash ID and this cycle's fetch.
            if old_if_id.instr is not None:
                self.stats.flushes += 1
            new_if_id = _Latch()
            self.stats.flushes += 1
            self.pc = taken_target
        elif old_if_id.instr is not None:
            instr = old_if_id.instr
            if self._must_stall(instr, old_id_ex, old_ex_mem):
                self.stats.stalls += 1  # bubble enters EX; IF holds
            else:
                if instr.op in _BRANCH_OPS and self.config.branch_in_id:
                    a = self.registers[instr.rs1]
                    b = self.registers[instr.rs2]
                    taken = (a == b) if instr.op is Op.BEQ else (a != b)
                    new_id_ex = _Latch(instr)
                    new_if_id = _Latch()
                    if taken:
                        branch_redirect = instr.imm
                        self.stats.flushes += 1  # one squashed fetch slot
                else:
                    new_id_ex = _Latch(instr)
                    new_if_id = _Latch()

        if branch_redirect is not None:
            self.pc = branch_redirect
        elif new_if_id.instr is None and self.pc < len(self.program):
            if taken_target is None:  # a redirecting EX-branch eats the slot
                new_if_id = _Latch(self.program[self.pc])
                self.pc += 1

        self._if_id = new_if_id
        self._id_ex = new_id_ex
        self._ex_mem = new_ex_mem
        self._mem_wb = new_mem_wb
        return self._busy()

    def _busy(self) -> bool:
        return (
            self.pc < len(self.program)
            or self._if_id.instr is not None
            or self._id_ex.instr is not None
            or self._ex_mem.instr is not None
            or self._mem_wb.instr is not None
        )

    def run(self, max_cycles: int = 100_000) -> PipelineStats:
        """Run to completion; guards against runaway programs."""
        while self._busy():
            self.step()
            if self.stats.cycles >= max_cycles:
                raise RuntimeError(f"program exceeded {max_cycles} cycles")
        return self.stats

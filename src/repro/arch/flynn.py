"""Flynn's taxonomy as an executable classifier.

Table I places "Flynn's taxonomy" in the architecture course.  Rather than
a static enum, :func:`classify` takes a structural description of a machine
(instruction streams x data streams) and derives the class, and the module
ships a gallery of canonical machines for labs and quizzes.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List

__all__ = ["FlynnClass", "MachineDescription", "classify", "GALLERY"]


class FlynnClass(enum.Enum):
    """The four Flynn classes (1966)."""

    SISD = "SISD"
    SIMD = "SIMD"
    MISD = "MISD"
    MIMD = "MIMD"

    @property
    def description(self) -> str:
        """One-line gloss for reports."""
        return {
            FlynnClass.SISD: "single instruction stream, single data stream (uniprocessor)",
            FlynnClass.SIMD: "single instruction stream, multiple data streams (vector/GPU)",
            FlynnClass.MISD: "multiple instruction streams, single data stream (rare; systolic/fault-tolerant)",
            FlynnClass.MIMD: "multiple instruction streams, multiple data streams (multicore/cluster)",
        }[self]


@dataclasses.dataclass(frozen=True)
class MachineDescription:
    """A machine's structure as Flynn's axes see it.

    ``shared_memory`` and ``lockstep`` do not affect the Flynn class but
    refine the sub-classification reported by :func:`subclassify`
    (SIMD array processor vs. vector pipeline; MIMD shared-memory
    multiprocessor vs. distributed-memory multicomputer).
    """

    name: str
    instruction_streams: int
    data_streams: int
    shared_memory: bool = True
    lockstep: bool = False

    def __post_init__(self) -> None:
        if self.instruction_streams < 1 or self.data_streams < 1:
            raise ValueError("stream counts must be positive")


def classify(machine: MachineDescription) -> FlynnClass:
    """Derive the Flynn class from the stream counts."""
    multi_i = machine.instruction_streams > 1
    multi_d = machine.data_streams > 1
    if multi_i and multi_d:
        return FlynnClass.MIMD
    if multi_i:
        return FlynnClass.MISD
    if multi_d:
        return FlynnClass.SIMD
    return FlynnClass.SISD


def subclassify(machine: MachineDescription) -> str:
    """The finer label architecture courses attach under the Flynn class."""
    cls = classify(machine)
    if cls is FlynnClass.SIMD:
        return "array processor (lockstep PEs)" if machine.lockstep else "vector processor"
    if cls is FlynnClass.MIMD:
        return (
            "shared-memory multiprocessor (UMA/NUMA)"
            if machine.shared_memory
            else "distributed-memory multicomputer (cluster)"
        )
    return cls.description


#: Canonical examples used by quizzes in :mod:`repro.pedagogy`.
GALLERY: Dict[str, MachineDescription] = {
    "classic uniprocessor": MachineDescription("classic uniprocessor", 1, 1),
    "Cray-1 vector unit": MachineDescription(
        "Cray-1 vector unit", 1, 64, shared_memory=True, lockstep=False
    ),
    "GPU warp": MachineDescription("GPU warp", 1, 32, lockstep=True),
    "quad-core CPU": MachineDescription("quad-core CPU", 4, 4, shared_memory=True),
    "Beowulf cluster": MachineDescription(
        "Beowulf cluster", 64, 64, shared_memory=False
    ),
    "systolic checker": MachineDescription("systolic checker", 3, 1),
}


def gallery_table() -> List[Dict[str, str]]:
    """The gallery with classes attached, ready for rendering."""
    return [
        {
            "machine": m.name,
            "class": classify(m).value,
            "subclass": subclassify(m),
        }
        for m in GALLERY.values()
    ]

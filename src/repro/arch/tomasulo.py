"""Tomasulo dynamic scheduling — non-speculative and speculative.

The AUC case study (paper §IV-B) teaches "architectures based on dynamic
scheduling such as the non-speculative and the speculative versions of
Tomasulo's architectures"; this module implements both over one engine:

- **Non-speculative** (classic 1967 Tomasulo): reservation stations +
  register renaming + a common data bus; out-of-order execution and
  completion, registers written at CDB broadcast.  Branches *stall issue*
  until resolved — the defining cost speculation removes.
- **Speculative** (Tomasulo + reorder buffer): results go to the ROB and
  commit in order; branches predict not-taken and a misprediction flushes
  the ROB tail — in-order state recovery, the H&P chapter-3 machine.

The simulator records per-instruction issue/execute/write/commit cycles in
the same tabular form textbooks use, so tests can pin exact timings.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

__all__ = ["FuKind", "TInstr", "Timing", "TomasuloCPU", "TomasuloStats"]


class FuKind(enum.Enum):
    """Functional-unit classes with their reservation-station pools."""

    ADDER = "adder"
    MULTIPLIER = "multiplier"
    LOAD = "load"
    BRANCH = "branch"


class TOp(enum.Enum):
    """The floating-point teaching ISA (H&P chapter 3 examples)."""

    ADD = ("add", FuKind.ADDER)
    SUB = ("sub", FuKind.ADDER)
    MUL = ("mul", FuKind.MULTIPLIER)
    DIV = ("div", FuKind.MULTIPLIER)
    LOAD = ("load", FuKind.LOAD)
    BNEZ = ("bnez", FuKind.BRANCH)

    def __init__(self, label: str, fu: FuKind) -> None:
        self.label = label
        self.fu = fu


@dataclasses.dataclass(frozen=True)
class TInstr:
    """One instruction.

    ``LOAD rd, addr`` reads ``memory[addr]``; ALU ops are ``op rd, rs, rt``;
    ``BNEZ rs, target`` jumps to instruction index ``target`` when
    ``rs != 0``.
    """

    op: TOp
    rd: int = 0
    rs: int = 0
    rt: int = 0
    addr: int = 0
    target: int = 0


@dataclasses.dataclass
class Timing:
    """Cycle numbers of each pipeline event for one dynamic instruction."""

    instr: TInstr
    issue: int = 0
    exec_start: int = 0
    exec_end: int = 0
    write: int = 0
    commit: int = 0
    squashed: bool = False


@dataclasses.dataclass
class TomasuloStats:
    """Run-level counters."""

    cycles: int = 0
    committed: int = 0
    branch_stall_cycles: int = 0
    mispredictions: int = 0
    flushed: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0


@dataclasses.dataclass
class _Station:
    name: str
    kind: FuKind
    busy: bool = False
    op: Optional[TOp] = None
    vj: Optional[float] = None
    vk: Optional[float] = None
    qj: Optional[str] = None  # producing tag (station name or ROB tag)
    qk: Optional[str] = None
    dest: int = 0  # architectural register (non-spec) or ROB index (spec)
    remaining: int = 0
    started: bool = False
    finished: bool = False
    result: Optional[float] = None
    issue_cycle: int = 0
    timing: Optional[Timing] = None
    rob_index: Optional[int] = None


@dataclasses.dataclass
class _RobEntry:
    index: int
    instr: TInstr
    dest: int
    ready: bool = False
    value: Optional[float] = None
    timing: Optional[Timing] = None
    branch_taken: Optional[bool] = None

    @property
    def tag(self) -> str:
        return f"ROB{self.index}"


_LATENCY = {
    TOp.ADD: 2,
    TOp.SUB: 2,
    TOp.MUL: 10,
    TOp.DIV: 40,
    TOp.LOAD: 2,
    TOp.BNEZ: 1,
}


class TomasuloCPU:
    """The dynamic-scheduling engine.

    Parameters
    ----------
    program:
        The instruction list (branch targets index into it).
    speculative:
        ``False`` — classic Tomasulo; branches stall issue until resolved.
        ``True`` — ROB-based speculation; branches predict not-taken.
    latencies:
        Optional per-op execution latency overrides.
    """

    NUM_REGS = 32

    def __init__(
        self,
        program: List[TInstr],
        speculative: bool = False,
        registers: Optional[Dict[int, float]] = None,
        memory: Optional[Dict[int, float]] = None,
        num_adders: int = 3,
        num_multipliers: int = 2,
        num_load_buffers: int = 3,
        rob_size: int = 16,
        latencies: Optional[Dict[TOp, int]] = None,
    ) -> None:
        self.program = list(program)
        self.speculative = speculative
        self.registers: List[float] = [0.0] * self.NUM_REGS
        for r, v in (registers or {}).items():
            self.registers[r] = v
        self.memory: Dict[int, float] = dict(memory or {})
        self.latencies = {**_LATENCY, **(latencies or {})}
        self.stations: List[_Station] = (
            [_Station(f"Add{i+1}", FuKind.ADDER) for i in range(num_adders)]
            + [
                _Station(f"Mult{i+1}", FuKind.MULTIPLIER)
                for i in range(num_multipliers)
            ]
            + [_Station(f"Load{i+1}", FuKind.LOAD) for i in range(num_load_buffers)]
            + [_Station("Branch1", FuKind.BRANCH)]
        )
        # Register status: register -> producing tag.
        self.reg_status: Dict[int, str] = {}
        self.rob: List[_RobEntry] = []
        self.rob_size = rob_size
        self.pc = 0
        self.cycle = 0
        self.timings: List[Timing] = []
        self.stats = TomasuloStats()
        self._branch_pending = False  # non-speculative issue stall

    # -- value lookup at issue time ----------------------------------------
    def _read_source(self, reg: int) -> tuple[Optional[float], Optional[str]]:
        """Return ``(value, None)`` if available or ``(None, tag)`` if pending."""
        tag = self.reg_status.get(reg)
        if tag is None:
            return self.registers[reg], None
        if self.speculative:
            # The ROB may already hold the (uncommitted) value.
            entry = self._rob_by_tag(tag)
            if entry is not None and entry.ready:
                return entry.value, None
        return None, tag

    def _rob_by_tag(self, tag: str) -> Optional[_RobEntry]:
        for e in self.rob:
            if e.tag == tag:
                return e
        return None

    # -- the four pipeline activities -----------------------------------------
    def _issue(self) -> None:
        if self.pc >= len(self.program):
            return
        if self._branch_pending:  # non-speculative branch stall
            self.stats.branch_stall_cycles += 1
            return
        instr = self.program[self.pc]
        station = next(
            (s for s in self.stations if s.kind is instr.op.fu and not s.busy),
            None,
        )
        if station is None:
            return  # structural hazard on reservation stations
        if self.speculative and len(self.rob) >= self.rob_size:
            return  # structural hazard on the ROB

        timing = Timing(instr=instr, issue=self.cycle)
        self.timings.append(timing)

        station.busy = True
        station.op = instr.op
        station.remaining = self.latencies[instr.op]
        station.started = False
        station.finished = False
        station.result = None
        station.issue_cycle = self.cycle
        station.timing = timing

        if instr.op is TOp.LOAD:
            station.vj, station.qj = float(self.memory.get(instr.addr, 0.0)), None
            station.vk, station.qk = 0.0, None
        elif instr.op is TOp.BNEZ:
            station.vj, station.qj = self._read_source(instr.rs)
            station.vk, station.qk = 0.0, None
        else:
            station.vj, station.qj = self._read_source(instr.rs)
            station.vk, station.qk = self._read_source(instr.rt)

        if self.speculative:
            entry = _RobEntry(
                index=self._next_rob_index(),
                instr=instr,
                dest=instr.rd,
                timing=timing,
            )
            self.rob.append(entry)
            station.rob_index = entry.index
            station.dest = entry.index
            if instr.op not in (TOp.BNEZ,):
                self.reg_status[instr.rd] = entry.tag
        else:
            station.dest = instr.rd
            if instr.op is TOp.BNEZ:
                self._branch_pending = True
            else:
                self.reg_status[instr.rd] = station.name

        self.pc += 1  # speculative: predict not-taken, keep issuing

    def _next_rob_index(self) -> int:
        return (self.rob[-1].index + 1) if self.rob else 0

    def _execute(self) -> None:
        for s in self.stations:
            if not s.busy or s.finished:
                continue
            if not s.started:
                # May begin the cycle after issue, once both operands exist.
                if (
                    s.qj is None
                    and s.qk is None
                    and s.issue_cycle < self.cycle
                ):
                    s.started = True
                    assert s.timing is not None
                    s.timing.exec_start = self.cycle
                else:
                    continue
            s.remaining -= 1
            if s.remaining == 0:
                s.finished = True
                s.result = self._compute(s)
                assert s.timing is not None
                s.timing.exec_end = self.cycle

    def _compute(self, s: _Station) -> float:
        assert s.vj is not None and s.vk is not None and s.op is not None
        if s.op is TOp.ADD:
            return s.vj + s.vk
        if s.op is TOp.SUB:
            return s.vj - s.vk
        if s.op is TOp.MUL:
            return s.vj * s.vk
        if s.op is TOp.DIV:
            if s.vk == 0:
                return float("inf") if s.vj > 0 else float("-inf") if s.vj else 0.0
            return s.vj / s.vk
        if s.op is TOp.LOAD:
            return s.vj
        if s.op is TOp.BNEZ:
            return 1.0 if s.vj != 0 else 0.0
        raise AssertionError(f"unknown op {s.op}")

    def _write_result(self) -> None:
        """One CDB: broadcast the oldest finished, unwritten result."""
        candidates = [
            s
            for s in self.stations
            if s.busy and s.finished and s.timing is not None and s.timing.write == 0
        ]
        if not candidates:
            return
        # Oldest by exec_end then issue order: deterministic CDB arbitration.
        s = min(candidates, key=lambda x: (x.timing.exec_end, x.issue_cycle))  # type: ignore[union-attr]
        assert s.timing is not None and s.result is not None
        # A result finishing in cycle t broadcasts in t+1 at the earliest.
        if s.timing.exec_end >= self.cycle:
            return
        s.timing.write = self.cycle
        tag = s.name if not self.speculative else f"ROB{s.rob_index}"

        if self.speculative:
            entry = self._rob_by_tag(tag)
            assert entry is not None
            entry.ready = True
            entry.value = s.result
            if s.op is TOp.BNEZ:
                entry.branch_taken = s.result != 0.0
        else:
            if s.op is TOp.BNEZ:
                taken = s.result != 0.0
                self.pc = s.timing.instr.target if taken else self.pc
                self._branch_pending = False
                self.stats.committed += 1
                s.timing.commit = self.cycle
            else:
                if self.reg_status.get(s.dest) == tag:
                    self.registers[s.dest] = s.result
                    del self.reg_status[s.dest]
                self.stats.committed += 1
                s.timing.commit = self.cycle

        # Forward on the CDB to every waiting station.
        for waiter in self.stations:
            if waiter.busy and not waiter.finished:
                if waiter.qj == tag:
                    waiter.vj, waiter.qj = s.result, None
                if waiter.qk == tag:
                    waiter.vk, waiter.qk = s.result, None
        s.busy = False

    def _commit(self) -> None:
        """Speculative only: retire the ROB head if its result is ready."""
        if not self.rob:
            return
        head = self.rob[0]
        if not head.ready:
            return
        assert head.timing is not None
        if head.timing.write >= self.cycle:
            return  # written this very cycle; commit next cycle
        head.timing.commit = self.cycle
        self.stats.committed += 1
        if head.instr.op is TOp.BNEZ:
            taken = bool(head.branch_taken)
            predicted_taken = False  # static predict not-taken
            self.rob.pop(0)
            if taken != predicted_taken:
                self.stats.mispredictions += 1
                self._flush(head.instr.target if taken else None)
            return
        if self.reg_status.get(head.dest) == head.tag:
            del self.reg_status[head.dest]
        assert head.value is not None
        self.registers[head.dest] = head.value
        self.rob.pop(0)

    def _flush(self, redirect: Optional[int]) -> None:
        """Squash everything younger than a mispredicted branch."""
        for entry in self.rob:
            if entry.timing is not None:
                entry.timing.squashed = True
            self.stats.flushed += 1
        squashed_tags = {e.tag for e in self.rob}
        self.rob.clear()
        for s in self.stations:
            if s.rob_index is not None and f"ROB{s.rob_index}" in squashed_tags:
                s.busy = False
        self.reg_status = {
            r: t for r, t in self.reg_status.items() if t not in squashed_tags
        }
        if redirect is not None:
            self.pc = redirect

    # -- driving -----------------------------------------------------------------
    def step(self) -> bool:
        """One cycle: commit, write, execute, issue (in that order)."""
        self.cycle += 1
        self.stats.cycles = self.cycle
        if self.speculative:
            self._commit()
        self._write_result()
        self._execute()
        self._issue()
        return self._busy()

    def _busy(self) -> bool:
        return (
            self.pc < len(self.program)
            or any(s.busy for s in self.stations)
            or bool(self.rob)
        )

    def run(self, max_cycles: int = 100_000) -> TomasuloStats:
        """Run to completion."""
        while self.step():
            if self.cycle >= max_cycles:
                raise RuntimeError(f"program exceeded {max_cycles} cycles")
        return self.stats

    def timing_table(self) -> List[Timing]:
        """The per-instruction event table (squashed entries included)."""
        return list(self.timings)

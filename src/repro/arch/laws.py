"""Performance laws: Amdahl, Gustafson, Karp–Flatt, efficiency, scalability.

"A computer organization or architecture course can incorporate Amdahl's
law and its implication on the performance of a particular parallel
algorithm, speedup and scalability" (paper §III).  All functions accept
scalars or NumPy arrays and broadcast, so a whole parameter sweep is one
vectorized call — the idiom the session's HPC guides prescribe.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

ArrayLike = Union[float, int, np.ndarray]

__all__ = [
    "amdahl_speedup",
    "amdahl_limit",
    "gustafson_speedup",
    "karp_flatt",
    "efficiency",
    "speedup",
    "speedup_sweep",
    "isoefficiency_problem_size",
    "crossover_processors",
]


def _validate_fraction(f: ArrayLike, name: str) -> np.ndarray:
    arr = np.asarray(f, dtype=float)
    if np.any(arr < 0.0) or np.any(arr > 1.0):
        raise ValueError(f"{name} must lie in [0, 1]")
    return arr


def _validate_procs(p: ArrayLike) -> np.ndarray:
    arr = np.asarray(p, dtype=float)
    if np.any(arr < 1):
        raise ValueError("processor count must be >= 1")
    return arr


def speedup(t_serial: ArrayLike, t_parallel: ArrayLike) -> np.ndarray:
    """Observed speedup ``S = T_1 / T_p``."""
    return np.asarray(t_serial, dtype=float) / np.asarray(t_parallel, dtype=float)


def amdahl_speedup(parallel_fraction: ArrayLike, processors: ArrayLike) -> np.ndarray:
    """Amdahl's law: ``S(p) = 1 / ((1 - f) + f / p)``.

    ``parallel_fraction`` is the fraction of the *serial* runtime that
    parallelizes.  Broadcasts, so ``amdahl_speedup(0.95, np.arange(1, 1025))``
    is a full curve.
    """
    f = _validate_fraction(parallel_fraction, "parallel_fraction")
    p = _validate_procs(processors)
    return 1.0 / ((1.0 - f) + f / p)


def amdahl_limit(parallel_fraction: ArrayLike) -> np.ndarray:
    """The asymptotic speedup bound ``1 / (1 - f)`` (infinite processors).

    Returns ``inf`` for a perfectly parallel program.
    """
    f = _validate_fraction(parallel_fraction, "parallel_fraction")
    with np.errstate(divide="ignore"):
        return np.where(f >= 1.0, np.inf, 1.0 / (1.0 - f))


def gustafson_speedup(parallel_fraction: ArrayLike, processors: ArrayLike) -> np.ndarray:
    """Gustafson's law (scaled speedup): ``S(p) = (1 - f) + f * p``.

    ``parallel_fraction`` here is the parallel fraction of the *parallel*
    runtime at scale — the law's answer to Amdahl's pessimism when the
    problem grows with the machine.
    """
    f = _validate_fraction(parallel_fraction, "parallel_fraction")
    p = _validate_procs(processors)
    return (1.0 - f) + f * p


def karp_flatt(observed_speedup: ArrayLike, processors: ArrayLike) -> np.ndarray:
    """The Karp–Flatt experimentally determined serial fraction.

    ``e = (1/S - 1/p) / (1 - 1/p)``.  A serial fraction that *grows* with p
    diagnoses parallel overhead; one that stays flat diagnoses inherent
    serial work.  Undefined at ``p == 1`` (returns ``nan``).
    """
    s = np.asarray(observed_speedup, dtype=float)
    p = _validate_procs(processors)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(p == 1, np.nan, (1.0 / s - 1.0 / p) / (1.0 - 1.0 / p))


def efficiency(observed_speedup: ArrayLike, processors: ArrayLike) -> np.ndarray:
    """Parallel efficiency ``E = S / p``."""
    return np.asarray(observed_speedup, dtype=float) / _validate_procs(processors)


def speedup_sweep(
    parallel_fraction: float, max_processors: int = 1024
) -> Dict[str, np.ndarray]:
    """Amdahl vs. Gustafson over ``p = 1 .. max_processors`` (one call).

    Returns arrays keyed ``processors``, ``amdahl``, ``gustafson``,
    ``amdahl_efficiency`` — the data behind the classic two-curve lecture
    figure and the speedup bench.
    """
    p = np.arange(1, max_processors + 1, dtype=float)
    amdahl = amdahl_speedup(parallel_fraction, p)
    return {
        "processors": p,
        "amdahl": amdahl,
        "gustafson": gustafson_speedup(parallel_fraction, p),
        "amdahl_efficiency": efficiency(amdahl, p),
    }


def isoefficiency_problem_size(
    processors: ArrayLike,
    target_efficiency: float,
    serial_seconds_per_unit: float = 1.0,
    overhead_seconds: "np.ufunc | None" = None,
) -> np.ndarray:
    """Problem size needed to hold efficiency constant as p grows.

    For the common case of overhead ``T_o(p) = c * p * log2(p)`` (tree
    reductions, all-to-ones), isoefficiency gives
    ``W = E/(1-E) * T_o(p)``.  ``overhead_seconds`` may be any callable
    ``p -> seconds``; the default is ``p * log2(p)``.
    """
    if not 0.0 < target_efficiency < 1.0:
        raise ValueError("target_efficiency must be in (0, 1)")
    p = _validate_procs(processors)
    if overhead_seconds is None:
        overhead = p * np.log2(np.maximum(p, 1.0))
    else:
        overhead = np.asarray(overhead_seconds(p), dtype=float)
    k = target_efficiency / (1.0 - target_efficiency)
    return k * overhead / serial_seconds_per_unit


def crossover_processors(
    parallel_fraction: float, target_speedup: float
) -> int:
    """Smallest integer p whose Amdahl speedup reaches ``target_speedup``.

    Raises ``ValueError`` when the target exceeds the Amdahl limit — the
    law's headline teaching point.
    """
    limit = float(amdahl_limit(parallel_fraction))
    if target_speedup >= limit:
        raise ValueError(
            f"target speedup {target_speedup} unreachable: Amdahl limit is "
            f"{limit:.3f} at parallel fraction {parallel_fraction}"
        )
    if target_speedup <= 1.0:
        return 1
    f = parallel_fraction
    # Solve 1/((1-f) + f/p) >= S for p, then round up.
    p = f / (1.0 / target_speedup - (1.0 - f))
    return int(np.ceil(p - 1e-12))

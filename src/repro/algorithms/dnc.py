"""A fork–join divide-and-conquer framework.

CC2020 names "a parallel divide-and-conquer algorithm" as a recommended
topic.  :func:`fork_join` expresses the pattern once — split, solve the
halves (in new threads down to ``parallel_depth``, then sequentially),
combine — and :mod:`repro.algorithms.sorting` instantiates it.  The
depth cutoff is the real-world lesson: unbounded task spawning drowns in
overhead, so frameworks (Cilk, ForkJoinPool, OpenMP tasks) always cut
over to sequential execution.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

P = TypeVar("P")  # problem
S = TypeVar("S")  # solution

__all__ = ["ForkJoinStats", "fork_join"]


@dataclasses.dataclass
class ForkJoinStats:
    """Task accounting of one fork–join execution."""

    forked_tasks: int = 0
    sequential_tasks: int = 0
    max_depth: int = 0

    def _bump_depth(self, depth: int) -> None:
        if depth > self.max_depth:
            self.max_depth = depth


def fork_join(
    problem: P,
    is_base: Callable[[P], bool],
    solve_base: Callable[[P], S],
    split: Callable[[P], Sequence[P]],
    combine: Callable[[List[S]], S],
    parallel_depth: int = 3,
) -> Tuple[S, ForkJoinStats]:
    """Solve ``problem`` by parallel divide and conquer.

    Above ``parallel_depth`` recursion levels, subproblems run in freshly
    forked threads and are joined; below it, recursion is sequential.
    Returns ``(solution, stats)``.
    """
    stats = ForkJoinStats()
    lock = threading.Lock()

    def solve(p: P, depth: int) -> S:
        with lock:
            stats._bump_depth(depth)
        if is_base(p):
            with lock:
                stats.sequential_tasks += 1
            return solve_base(p)
        parts = split(p)
        if depth < parallel_depth:
            results: List[Optional[S]] = [None] * len(parts)
            errors: List[BaseException] = []

            def run(i: int, sub: P) -> None:
                try:
                    results[i] = solve(sub, depth + 1)
                except BaseException as exc:  # noqa: BLE001 - joined below
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(i, sub), daemon=True)
                for i, sub in enumerate(parts)
            ]
            with lock:
                stats.forked_tasks += len(threads)
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if errors:
                raise errors[0]
            return combine([r for r in results])  # type: ignore[list-item]
        with lock:
            stats.sequential_tasks += len(parts)
        return combine([solve(sub, depth + 1) for sub in parts])

    return solve(problem, 0), stats

"""Parallel algorithms and their analysis.

CS2013's PDC area requires "understanding of parallel algorithms,
strategies for problem decomposition … and performance analysis"; CC2020
names "a parallel divide-and-conquer algorithm" and "critical path"
explicitly (paper §II-A).  Modules:

- :mod:`repro.algorithms.dag` — task DAGs: work, span, parallelism,
  critical path, Brent's bound, greedy p-processor schedules.
- :mod:`repro.algorithms.dnc` — a fork–join divide-and-conquer framework
  with depth-limited thread parallelism.
- :mod:`repro.algorithms.sorting` — parallel merge sort and quicksort on
  the fork–join framework, with serial baselines.
- :mod:`repro.algorithms.scan` — prefix sums: sequential, Hillis–Steele
  (step-efficient), and Blelloch (work-efficient), with step/work counts.
- :mod:`repro.algorithms.reduction` — tree reductions and their depth.
- :mod:`repro.algorithms.matrix` — blocked/parallel matrix multiply and
  loop-order (cache behaviour) variants.
- :mod:`repro.algorithms.graph` — level-synchronous parallel BFS and
  label-propagation components.
"""

from repro.algorithms.dag import TaskDag, brent_bound, greedy_schedule
from repro.algorithms.dnc import fork_join
from repro.algorithms.graph import connected_components, parallel_bfs
from repro.algorithms.matrix import blocked_matmul, matmul_loop_orders, parallel_matmul
from repro.algorithms.reduction import tree_reduce
from repro.algorithms.scan import blelloch_scan, hillis_steele_scan, sequential_scan
from repro.algorithms.sorting import (
    parallel_mergesort,
    parallel_quicksort,
    serial_mergesort,
)

__all__ = [
    "blelloch_scan",
    "blocked_matmul",
    "brent_bound",
    "connected_components",
    "fork_join",
    "greedy_schedule",
    "hillis_steele_scan",
    "matmul_loop_orders",
    "parallel_bfs",
    "parallel_matmul",
    "parallel_mergesort",
    "parallel_quicksort",
    "sequential_scan",
    "serial_mergesort",
    "TaskDag",
    "tree_reduce",
]

"""Task DAGs: work, span, critical path, Brent's bound, greedy schedules.

The work–span model (CLRS chapter 27 / Cilk) is how the surveyed
curricula analyze parallel algorithms, and "critical path" is a CC2020
named topic.  :class:`TaskDag` wraps a :mod:`networkx` DAG whose node
weights are task costs; the analysis methods give T₁ (work), T∞ (span),
parallelism, and the critical path, and :func:`greedy_schedule` runs a
list schedule on p processors so Brent's inequality
``T_p <= T_1/p + T_inf`` can be *checked*, not just stated.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

__all__ = ["TaskDag", "ScheduleResult", "greedy_schedule", "brent_bound"]


class TaskDag:
    """A weighted task DAG.

    Edges point from prerequisite to dependent.  Weights default to 1
    (unit tasks); :meth:`add_task` sets them explicitly.
    """

    def __init__(self) -> None:
        self.graph = nx.DiGraph()

    def add_task(self, name: Hashable, cost: float = 1.0) -> "TaskDag":
        """Add a task (idempotent; re-adding updates the cost)."""
        if cost <= 0:
            raise ValueError("task cost must be positive")
        self.graph.add_node(name, cost=float(cost))
        return self

    def add_dep(self, before: Hashable, after: Hashable) -> "TaskDag":
        """Declare ``before`` must finish before ``after`` starts."""
        for node in (before, after):
            if node not in self.graph:
                self.add_task(node)
        self.graph.add_edge(before, after)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_edge(before, after)
            raise ValueError(f"dependency {before} -> {after} creates a cycle")
        return self

    def cost(self, name: Hashable) -> float:
        """The cost of one task."""
        return float(self.graph.nodes[name]["cost"])

    @property
    def work(self) -> float:
        """T₁: total cost of all tasks."""
        return float(sum(d["cost"] for _n, d in self.graph.nodes(data=True)))

    @property
    def span(self) -> float:
        """T∞: cost of the most expensive dependency chain."""
        if self.graph.number_of_nodes() == 0:
            return 0.0
        finish: Dict[Hashable, float] = {}
        for node in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(node))
            start = max((finish[p] for p in preds), default=0.0)
            finish[node] = start + self.cost(node)
        return max(finish.values())

    @property
    def parallelism(self) -> float:
        """T₁ / T∞ — the maximum useful processor count."""
        span = self.span
        return self.work / span if span > 0 else 1.0

    def critical_path(self) -> List[Hashable]:
        """The tasks along a longest (cost-weighted) chain."""
        if self.graph.number_of_nodes() == 0:
            return []
        finish: Dict[Hashable, float] = {}
        best_pred: Dict[Hashable, Optional[Hashable]] = {}
        for node in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(node))
            if preds:
                p = max(preds, key=lambda q: finish[q])
                finish[node] = finish[p] + self.cost(node)
                best_pred[node] = p
            else:
                finish[node] = self.cost(node)
                best_pred[node] = None
        tail = max(finish, key=lambda n: finish[n])
        path: List[Hashable] = []
        cursor: Optional[Hashable] = tail
        while cursor is not None:
            path.append(cursor)
            cursor = best_pred[cursor]
        return list(reversed(path))

    # -- canonical shapes (used by tests and benches) -----------------------
    @staticmethod
    def chain(n: int, cost: float = 1.0) -> "TaskDag":
        """A fully serial chain: parallelism == 1."""
        dag = TaskDag()
        for i in range(n):
            dag.add_task(i, cost)
            if i:
                dag.add_dep(i - 1, i)
        return dag

    @staticmethod
    def fully_parallel(n: int, cost: float = 1.0) -> "TaskDag":
        """n independent tasks: parallelism == n."""
        dag = TaskDag()
        for i in range(n):
            dag.add_task(i, cost)
        return dag

    @staticmethod
    def fork_join_tree(levels: int, cost: float = 1.0) -> "TaskDag":
        """A binary fork tree followed by its mirrored join tree."""
        dag = TaskDag()
        dag.add_task("root", cost)
        frontier: List[Hashable] = ["root"]
        for level in range(levels):
            next_frontier: List[Hashable] = []
            for node in frontier:
                for side in ("L", "R"):
                    child = f"{node}/{side}{level}"
                    dag.add_task(child, cost)
                    dag.add_dep(node, child)
                    next_frontier.append(child)
            frontier = next_frontier
        dag.add_task("join", cost)
        for node in frontier:
            dag.add_dep(node, "join")
        return dag


@dataclasses.dataclass
class ScheduleResult:
    """Outcome of a greedy p-processor list schedule."""

    processors: int
    makespan: float
    timeline: List[Tuple[Hashable, int, float, float]]  # (task, proc, start, end)

    def satisfies_brent(self, work: float, span: float) -> bool:
        """Check Brent's inequality ``T_p <= T_1/p + T_inf``."""
        return self.makespan <= work / self.processors + span + 1e-9


def greedy_schedule(dag: TaskDag, processors: int) -> ScheduleResult:
    """Greedy (work-conserving) list schedule on ``processors`` machines.

    Ready tasks are started on idle processors as soon as possible, in
    lexicographic task order for determinism.  Any greedy schedule
    satisfies Brent's bound — a property test re-proves it on random DAGs.
    """
    if processors < 1:
        raise ValueError("need at least one processor")
    g = dag.graph
    indegree = {n: g.in_degree(n) for n in g.nodes}
    ready = sorted((n for n, d in indegree.items() if d == 0), key=str)
    proc_free = [(0.0, p) for p in range(processors)]  # (free_at, proc)
    heapq.heapify(proc_free)
    pending_finish: List[Tuple[float, int, Hashable]] = []  # (end, seq, task)
    timeline: List[Tuple[Hashable, int, float, float]] = []
    task_end: Dict[Hashable, float] = {}
    seq = 0

    while ready or pending_finish:
        while ready:
            task = ready.pop(0)
            free_at, proc = heapq.heappop(proc_free)
            preds_done = max(
                (task_end[p] for p in g.predecessors(task)), default=0.0
            )
            start = max(free_at, preds_done)
            end = start + dag.cost(task)
            heapq.heappush(proc_free, (end, proc))
            seq += 1
            heapq.heappush(pending_finish, (end, seq, task))
            timeline.append((task, proc, start, end))
            task_end[task] = end
        if pending_finish:
            _end, _seq, task = heapq.heappop(pending_finish)
            for succ in sorted(g.successors(task), key=str):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
            ready.sort(key=str)

    makespan = max((end for _t, _p, _s, end in timeline), default=0.0)
    return ScheduleResult(processors=processors, makespan=makespan, timeline=timeline)


def brent_bound(work: float, span: float, processors: int) -> float:
    """The Brent/greedy upper bound ``T_1/p + T_inf``."""
    if processors < 1:
        raise ValueError("need at least one processor")
    return work / processors + span

"""Matrix multiplication: loop orders, blocking, and row-parallelism.

The worked example that ties the architecture module's cache story to the
algorithms module's decomposition story:

- :func:`matmul_loop_orders` runs the naive triple loop in ijk/ikj/jik
  order against the cache simulator, producing the miss-rate table that
  explains why loop order matters (the guides' "beware of cache effects").
- :func:`blocked_matmul` is the tiling transformation (NumPy-blocked, so
  the inner products are vectorized).
- :func:`parallel_matmul` decomposes by row blocks across a thread team —
  the natural data decomposition, embarrassingly parallel.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.arch.cache import Cache, CacheConfig
from repro.smp.pool import parallel_for

__all__ = ["matmul_loop_orders", "blocked_matmul", "parallel_matmul"]


def matmul_loop_orders(
    n: int = 16, config: CacheConfig | None = None
) -> Dict[str, float]:
    """Miss rates of the naive triple loop under different loop orders.

    Simulates the address trace of ``C[i,j] += A[i,k] * B[k,j]`` for each
    loop nesting over row-major float64 matrices (8-byte elements).
    Returns ``{order: miss_rate}``; ikj (B and C walked row-wise in the
    inner loop) wins on a row-major layout.
    """
    cfg = config or CacheConfig(size_bytes=1024, line_bytes=64, associativity=2)
    elem = 8
    base_a, base_b, base_c = 0, n * n * elem, 2 * n * n * elem

    def addr(base: int, r: int, c: int) -> int:
        return base + (r * n + c) * elem

    orders = {
        "ijk": lambda: (
            (i, j, k) for i in range(n) for j in range(n) for k in range(n)
        ),
        "ikj": lambda: (
            (i, j, k) for i in range(n) for k in range(n) for j in range(n)
        ),
        "jik": lambda: (
            (i, j, k) for j in range(n) for i in range(n) for k in range(n)
        ),
    }
    out: Dict[str, float] = {}
    for name, gen in orders.items():
        cache = Cache(cfg)
        for i, j, k in gen():
            cache.access(addr(base_a, i, k))
            cache.access(addr(base_b, k, j))
            cache.access(addr(base_c, i, j), write=True)
        out[name] = cache.stats.miss_rate
    return out


def blocked_matmul(
    a: np.ndarray, b: np.ndarray, block: int = 32
) -> np.ndarray:
    """Tiled matrix multiply: C computed one ``block x block`` tile at a time.

    Tiles are NumPy sub-matrices, so each tile product is a vectorized
    ``@`` — the code shows the *structure* of blocking while staying fast.
    """
    n, m = a.shape
    m2, p = b.shape
    if m != m2:
        raise ValueError("inner dimensions must agree")
    if block < 1:
        raise ValueError("block must be positive")
    c = np.zeros((n, p), dtype=np.result_type(a, b))
    for i0 in range(0, n, block):
        for k0 in range(0, m, block):
            a_tile = a[i0 : i0 + block, k0 : k0 + block]
            for j0 in range(0, p, block):
                c[i0 : i0 + block, j0 : j0 + block] += (
                    a_tile @ b[k0 : k0 + block, j0 : j0 + block]
                )
    return c


def parallel_matmul(
    a: np.ndarray, b: np.ndarray, num_threads: int = 4
) -> Tuple[np.ndarray, Dict[int, int]]:
    """Row-block-parallel multiply: thread t computes a slab of C's rows.

    Because the slab products are NumPy ``@`` calls, they release the GIL
    and can genuinely overlap.  Returns ``(C, rows_per_thread)``.
    """
    n = a.shape[0]
    c = np.zeros((n, b.shape[1]), dtype=np.result_type(a, b))
    bounds = np.linspace(0, n, num_threads + 1, dtype=int)

    def body(t: int) -> None:
        lo, hi = bounds[t], bounds[t + 1]
        if lo < hi:
            c[lo:hi] = a[lo:hi] @ b

    team = parallel_for(num_threads, body, num_threads=num_threads)
    rows = {
        t: int(bounds[t + 1] - bounds[t]) for t in range(num_threads)
    }
    del team
    return c, rows

"""Parallel sorting on the fork–join framework, with serial baselines.

Merge sort is the canonical "parallel divide-and-conquer algorithm"
(CC2020); quicksort adds the data-dependent-split variant.  Baselines are
included because every benchmark in this repository compares against one
(per DESIGN.md: implement the baseline too).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TypeVar

from repro.algorithms.dnc import ForkJoinStats, fork_join

T = TypeVar("T")

__all__ = [
    "serial_mergesort",
    "parallel_mergesort",
    "parallel_quicksort",
    "merge",
]


def merge(left: Sequence[T], right: Sequence[T]) -> List[T]:
    """Stable two-way merge of sorted sequences."""
    out: List[T] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if right[j] < left[i]:
            out.append(right[j])
            j += 1
        else:
            out.append(left[i])
            i += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return out


def serial_mergesort(data: Sequence[T]) -> List[T]:
    """Textbook sequential merge sort (the benchmark baseline)."""
    n = len(data)
    if n <= 1:
        return list(data)
    mid = n // 2
    return merge(serial_mergesort(data[:mid]), serial_mergesort(data[mid:]))


def parallel_mergesort(
    data: Sequence[T], parallel_depth: int = 2, base_size: int = 32
) -> Tuple[List[T], ForkJoinStats]:
    """Fork–join merge sort.

    Work Θ(n log n), span Θ(n) with this (serial) merge — the analysis
    exercise asks students why the merge, not the recursion, caps the
    speedup, and what a parallel merge would buy (span Θ(log³ n)).
    """
    return fork_join(
        list(data),
        is_base=lambda xs: len(xs) <= base_size,
        solve_base=lambda xs: sorted(xs),
        split=lambda xs: (xs[: len(xs) // 2], xs[len(xs) // 2 :]),
        combine=lambda halves: merge(halves[0], halves[1]),
        parallel_depth=parallel_depth,
    )


def parallel_quicksort(
    data: Sequence[T], parallel_depth: int = 2, base_size: int = 32
) -> Tuple[List[T], ForkJoinStats]:
    """Fork–join quicksort (median-of-three pivot; duplicates bucketed).

    The data-dependent split makes load balance a real concern —
    ``stats.max_depth`` on adversarial inputs is the discussion hook.
    """

    def split(xs: List[T]) -> Tuple[List[T], List[T], List[T]]:
        a, b, c = xs[0], xs[len(xs) // 2], xs[-1]
        pivot = sorted((a, b, c))[1]
        less = [x for x in xs if x < pivot]
        equal = [x for x in xs if x == pivot]
        greater = [x for x in xs if pivot < x]
        return less, equal, greater

    def combine(parts: List[List[T]]) -> List[T]:
        return parts[0] + parts[1] + parts[2]

    def is_base(xs: List[T]) -> bool:
        # All-equal inputs never shrink under a 3-way split; treat them as
        # solved (they are) rather than recursing forever.
        return len(xs) <= base_size or all(x == xs[0] for x in xs)

    return fork_join(
        list(data),
        is_base=is_base,
        solve_base=lambda xs: sorted(xs),
        split=split,
        combine=combine,
        parallel_depth=parallel_depth,
    )

"""Prefix sums three ways: sequential, Hillis–Steele, Blelloch.

The scan primitive underlies stream compaction, radix sort, and the GPU
kernels of :mod:`repro.gpu.libdevice`.  The two parallel algorithms
embody the step-vs-work trade-off the lecture builds:

===============  ============  ===========
algorithm        steps (span)  work
===============  ============  ===========
sequential       n             n
Hillis–Steele    log n         n log n
Blelloch         2 log n       2n
===============  ============  ===========

Each parallel level is one vectorized NumPy statement (the whole level
really is data-parallel — the session guides' idiom), and the returned
stats carry the exact step and element-operation counts the table above
predicts, so tests can assert them.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

__all__ = ["ScanStats", "sequential_scan", "hillis_steele_scan", "blelloch_scan"]


@dataclasses.dataclass
class ScanStats:
    """Step (parallel depth) and work (element additions) counters."""

    steps: int = 0
    work: int = 0


def sequential_scan(data: np.ndarray) -> Tuple[np.ndarray, ScanStats]:
    """Inclusive prefix sum, the n-step baseline (``np.cumsum`` inside)."""
    arr = np.asarray(data, dtype=np.float64)
    stats = ScanStats(steps=max(0, arr.size - 1), work=max(0, arr.size - 1))
    return np.cumsum(arr), stats


def hillis_steele_scan(data: np.ndarray) -> Tuple[np.ndarray, ScanStats]:
    """Inclusive scan in ``ceil(log2 n)`` steps, Θ(n log n) work.

    Step d adds each element to the one ``2^d`` positions ahead —
    shallow but work-inefficient, ideal when processors outnumber data.
    """
    arr = np.asarray(data, dtype=np.float64).copy()
    n = arr.size
    stats = ScanStats()
    offset = 1
    while offset < n:
        # One parallel step: all n-offset additions happen "at once".
        arr[offset:] = arr[offset:] + arr[:-offset]
        stats.steps += 1
        stats.work += n - offset
        offset *= 2
    return arr, stats


def blelloch_scan(data: np.ndarray) -> Tuple[np.ndarray, ScanStats]:
    """Work-efficient exclusive scan (up-sweep + down-sweep), Θ(n) work.

    Input length is padded to a power of two internally; the returned
    array matches the input length.  Returns the *exclusive* scan, as
    Blelloch's algorithm naturally produces (tests relate it to the
    inclusive form).
    """
    src = np.asarray(data, dtype=np.float64)
    n = src.size
    if n == 0:
        return src.copy(), ScanStats()
    size = 1 << (n - 1).bit_length()
    arr = np.zeros(size, dtype=np.float64)
    arr[:n] = src
    stats = ScanStats()

    # Up-sweep (reduce): build partial sums at power-of-two strides.
    stride = 1
    while stride < size:
        idx = np.arange(2 * stride - 1, size, 2 * stride)
        arr[idx] += arr[idx - stride]
        stats.steps += 1
        stats.work += idx.size
        stride *= 2

    # Down-sweep: clear the root, then push prefixes down the tree.
    arr[size - 1] = 0.0
    stride = size // 2
    while stride >= 1:
        idx = np.arange(2 * stride - 1, size, 2 * stride)
        left = arr[idx - stride].copy()
        arr[idx - stride] = arr[idx]
        arr[idx] += left
        stats.steps += 1
        stats.work += idx.size
        stride //= 2

    return arr[:n], stats

"""Tree reductions: logarithmic-depth combining.

The first parallel algorithm most courses show.  :func:`tree_reduce`
halves the array per level with one vectorized statement, counting steps
(``ceil(log2 n)``) and work (``n - 1`` combines); :func:`reduce_depth`
gives the analytic depth for tests and lecture tables.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Tuple

import numpy as np

__all__ = ["ReduceStats", "tree_reduce", "reduce_depth"]


@dataclasses.dataclass
class ReduceStats:
    """Step and combine counters for one reduction."""

    steps: int = 0
    combines: int = 0


def tree_reduce(
    data: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
) -> Tuple[float, ReduceStats]:
    """Reduce ``data`` with a binary tree of ``op`` applications.

    ``op`` must be associative; each while-iteration is one parallel
    step combining the first half with the second (odd leftovers ride
    along untouched).
    """
    arr = np.asarray(data, dtype=np.float64).copy()
    stats = ReduceStats()
    if arr.size == 0:
        raise ValueError("cannot reduce an empty array")
    while arr.size > 1:
        half = arr.size // 2
        combined = op(arr[:half], arr[half : 2 * half])
        if arr.size % 2:
            arr = np.concatenate([combined, arr[-1:]])
        else:
            arr = combined
        stats.steps += 1
        stats.combines += half
    return float(arr[0]), stats


def reduce_depth(n: int) -> int:
    """Analytic tree depth: ``ceil(log2 n)`` (0 for n <= 1)."""
    if n < 1:
        raise ValueError("n must be positive")
    return math.ceil(math.log2(n)) if n > 1 else 0

"""Parallel graph algorithms: level-synchronous BFS, label propagation.

Graph traversal is the standard "irregular parallelism" example — the
frontier *is* the parallelism, and it changes every step.  Both functions
report per-step frontier sizes so the shape of the available parallelism
(the BFS "bell curve") is visible to labs and benches.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

__all__ = ["BfsResult", "parallel_bfs", "connected_components"]


@dataclasses.dataclass
class BfsResult:
    """Distances plus the per-level frontier trace."""

    distances: Dict[Hashable, int]
    frontier_sizes: List[int]

    @property
    def levels(self) -> int:
        """Number of BFS levels (== span of the traversal)."""
        return len(self.frontier_sizes)

    @property
    def max_parallelism(self) -> int:
        """The widest frontier — the peak simultaneous work."""
        return max(self.frontier_sizes, default=0)


def parallel_bfs(graph: nx.Graph, source: Hashable) -> BfsResult:
    """Level-synchronous BFS.

    Each level expands the whole frontier "at once" (set union over
    neighbor sets — the data-parallel formulation); the barrier between
    levels is implicit in the loop.  Work Θ(V+E), span Θ(diameter).
    """
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    distances: Dict[Hashable, int] = {source: 0}
    frontier: Set[Hashable] = {source}
    sizes: List[int] = []
    level = 0
    while frontier:
        sizes.append(len(frontier))
        level += 1
        # The whole-frontier expansion: conceptually one parallel step.
        next_frontier: Set[Hashable] = set()
        for node in frontier:
            next_frontier.update(graph.neighbors(node))
        next_frontier -= distances.keys()
        for node in next_frontier:
            distances[node] = level
        frontier = next_frontier
    return BfsResult(distances=distances, frontier_sizes=sizes)


def connected_components(
    graph: nx.Graph, max_rounds: Optional[int] = None
) -> Tuple[Dict[Hashable, Hashable], int]:
    """Components by parallel label propagation (min-label convergence).

    Every node repeatedly adopts the minimum label in its closed
    neighborhood; all updates in a round happen from the same snapshot
    (Jacobi style — the parallel formulation).  Returns ``(labels,
    rounds)``; rounds is O(diameter of the largest component).
    """
    labels: Dict[Hashable, Hashable] = {
        n: min(n, *graph.neighbors(n), key=str) if graph.degree(n) else n
        for n in graph.nodes
    }
    labels = {n: n for n in graph.nodes}
    rounds = 0
    limit = max_rounds if max_rounds is not None else graph.number_of_nodes() + 1
    while True:
        rounds += 1
        if rounds > limit:
            raise RuntimeError("label propagation failed to converge")
        snapshot = dict(labels)
        changed = False
        for node in graph.nodes:
            candidates = [snapshot[node]] + [snapshot[m] for m in graph.neighbors(node)]
            best = min(candidates, key=str)
            if best != snapshot[node]:
                labels[node] = best
                changed = True
        if not changed:
            break
    return labels, rounds

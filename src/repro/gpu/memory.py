"""Device memory: instrumented global arrays and per-block shared memory."""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

__all__ = ["GlobalArray", "SharedMemory", "CoalescingAnalyzer"]


class GlobalArray:
    """A NumPy-backed device array whose element accesses are logged.

    Indexing with a plain integer behaves like a normal array but records
    ``(thread_key, access_seq, index, is_store)`` into the active access
    log.  Slicing and fancy indexing are deliberately unsupported inside
    kernels — a GPU thread touches scalars — and raise ``TypeError``.
    """

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.ascontiguousarray(data)
        self._log: List[Tuple[Tuple[int, int, int], int, int, bool]] | None = None
        self._thread_key: Tuple[int, int, int] | None = None
        self._seq = 0

    @classmethod
    def zeros(cls, n: int, dtype: Any = np.float64) -> "GlobalArray":
        """A zero-initialized device array of ``n`` elements."""
        return cls(np.zeros(n, dtype=dtype))

    @classmethod
    def from_host(cls, data: Any) -> "GlobalArray":
        """Copy host data to the device (models ``cudaMemcpyHostToDevice``)."""
        return cls(np.array(data))

    def to_host(self) -> np.ndarray:
        """Copy back to the host (models ``cudaMemcpyDeviceToHost``)."""
        return self.data.copy()

    @property
    def size(self) -> int:
        """Element count."""
        return int(self.data.size)

    def __len__(self) -> int:
        return len(self.data)

    # -- instrumentation plumbing (driven by the launcher) -------------------
    def _attach(self, log: list, thread_key: Tuple[int, int, int]) -> None:
        self._log = log
        self._thread_key = thread_key

    def _detach(self) -> None:
        self._log = None
        self._thread_key = None

    def _record(self, index: int, is_store: bool) -> None:
        if self._log is not None and self._thread_key is not None:
            self._log.append((self._thread_key, index, id(self), is_store))

    def __getitem__(self, index: int) -> Any:
        if not isinstance(index, (int, np.integer)):
            raise TypeError("GPU threads access scalars: index must be an int")
        self._record(int(index), is_store=False)
        return self.data[index]

    def __setitem__(self, index: int, value: Any) -> None:
        if not isinstance(index, (int, np.integer)):
            raise TypeError("GPU threads access scalars: index must be an int")
        self._record(int(index), is_store=True)
        self.data[index] = value


class SharedMemory:
    """Per-block scratchpad memory (``__shared__``).

    Allocated through :meth:`ThreadContext.shared_array`; a block's
    allocations are capped by the device's ``shared_mem_per_block``.
    Backed by a plain NumPy array — shared-memory accesses are not charged
    global transactions, which is the entire point of the tiling idiom.
    """

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._arrays: Dict[str, np.ndarray] = {}

    def allocate(self, name: str, shape: Any, dtype: Any = np.float64) -> np.ndarray:
        """Allocate (once per block) a named shared array.

        Subsequent calls with the same name return the same storage, so
        every thread of the block sees one array — matching ``__shared__``
        declaration semantics.
        """
        if name in self._arrays:
            return self._arrays[name]
        arr = np.zeros(shape, dtype=dtype)
        nbytes = int(arr.nbytes)
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise MemoryError(
                f"shared memory exhausted: {self.used_bytes} + {nbytes} "
                f"> {self.capacity_bytes} bytes"
            )
        self.used_bytes += nbytes
        self._arrays[name] = arr
        return arr


class CoalescingAnalyzer:
    """Groups a warp's logged accesses into memory transactions.

    Threads of a warp execute in lockstep, so the *k*-th global access of
    each thread corresponds to the same static instruction (exactly true
    for non-divergent code; a documented approximation under divergence).
    Accesses are therefore grouped by ``(warp, per-thread access sequence,
    array, load/store)`` and each group is charged
    :meth:`DeviceProperties.transactions_for` transactions.
    """

    def __init__(self, warp_size: int, transactions_for: Any) -> None:
        self.warp_size = warp_size
        self._transactions_for = transactions_for

    def analyze(
        self, log: List[Tuple[Tuple[int, int, int], int, int, bool]]
    ) -> Tuple[int, int]:
        """Return ``(transactions, ideal_transactions)`` for one block's log.

        ``log`` entries are ``((block, thread, seq), index, array_id,
        is_store)``.
        """
        groups: Dict[Tuple[int, int, int, bool], List[int]] = {}
        for (block, thread, seq), index, array_id, is_store in log:
            warp = thread // self.warp_size
            groups.setdefault((warp, seq, array_id, is_store), []).append(index)
        actual = 0
        ideal = 0
        for addresses in groups.values():
            actual += self._transactions_for(addresses)
            # Ideal: the same addresses, packed densely from the first one.
            ideal += self._transactions_for(list(range(len(addresses))))
        return actual, ideal

"""A SIMT manycore simulator (the CUDA teaching model, without the GPU).

Roughly 60% of the LAU case-study course (paper §IV-A) is manycore
programming: the SIMT execution model, grids/blocks/threads, shared memory,
barrier synchronization, memory coalescing, and warp divergence.  The paper's
course runs on NVIDIA cloud GPUs; this subpackage substitutes a simulator
that executes kernels written in a CUDA-like style and *counts* the
phenomena the course grades:

- **memory transactions** per warp access (coalesced vs. strided vs. random),
- **divergent branches** per warp,
- **barrier divergence** (some threads of a block skip a ``syncthreads`` —
  undefined behaviour on hardware, a detected error here),
- shared-memory usage per block.

Kernels are Python *generator functions* taking a
:class:`~repro.gpu.kernel.ThreadContext` first; they ``yield ctx.syncthreads()``
at block barriers.  Example::

    def vec_add(ctx, a, b, out):
        i = ctx.global_id()
        if i < out.size:
            out[i] = a[i] + b[i]
        return
        yield  # marks this function as a generator kernel

    dev = Device()
    launch(dev, vec_add, grid=4, block=64)(a, b, out)
"""

from repro.gpu.device import Device, DeviceProperties, KernelStats
from repro.gpu.kernel import (
    BarrierDivergence,
    KernelError,
    ThreadContext,
    launch,
)
from repro.gpu.memory import CoalescingAnalyzer, GlobalArray, SharedMemory
from repro.gpu.streams import Stream, StreamScheduler, pipeline_demo

__all__ = [
    "BarrierDivergence",
    "CoalescingAnalyzer",
    "Device",
    "DeviceProperties",
    "GlobalArray",
    "KernelError",
    "KernelStats",
    "launch",
    "pipeline_demo",
    "SharedMemory",
    "Stream",
    "StreamScheduler",
    "ThreadContext",
]

"""The SIMT execution engine: thread contexts, barriers, and the launcher.

Blocks are executed one after another (hardware gives no ordering or
communication guarantees *between* blocks, so sequential execution is a
valid schedule).  Within a block, threads run as generators driven by a
trampoline: each thread runs until it either finishes or yields at a
``syncthreads`` barrier; when every live thread has arrived, the next phase
begins.  A thread that finishes while siblings are waiting at a barrier is
*barrier divergence* — undefined behaviour on real hardware, a diagnosed
:class:`BarrierDivergence` error here.
"""

from __future__ import annotations

import dataclasses
import inspect
import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gpu.device import Device, KernelStats
from repro.gpu.memory import CoalescingAnalyzer, GlobalArray, SharedMemory

__all__ = ["ThreadContext", "launch", "KernelError", "BarrierDivergence", "Dim3"]

_SYNC = object()  # sentinel yielded at barriers


class KernelError(RuntimeError):
    """A kernel misused the programming model (bad launch config, etc.)."""


class BarrierDivergence(KernelError):
    """Some threads of a block reached ``syncthreads`` and others exited."""


@dataclasses.dataclass(frozen=True)
class Dim3:
    """A CUDA-style dimension triple with ``.x``/``.y``/``.z`` access."""

    x: int = 1
    y: int = 1
    z: int = 1

    @classmethod
    def of(cls, value: Union[int, Sequence[int], "Dim3"]) -> "Dim3":
        """Normalize an int / tuple / Dim3 into a Dim3."""
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return cls(value)
        vals = list(value) + [1] * (3 - len(value))
        return cls(*vals[:3])

    @property
    def count(self) -> int:
        """Total elements: ``x * y * z``."""
        return self.x * self.y * self.z


class _BlockRecorder:
    """Per-block instrumentation shared by all threads of the block."""

    def __init__(self, block_linear: int) -> None:
        self.block = block_linear
        self.current_thread = 0
        self.mem_log: List[Tuple[Tuple[int, int, int], int, int, bool]] = []
        self.branch_log: List[Tuple[Tuple[int, int, int], bool]] = []
        self._mem_seq: Dict[int, int] = {}
        self._branch_seq: Dict[int, int] = {}
        self.loads = 0
        self.stores = 0

    def record_access(self, index: int, array_id: int, is_store: bool) -> None:
        t = self.current_thread
        seq = self._mem_seq.get(t, 0)
        self._mem_seq[t] = seq + 1
        self.mem_log.append(((self.block, t, seq), index, array_id, is_store))
        if is_store:
            self.stores += 1
        else:
            self.loads += 1

    def record_branch(self, outcome: bool) -> None:
        t = self.current_thread
        seq = self._branch_seq.get(t, 0)
        self._branch_seq[t] = seq + 1
        self.branch_log.append(((self.block, t, seq), outcome))


class ThreadContext:
    """The per-thread view of the kernel: indices, memory, and barriers.

    Kernels receive this as their first argument.  The CUDA built-ins map
    as: ``threadIdx`` -> :attr:`thread_idx`, ``blockIdx`` ->
    :attr:`block_idx`, ``blockDim``/``gridDim`` likewise;
    ``__syncthreads()`` -> ``yield ctx.syncthreads()``; ``__shared__`` ->
    :meth:`shared_array`.
    """

    def __init__(
        self,
        thread_idx: Dim3,
        block_idx: Dim3,
        block_dim: Dim3,
        grid_dim: Dim3,
        shared: SharedMemory,
        recorder: _BlockRecorder,
        warp_size: int,
    ) -> None:
        self.thread_idx = thread_idx
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self._shared = shared
        self._recorder = recorder
        self._warp_size = warp_size

    # -- indexing helpers ----------------------------------------------------
    @property
    def thread_linear(self) -> int:
        """Linear thread id within the block (x fastest, CUDA order)."""
        t, d = self.thread_idx, self.block_dim
        return t.x + t.y * d.x + t.z * d.x * d.y

    @property
    def block_linear(self) -> int:
        """Linear block id within the grid."""
        b, g = self.block_idx, self.grid_dim
        return b.x + b.y * g.x + b.z * g.x * g.y

    def global_id(self) -> int:
        """1-D global thread index: ``blockIdx.x * blockDim.x + threadIdx.x``."""
        return self.block_idx.x * self.block_dim.x + self.thread_idx.x

    def global_id_2d(self) -> Tuple[int, int]:
        """(row, col) global index for 2-D launches: (y-axis, x-axis)."""
        row = self.block_idx.y * self.block_dim.y + self.thread_idx.y
        col = self.block_idx.x * self.block_dim.x + self.thread_idx.x
        return row, col

    @property
    def warp(self) -> int:
        """This thread's warp index within its block."""
        return self.thread_linear // self._warp_size

    @property
    def lane(self) -> int:
        """This thread's lane within its warp."""
        return self.thread_linear % self._warp_size

    # -- programming-model operations -----------------------------------------
    def syncthreads(self) -> object:
        """Block-wide barrier.  Must be *yielded*: ``yield ctx.syncthreads()``."""
        return _SYNC

    def shared_array(
        self, name: str, shape: Any, dtype: Any = np.float64
    ) -> np.ndarray:
        """Declare/fetch a ``__shared__`` array visible to the whole block."""
        return self._shared.allocate(name, shape, dtype)

    def branch(self, condition: bool) -> bool:
        """An instrumented branch: records the outcome for divergence stats.

        Use as ``if ctx.branch(i < n):`` where divergence matters; plain
        Python ``if`` is always allowed but not counted.
        """
        self._recorder.record_branch(bool(condition))
        return bool(condition)


def _iter_dim3(dim: Dim3):
    for z in range(dim.z):
        for y in range(dim.y):
            for x in range(dim.x):
                yield Dim3(x, y, z)


def launch(
    device: Device,
    kernel: Callable[..., Any],
    grid: Union[int, Sequence[int], Dim3],
    block: Union[int, Sequence[int], Dim3],
) -> Callable[..., KernelStats]:
    """Configure a kernel launch: ``launch(dev, k, grid, block)(*args)``.

    Returns a callable that executes the kernel over the whole grid and
    returns the launch's :class:`~repro.gpu.device.KernelStats` (also
    recorded on the device under the kernel's name).
    """
    grid_dim = Dim3.of(grid)
    block_dim = Dim3.of(block)
    props = device.properties
    if block_dim.count < 1 or grid_dim.count < 1:
        raise KernelError("grid and block must be non-empty")
    if block_dim.count > props.max_threads_per_block:
        raise KernelError(
            f"block of {block_dim.count} threads exceeds device limit "
            f"{props.max_threads_per_block}"
        )
    is_generator = inspect.isgeneratorfunction(kernel)
    analyzer = CoalescingAnalyzer(props.warp_size, props.transactions_for)

    def run(*args: Any) -> KernelStats:
        kernel_name = getattr(kernel, "__name__", "kernel")
        if device.context is not None:
            with device.context.tracer.span(
                f"gpu.launch.{kernel_name}",
                cat="gpu",
                tid="gpu.device",
                args={"grid": grid_dim.count, "block": block_dim.count},
            ):
                return _run(kernel_name, args)
        return _run(kernel_name, args)

    def _run(kernel_name: str, args: Tuple[Any, ...]) -> KernelStats:
        stats = device.new_stats(kernel_name)
        stats.blocks = grid_dim.count
        stats.threads = grid_dim.count * block_dim.count
        stats.warps = grid_dim.count * math.ceil(
            block_dim.count / props.warp_size
        )
        global_arrays = [a for a in args if isinstance(a, GlobalArray)]

        for block_idx in _iter_dim3(grid_dim):
            shared = SharedMemory(props.shared_mem_per_block)
            block_linear = (
                block_idx.x
                + block_idx.y * grid_dim.x
                + block_idx.z * grid_dim.x * grid_dim.y
            )
            recorder = _BlockRecorder(block_linear)
            for arr in global_arrays:
                arr._log = _ArrayLogAdapter(recorder, arr)  # type: ignore[assignment]
            contexts = [
                ThreadContext(
                    thread_idx=tid,
                    block_idx=block_idx,
                    block_dim=block_dim,
                    grid_dim=grid_dim,
                    shared=shared,
                    recorder=recorder,
                    warp_size=props.warp_size,
                )
                for tid in _iter_dim3(block_dim)
            ]
            try:
                if is_generator:
                    _run_block_trampoline(contexts, kernel, args, recorder, stats)
                else:
                    for ctx in contexts:
                        recorder.current_thread = ctx.thread_linear
                        kernel(ctx, *args)
            finally:
                for arr in global_arrays:
                    arr._detach()
            # Per-block accounting.
            actual, ideal = analyzer.analyze(recorder.mem_log)
            stats.transactions += actual
            stats.ideal_transactions += ideal
            stats.global_loads += recorder.loads
            stats.global_stores += recorder.stores
            _account_divergence(recorder, props.warp_size, stats)
            if shared.used_bytes > stats.shared_bytes_peak:
                stats.shared_bytes_peak = shared.used_bytes
        return stats

    return run


class _ArrayLogAdapter:
    """Adapts GlobalArray's append-style logging onto the block recorder."""

    def __init__(self, recorder: _BlockRecorder, array: GlobalArray) -> None:
        self._recorder = recorder
        self._array_id = id(array)
        # Make the array's _record path route through us.
        array._log = self  # type: ignore[assignment]
        array._thread_key = (0, 0, 0)  # non-None enables recording

    def append(
        self, entry: Tuple[Tuple[int, int, int], int, int, bool]
    ) -> None:
        _key, index, array_id, is_store = entry
        self._recorder.record_access(index, array_id, is_store)


def _run_block_trampoline(
    contexts: List[ThreadContext],
    kernel: Callable[..., Any],
    args: Tuple[Any, ...],
    recorder: _BlockRecorder,
    stats: KernelStats,
) -> None:
    """Drive all threads of one block between barrier phases."""
    gens: List[Optional[Any]] = []
    for ctx in contexts:
        recorder.current_thread = ctx.thread_linear
        gens.append(kernel(ctx, *args))
    live = list(range(len(gens)))
    # Phase loop: advance every live thread to its next barrier or its end.
    while live:
        arrived: List[int] = []
        finished: List[int] = []
        for t in live:
            recorder.current_thread = contexts[t].thread_linear
            gen = gens[t]
            try:
                yielded = next(gen)
            except StopIteration:
                finished.append(t)
                continue
            if yielded is not _SYNC:
                raise KernelError(
                    f"kernel yielded {yielded!r}; only "
                    "'yield ctx.syncthreads()' is allowed"
                )
            arrived.append(t)
        if arrived and finished:
            raise BarrierDivergence(
                f"{len(arrived)} thread(s) wait at syncthreads while "
                f"{len(finished)} thread(s) exited the kernel"
            )
        if arrived:
            stats.syncthreads += 1
        live = arrived


def _account_divergence(
    recorder: _BlockRecorder, warp_size: int, stats: KernelStats
) -> None:
    groups: Dict[Tuple[int, int], set] = {}
    for (block, thread, seq), outcome in recorder.branch_log:
        warp = thread // warp_size
        groups.setdefault((warp, seq), set()).add(outcome)
    stats.instrumented_branches += len(groups)
    stats.divergent_branches += sum(1 for s in groups.values() if len(s) > 1)

"""Concurrent streams: overlapping transfers and kernels on a timeline.

The LAU course's manycore part teaches "advanced memory management
techniques as well as using concurrent streams" (paper §IV-A).  The
classic lesson: a pipeline of H2D-copy → kernel → D2H-copy chunks runs
serially in one stream, but with multiple streams the copy engine and the
compute engine overlap, hiding transfer time.

:class:`StreamScheduler` simulates the device timeline: one copy engine
per direction plus one compute engine, each processing the operations
enqueued on streams in issue order, subject to (a) per-stream FIFO
ordering and (b) per-engine serialization — exactly the scheduling model
the CUDA best-practices material draws.  Durations are supplied by the
caller (cost units, not wall-clock), keeping results deterministic.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

__all__ = ["EngineKind", "StreamOp", "Stream", "StreamScheduler", "pipeline_demo"]


class EngineKind(enum.Enum):
    """The three engines a discrete GPU exposes to streams."""

    COPY_H2D = "copy-h2d"
    COPY_D2H = "copy-d2h"
    COMPUTE = "compute"


@dataclasses.dataclass
class StreamOp:
    """One enqueued operation (copy or kernel) with its cost."""

    name: str
    engine: EngineKind
    duration: float
    stream: int = 0
    # Filled by the scheduler:
    start: float = 0.0
    end: float = 0.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")


class Stream:
    """An in-order queue of operations (cudaStream_t)."""

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self.ops: List[StreamOp] = []

    def memcpy_h2d(self, name: str, duration: float) -> "Stream":
        """Enqueue a host-to-device copy."""
        self.ops.append(StreamOp(name, EngineKind.COPY_H2D, duration, self.stream_id))
        return self

    def launch(self, name: str, duration: float) -> "Stream":
        """Enqueue a kernel."""
        self.ops.append(StreamOp(name, EngineKind.COMPUTE, duration, self.stream_id))
        return self

    def memcpy_d2h(self, name: str, duration: float) -> "Stream":
        """Enqueue a device-to-host copy."""
        self.ops.append(StreamOp(name, EngineKind.COPY_D2H, duration, self.stream_id))
        return self


@dataclasses.dataclass
class StreamReport:
    """Timeline outcome of one schedule."""

    makespan: float
    timeline: List[StreamOp]
    engine_busy: Dict[EngineKind, float]

    def overlap_fraction(self) -> float:
        """How much engine work was hidden: total busy / makespan − 1.

        0.0 means fully serialized; approaching 2.0 means all three
        engines ran concurrently almost all the time.
        """
        if self.makespan == 0:
            return 0.0
        total = sum(self.engine_busy.values())
        return total / self.makespan - 1.0


class StreamScheduler:
    """Replays streams against the three engines.

    Issue order is round-robin across streams (the hardware's global
    issue queue, simplified): an op starts at
    ``max(engine_free, predecessor_in_stream_done)``.
    """

    def __init__(self) -> None:
        self._streams: Dict[int, Stream] = {}

    def stream(self, stream_id: int = 0) -> Stream:
        """Get or create a stream."""
        if stream_id not in self._streams:
            self._streams[stream_id] = Stream(stream_id)
        return self._streams[stream_id]

    def run(self) -> StreamReport:
        """Schedule every enqueued op; returns the timeline report."""
        engine_free: Dict[EngineKind, float] = {e: 0.0 for e in EngineKind}
        stream_free: Dict[int, float] = {s: 0.0 for s in self._streams}
        engine_busy: Dict[EngineKind, float] = {e: 0.0 for e in EngineKind}
        timeline: List[StreamOp] = []

        # Round-robin issue across streams, preserving per-stream order.
        queues = {
            sid: list(stream.ops) for sid, stream in sorted(self._streams.items())
        }
        while any(queues.values()):
            for sid in sorted(queues):
                if not queues[sid]:
                    continue
                op = queues[sid].pop(0)
                start = max(engine_free[op.engine], stream_free[sid])
                op.start = start
                op.end = start + op.duration
                engine_free[op.engine] = op.end
                stream_free[sid] = op.end
                engine_busy[op.engine] += op.duration
                timeline.append(op)

        makespan = max((op.end for op in timeline), default=0.0)
        return StreamReport(
            makespan=makespan, timeline=timeline, engine_busy=engine_busy
        )


def pipeline_demo(
    chunks: int = 4,
    copy_cost: float = 1.0,
    kernel_cost: float = 1.0,
    num_streams: int = 4,
) -> Tuple[float, float]:
    """The canonical overlap demo: 1 stream vs many.

    Each chunk is H2D → kernel → D2H.  Returns
    ``(serial_makespan, streamed_makespan)``; with equal costs and enough
    streams the streamed pipeline approaches a third of the serial time
    plus pipeline fill/drain.
    """
    serial = StreamScheduler()
    s = serial.stream(0)
    for c in range(chunks):
        s.memcpy_h2d(f"h2d{c}", copy_cost)
        s.launch(f"k{c}", kernel_cost)
        s.memcpy_d2h(f"d2h{c}", copy_cost)
    serial_span = serial.run().makespan

    streamed = StreamScheduler()
    for c in range(chunks):
        st = streamed.stream(c % num_streams)
        st.memcpy_h2d(f"h2d{c}", copy_cost)
        st.launch(f"k{c}", kernel_cost)
        st.memcpy_d2h(f"d2h{c}", copy_cost)
    streamed_span = streamed.run().makespan

    return serial_span, streamed_span

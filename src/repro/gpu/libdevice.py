"""Reference device kernels: the standard manycore teaching algorithms.

These are the kernels the LAU course's CUDA part assigns — vector add,
block-level tree reduction in shared memory, Hillis–Steele scan, and tiled
matrix multiply — written against :mod:`repro.gpu`'s programming model.
They double as executable documentation and as the workload for the GPU
benchmarks (coalescing/divergence ablations).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.gpu.device import Device, KernelStats
from repro.gpu.kernel import ThreadContext, launch
from repro.gpu.memory import GlobalArray

__all__ = [
    "vector_add",
    "vector_add_strided",
    "block_reduce_sum",
    "device_reduce_sum",
    "hillis_steele_scan",
    "device_inclusive_scan",
    "tiled_matmul",
    "device_matmul",
]


def vector_add(ctx: ThreadContext, a: GlobalArray, b: GlobalArray, out: GlobalArray):
    """``out[i] = a[i] + b[i]`` with one thread per element (coalesced)."""
    i = ctx.global_id()
    if ctx.branch(i < out.size):
        out[i] = a[i] + b[i]
    return
    yield  # generator form so guard branches and barriers stay legal


def vector_add_strided(
    ctx: ThreadContext, a: GlobalArray, b: GlobalArray, out: GlobalArray, stride: int
):
    """A deliberately *uncoalesced* vector add: thread ``i`` handles
    element ``(i * stride) % n``.  Used by the coalescing ablation bench —
    same arithmetic as :func:`vector_add`, many more transactions."""
    i = ctx.global_id()
    n = out.size
    if ctx.branch(i < n):
        j = (i * stride) % n
        out[j] = a[j] + b[j]
    return
    yield


def block_reduce_sum(
    ctx: ThreadContext, data: GlobalArray, partials: GlobalArray
):
    """Shared-memory tree reduction: one partial sum per block.

    The canonical first CUDA assignment: load to shared memory, then halve
    the active thread count each step with a barrier between steps.
    """
    tile = ctx.shared_array("tile", ctx.block_dim.x)
    tid = ctx.thread_idx.x
    i = ctx.global_id()
    tile[tid] = data[i] if i < data.size else 0.0
    yield ctx.syncthreads()
    stride = ctx.block_dim.x // 2
    while stride > 0:
        if tid < stride:
            tile[tid] += tile[tid + stride]
        yield ctx.syncthreads()
        stride //= 2
    if tid == 0:
        partials[ctx.block_idx.x] = tile[0]


def device_reduce_sum(
    device: Device, host_data: np.ndarray, block: int = 64
) -> Tuple[float, KernelStats]:
    """Full device reduction: per-block kernel + host combine of partials.

    ``block`` must be a power of two (the tree halves it each step).
    Returns ``(sum, stats_of_the_kernel_launch)``.
    """
    if block & (block - 1):
        raise ValueError("block size must be a power of two")
    data = GlobalArray.from_host(np.asarray(host_data, dtype=np.float64))
    grid = math.ceil(data.size / block)
    partials = GlobalArray.zeros(grid)
    stats = launch(device, block_reduce_sum, grid=grid, block=block)(data, partials)
    return float(partials.to_host().sum()), stats


def hillis_steele_scan(ctx: ThreadContext, data: GlobalArray, out: GlobalArray):
    """Inclusive prefix sum of one block via Hillis–Steele (work n log n).

    Double-buffered in shared memory; each of the log2(n) steps is barrier
    separated.  Handles a single block of up to ``blockDim.x`` elements —
    the form in which the algorithm is taught before multi-block scans.
    """
    n = ctx.block_dim.x
    buf_a = ctx.shared_array("scan_a", n)
    buf_b = ctx.shared_array("scan_b", n)
    tid = ctx.thread_idx.x
    buf_a[tid] = data[tid] if tid < data.size else 0.0
    yield ctx.syncthreads()
    src, dst = buf_a, buf_b
    offset = 1
    while offset < n:
        if tid >= offset:
            dst[tid] = src[tid] + src[tid - offset]
        else:
            dst[tid] = src[tid]
        yield ctx.syncthreads()
        src, dst = dst, src
        offset *= 2
    if tid < out.size:
        out[tid] = src[tid]


def device_inclusive_scan(
    device: Device, host_data: np.ndarray
) -> Tuple[np.ndarray, KernelStats]:
    """Single-block inclusive scan (pads the block to a power of two)."""
    data = GlobalArray.from_host(np.asarray(host_data, dtype=np.float64))
    n = data.size
    block = 1 << max(0, (n - 1)).bit_length()
    block = max(block, 1)
    out = GlobalArray.zeros(n)
    stats = launch(device, hillis_steele_scan, grid=1, block=block)(data, out)
    return out.to_host(), stats


def tiled_matmul(
    ctx: ThreadContext,
    a: GlobalArray,
    b: GlobalArray,
    c: GlobalArray,
    n: int,
    tile: int,
):
    """Shared-memory tiled matrix multiply of two n x n matrices.

    Each block computes one ``tile x tile`` output tile; each phase stages
    one tile of A and one of B through shared memory, cutting global loads
    by a factor of ``tile`` — the flagship shared-memory optimization.
    Matrices are stored row-major in 1-D global arrays.
    """
    tile_a = ctx.shared_array("tile_a", (tile, tile))
    tile_b = ctx.shared_array("tile_b", (tile, tile))
    row = ctx.block_idx.y * tile + ctx.thread_idx.y
    col = ctx.block_idx.x * tile + ctx.thread_idx.x
    acc = 0.0
    for phase in range(n // tile):
        a_col = phase * tile + ctx.thread_idx.x
        b_row = phase * tile + ctx.thread_idx.y
        tile_a[ctx.thread_idx.y, ctx.thread_idx.x] = a[row * n + a_col]
        tile_b[ctx.thread_idx.y, ctx.thread_idx.x] = b[b_row * n + col]
        yield ctx.syncthreads()
        for k in range(tile):
            acc += tile_a[ctx.thread_idx.y, k] * tile_b[k, ctx.thread_idx.x]
        yield ctx.syncthreads()
    c[row * n + col] = acc


def device_matmul(
    device: Device, a: np.ndarray, b: np.ndarray, tile: int = 4
) -> Tuple[np.ndarray, KernelStats]:
    """Multiply square matrices on the device; ``n`` must be divisible by ``tile``."""
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValueError("device_matmul needs square matrices of equal size")
    if n % tile:
        raise ValueError("matrix size must be divisible by the tile size")
    ga = GlobalArray.from_host(a.astype(np.float64).reshape(-1))
    gb = GlobalArray.from_host(b.astype(np.float64).reshape(-1))
    gc = GlobalArray.zeros(n * n)
    blocks = n // tile
    stats = launch(device, tiled_matmul, grid=(blocks, blocks), block=(tile, tile))(
        ga, gb, gc, n, tile
    )
    return gc.to_host().reshape(n, n), stats

"""Shared-memory bank conflicts — the other half of GPU memory tuning.

The LAU course's manycore part teaches "advanced memory management
techniques" (paper §IV-A): after global-memory coalescing
(:mod:`repro.gpu.memory`) comes shared-memory banking.  Shared memory is
split into ``num_banks`` banks, word-interleaved; a warp's access
completes in as many cycles as the *maximum number of distinct words any
single bank must serve* (broadcast of one identical word is free).

:func:`bank_conflicts` analyzes one warp access pattern;
:func:`matrix_column_access` and the padding variant regenerate the
classic ``tile[33][32]``-padding lesson: a column walk of a 32-wide tile
is a 32-way conflict, and one pad column makes it conflict-free.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

__all__ = [
    "BankReport",
    "bank_conflicts",
    "matrix_column_access",
    "padded_matrix_column_access",
]


@dataclasses.dataclass(frozen=True)
class BankReport:
    """Bank behaviour of one warp access."""

    num_banks: int
    conflict_degree: int  # max distinct words served by one bank
    serialized_cycles: int  # == conflict_degree (1 == conflict-free)
    broadcasts: int  # banks that served one word to many lanes

    @property
    def conflict_free(self) -> bool:
        """One cycle: every bank serves at most one distinct word."""
        return self.conflict_degree <= 1


def bank_conflicts(
    word_addresses: Sequence[int], num_banks: int = 32
) -> BankReport:
    """Analyze one warp's shared-memory access (word addresses).

    A bank serving k *distinct* words serializes into k cycles; a bank
    serving one word to any number of lanes broadcasts in one cycle.
    """
    if num_banks < 1:
        raise ValueError("num_banks must be positive")
    per_bank: List[set] = [set() for _ in range(num_banks)]
    lanes_per_bank: List[int] = [0] * num_banks
    for addr in word_addresses:
        if addr < 0:
            raise ValueError("addresses must be non-negative")
        bank = addr % num_banks
        per_bank[bank].add(addr)
        lanes_per_bank[bank] += 1
    degree = max((len(words) for words in per_bank), default=0)
    broadcasts = sum(
        1
        for words, lanes in zip(per_bank, lanes_per_bank)
        if len(words) == 1 and lanes > 1
    )
    return BankReport(
        num_banks=num_banks,
        conflict_degree=max(degree, 1 if word_addresses else 0),
        serialized_cycles=max(degree, 1 if word_addresses else 0),
        broadcasts=broadcasts,
    )


def matrix_column_access(
    column: int, rows: int = 32, row_stride: int = 32
) -> List[int]:
    """Addresses of a warp reading one column of a row-major tile.

    With ``row_stride == num_banks`` every element maps to the same bank
    — the classic worst case.
    """
    return [r * row_stride + column for r in range(rows)]


def padded_matrix_column_access(
    column: int, rows: int = 32, row_stride: int = 33
) -> List[int]:
    """The fix: pad each row by one word (``tile[32][33]``), skewing the
    column across all banks."""
    return matrix_column_access(column, rows, row_stride)

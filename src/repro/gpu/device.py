"""Device properties and per-launch statistics."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.runtime import RunContext
from repro.runtime.metrics import RegistryStats

__all__ = ["DeviceProperties", "KernelStats", "Device"]


@dataclasses.dataclass(frozen=True)
class DeviceProperties:
    """Static hardware parameters of the simulated device.

    Defaults model a small educational GPU: 32-wide warps (NVIDIA's
    constant since Tesla), 1024-thread blocks, 48 KiB of shared memory per
    block, and 128-byte memory transactions (one full cache line per
    coalesced warp access of 4-byte elements).
    """

    warp_size: int = 32
    max_threads_per_block: int = 1024
    shared_mem_per_block: int = 48 * 1024
    transaction_bytes: int = 128
    element_bytes: int = 4
    num_sms: int = 8

    def transactions_for(self, addresses: list[int]) -> int:
        """Memory transactions needed to serve one warp's addresses.

        Addresses are element indices; a transaction covers
        ``transaction_bytes // element_bytes`` consecutive elements.  The
        count is the number of distinct transaction-sized segments touched —
        exactly the coalescing rule taught for post-Fermi GPUs.
        """
        if not addresses:
            return 0
        span = self.transaction_bytes // self.element_bytes
        return len({a // span for a in addresses})


class KernelStats(RegistryStats):
    """Counters accumulated across one kernel launch.

    Registry-backed: a device with a run context records each launch under
    ``gpu.kernel.<launch-name>.*`` in the shared registry; a bare device
    keeps per-launch private counters, as before.
    """

    fields = (
        "blocks",
        "threads",
        "warps",
        "global_loads",
        "global_stores",
        "transactions",
        "instrumented_branches",
        "divergent_branches",
        "syncthreads",
        "shared_bytes_peak",
        "ideal_transactions",
    )
    default_prefix = "gpu.kernel"

    def coalescing_efficiency(self) -> float:
        """Ideal transactions / actual transactions (1.0 == fully coalesced).

        Ideal assumes each warp access of W addresses needs
        ``ceil(W * element_bytes / transaction_bytes)`` transactions.
        Meaningful only after at least one access.
        """
        if self.transactions == 0:
            return 1.0
        accesses = self.global_loads + self.global_stores
        if accesses == 0:
            return 1.0
        return min(1.0, self.ideal_transactions / self.transactions)

    def divergence_rate(self) -> float:
        """Fraction of instrumented branches that diverged within a warp."""
        if self.instrumented_branches == 0:
            return 0.0
        return self.divergent_branches / self.instrumented_branches


class Device:
    """The simulated manycore device: properties plus a stats registry.

    One :class:`KernelStats` is recorded per launch under the kernel's
    name (suffixed on repeats), so back-to-back ablation runs can be
    compared.  With a ``context``, launch counters join the run-wide
    metric registry and each launch bumps ``gpu.launches``.
    """

    def __init__(
        self,
        properties: DeviceProperties | None = None,
        context: Optional[RunContext] = None,
    ) -> None:
        self.properties = properties or DeviceProperties()
        self.context = context
        self.launches: Dict[str, KernelStats] = {}

    def new_stats(self, kernel_name: str) -> KernelStats:
        """Register and return a fresh stats record for one launch."""
        name = kernel_name
        suffix = 1
        while name in self.launches:
            suffix += 1
            name = f"{kernel_name}#{suffix}"
        if self.context is not None:
            stats = KernelStats(
                registry=self.context.registry, prefix=f"gpu.kernel.{name}"
            )
            self.context.registry.counter("gpu.launches").inc()
        else:
            stats = KernelStats()
        self.launches[name] = stats
        return stats

    def last_stats(self) -> KernelStats:
        """Stats of the most recent launch."""
        if not self.launches:
            raise RuntimeError("no kernel has been launched on this device")
        return next(reversed(self.launches.values()))

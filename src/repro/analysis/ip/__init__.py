"""Whole-program interprocedural analysis for PDC-Lint.

The per-file analyzers stop at the module boundary:
:meth:`~repro.analysis.analyzer.ModuleContext.resolve_call` can name
``shared_state.bump`` but cannot look inside it, so a race between
``worker.py`` and ``shared_state.py`` — the shape students write in
multi-file labs — is invisible.  This package lifts PDC101, PDC102,
PDC206, and PDC209 to whole-program scope behind
``pdc-lint --whole-program``:

1. **Summaries** (:mod:`.summaries`) — one picklable
   :class:`~repro.analysis.ip.summaries.ModuleSummary` per file: global
   accesses with locksets, call sites, spawn sites, lock acquisitions,
   blocking calls, held-at-exit sets.  Content-hash-keyed in a
   :class:`~repro.analysis.ip.cache.SummaryCache` beside the engine's
   findings cache.
2. **Linking** (:mod:`.callgraph`) — imports resolve to analyzed files,
   modules condense into import-graph SCCs, each SCC's *cone* (itself
   plus everything it transitively imports) is the unit of phase-2
   caching and invalidation.
3. **Fixpoint + rules** (:mod:`.analyzer`) — a context-insensitive
   entry-lockset fixpoint over call-graph SCCs propagates locks through
   calls; the whole-program rules then re-judge races, lock-order
   cycles, and transitively-blocking calls with cross-module evidence,
   attaching the call-chain trace to every finding.
4. **Engine** (:mod:`.engine`) — the two-phase
   :class:`~repro.analysis.ip.engine.WholeProgramEngine`: per-file
   findings (phase 1, the existing engine), then summaries → cones.
   Editing one file re-summarizes exactly that file and re-analyzes
   only the cones containing it; cold == warm == parallel byte-identity
   covers both phases.

The documented precision limit: phase-2 results are pure functions of a
cone's member summaries, so a race whose evidence spans two *unrelated*
cones (neither imports the other, directly or transitively) is not
joined.  In practice shared state lives in a module both sides import,
which puts all evidence in every importer's cone.
"""

from repro.analysis.ip.cache import SummaryCache
from repro.analysis.ip.callgraph import ProgramIndex
from repro.analysis.ip.engine import WholeProgramEngine
from repro.analysis.ip.summaries import (
    SUMMARY_VERSION,
    ModuleSummary,
    summarize_module,
)

__all__ = [
    "ModuleSummary",
    "ProgramIndex",
    "SUMMARY_VERSION",
    "SummaryCache",
    "WholeProgramEngine",
    "summarize_module",
]

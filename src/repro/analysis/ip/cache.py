"""The summary cache: phase-2's sibling of the findings cache.

Two entry families share one version-scoped directory::

    <root>/pdc-lint-ip/<scope>/meta.json     # versions, human-readable
    <root>/pdc-lint-ip/<scope>/s-<digest>.json   # one module summary
    <root>/pdc-lint-ip/<scope>/c-<digest>.json   # one cone's findings

Summary entries are keyed by the module's *content* digest — identical
bytes at two paths share one summary, rebased on the way out (only the
``path`` field differs; line numbers are content).  Cone entries are
keyed by the cone digest, a pure function of the member summaries'
``(module name, path, digest)`` tuples, so editing one file invalidates
exactly the cones that contain it and nothing else.

Same failure discipline as the findings cache: corrupted, unreadable,
or wrong-version entries degrade to misses, writes are atomic, and an
uncreatable cache is just a miss machine.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from typing import Dict, Optional

from repro.analysis.ip.summaries import SUMMARY_VERSION, ModuleSummary

__all__ = ["SummaryCache", "MemorySummaryCache", "summary_scope_id"]

_TOOL_DIR = "pdc-lint-ip"


def summary_scope_id(ip_version: str) -> str:
    """Cache scope for one (summary schema, IP analysis) version pair."""
    material = f"{_TOOL_DIR}\x00{SUMMARY_VERSION}\x00{ip_version}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


class SummaryCache:
    """On-disk summaries + cone results.  I/O failures are misses."""

    def __init__(self, root: str, ip_version: str) -> None:
        self.root = root
        self.ip_version = ip_version
        self._scope = os.path.join(
            root, _TOOL_DIR, summary_scope_id(ip_version)
        )
        self._prune_stale()
        self._open_scope()

    # -- lifecycle ---------------------------------------------------------
    def _open_scope(self) -> None:
        try:
            os.makedirs(self._scope, exist_ok=True)
            meta = os.path.join(self._scope, "meta.json")
            if not os.path.exists(meta):
                self._atomic_write(
                    meta,
                    json.dumps(
                        {
                            "tool": _TOOL_DIR,
                            "summary_version": SUMMARY_VERSION,
                            "ip_version": self.ip_version,
                        },
                        indent=2,
                    ),
                )
        except OSError:
            pass

    def _prune_stale(self) -> int:
        """Delete sibling scopes from older summary/IP versions."""
        tool_dir = os.path.join(self.root, _TOOL_DIR)
        removed = 0
        try:
            names = os.listdir(tool_dir)
        except OSError:
            return 0
        for name in names:
            scope = os.path.join(tool_dir, name)
            try:
                with open(
                    os.path.join(scope, "meta.json"), "r", encoding="utf-8"
                ) as fh:
                    meta = json.load(fh)
                stale = (
                    meta.get("summary_version") != SUMMARY_VERSION
                    or meta.get("ip_version") != self.ip_version
                )
            except (OSError, ValueError):
                stale = True
            if stale:
                shutil.rmtree(scope, ignore_errors=True)
                removed += 1
        return removed

    # -- summaries ---------------------------------------------------------
    def get_summary(self, digest: str, path: str) -> Optional[ModuleSummary]:
        """The cached summary for ``digest``, rebased to ``path``."""
        try:
            with open(
                os.path.join(self._scope, f"s-{digest}.json"),
                "r",
                encoding="utf-8",
            ) as fh:
                summary = ModuleSummary.from_wire(json.load(fh))
        except (OSError, ValueError, KeyError, TypeError):
            return None
        summary.path = path
        return summary

    def put_summary(self, digest: str, summary: ModuleSummary) -> None:
        try:
            self._atomic_write(
                os.path.join(self._scope, f"s-{digest}.json"),
                json.dumps(summary.to_wire()),
            )
        except OSError:
            pass

    # -- cone results ------------------------------------------------------
    def get_cone(self, digest: str) -> Optional[Dict[str, object]]:
        """The cached cone analysis keyed by the cone digest."""
        try:
            with open(
                os.path.join(self._scope, f"c-{digest}.json"),
                "r",
                encoding="utf-8",
            ) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def put_cone(self, digest: str, payload: Dict[str, object]) -> None:
        try:
            self._atomic_write(
                os.path.join(self._scope, f"c-{digest}.json"),
                json.dumps(payload),
            )
        except OSError:
            pass

    def _atomic_write(self, path: str, text: str) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)


class MemorySummaryCache:
    """Per-process summary cache with the same surface (autograder use)."""

    def __init__(self) -> None:
        self._summaries: Dict[str, Dict[str, object]] = {}
        self._cones: Dict[str, Dict[str, object]] = {}

    def get_summary(self, digest: str, path: str) -> Optional[ModuleSummary]:
        wire = self._summaries.get(digest)
        if wire is None:
            return None
        summary = ModuleSummary.from_wire(wire)
        summary.path = path
        return summary

    def put_summary(self, digest: str, summary: ModuleSummary) -> None:
        self._summaries[digest] = summary.to_wire()

    def get_cone(self, digest: str) -> Optional[Dict[str, object]]:
        return self._cones.get(digest)

    def put_cone(self, digest: str, payload: Dict[str, object]) -> None:
        self._cones[digest] = payload

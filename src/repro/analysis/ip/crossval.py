"""Interprocedural static-vs-dynamic cross-validation.

The single-file crossval (:mod:`repro.sanitizers.crossval`) measures
the per-file analyzers against the twin corpus.  This one measures the
*whole-program* lift against the multi-file corpus
(:data:`repro.smp.fixtures.MULTIFILE_FIXTURES`), where each fixture
carries three ground truths:

- ``expect_ip_rules`` — what ``pdc-lint --whole-program`` must report
  over the program tree;
- ``expect_single_file`` — what per-file pdc-lint reports on the same
  tree (∅ machine-checks that the interprocedural lift is load-bearing:
  no single module shows the bug);
- ``expect_dynamic`` — what one multi-module sanitizer execution
  (:func:`repro.sanitizers.runner.run_program`) observes, confirming
  the racy pair's PDC101 and exonerating the handoff pair's
  (``known_false_positive``) one via fork/join happens-before.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Dict, FrozenSet, List

from repro.analysis.engine.core import AnalysisEngine
from repro.analysis.engine.passes import LintPass
from repro.analysis.ip.engine import WholeProgramEngine
from repro.smp.fixtures import MultiFileFixture, all_multifile_fixtures

__all__ = [
    "ProgramVerdict",
    "IpCrossReport",
    "cross_validate_ip",
    "render_ip_crossval_text",
    "run_ip_crossval_cli",
]


@dataclasses.dataclass(frozen=True)
class ProgramVerdict:
    """All three analyses' verdicts on one multi-file program."""

    name: str
    expect_ip: FrozenSet[str]
    expect_single_file: FrozenSet[str]
    expect_dynamic: FrozenSet[str]
    known_false_positive: bool
    whole_program_rules: FrozenSet[str]
    single_file_rules: FrozenSet[str]
    dynamic_rules: FrozenSet[str]

    @property
    def whole_program_ok(self) -> bool:
        """Whole-program mode must say exactly: per-file findings plus
        the interprocedural expectation."""
        return (
            self.whole_program_rules
            == self.expect_single_file | self.expect_ip
        )

    @property
    def single_file_ok(self) -> bool:
        return self.single_file_rules == self.expect_single_file

    @property
    def dynamic_ok(self) -> bool:
        return self.dynamic_rules == self.expect_dynamic

    @property
    def lift_is_load_bearing(self) -> bool:
        """The whole-program rules that per-file mode provably missed."""
        return bool(self.expect_ip - self.single_file_rules)

    @property
    def confirmed(self) -> bool:
        """Static race dynamically confirmed (true positive)."""
        return (
            not self.known_false_positive
            and "PDC101" in self.whole_program_rules
            and "PDC301" in self.dynamic_rules
        )

    @property
    def exonerated(self) -> bool:
        """Static race the dynamic happens-before proved ordered."""
        return (
            self.known_false_positive
            and "PDC101" in self.whole_program_rules
            and "PDC301" not in self.dynamic_rules
        )

    @property
    def ok(self) -> bool:
        return (
            self.whole_program_ok
            and self.single_file_ok
            and self.dynamic_ok
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "expect_ip": sorted(self.expect_ip),
            "expect_single_file": sorted(self.expect_single_file),
            "expect_dynamic": sorted(self.expect_dynamic),
            "known_false_positive": self.known_false_positive,
            "whole_program_rules": sorted(self.whole_program_rules),
            "single_file_rules": sorted(self.single_file_rules),
            "dynamic_rules": sorted(self.dynamic_rules),
            "whole_program_ok": self.whole_program_ok,
            "single_file_ok": self.single_file_ok,
            "dynamic_ok": self.dynamic_ok,
            "confirmed": self.confirmed,
            "exonerated": self.exonerated,
            "ok": self.ok,
        }


@dataclasses.dataclass
class IpCrossReport:
    """Every multi-file fixture's verdict, plus the corpus-level gates."""

    verdicts: List[ProgramVerdict]

    @property
    def all_ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def confirmed(self) -> List[str]:
        return [v.name for v in self.verdicts if v.confirmed]

    @property
    def exonerated(self) -> List[str]:
        return [v.name for v in self.verdicts if v.exonerated]

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdicts": [v.to_dict() for v in self.verdicts],
            "confirmed": self.confirmed,
            "exonerated": self.exonerated,
            "all_ok": self.all_ok,
        }


def _judge(fix: MultiFileFixture) -> ProgramVerdict:
    with tempfile.TemporaryDirectory(prefix="pdc-ip-crossval-") as td:
        for filename, source in fix.files:
            with open(
                os.path.join(td, filename), "w", encoding="utf-8"
            ) as fh:
                fh.write(source)
        per_file = AnalysisEngine(LintPass()).run_paths([td])
        whole = WholeProgramEngine(LintPass()).run_paths([td])
    from repro.sanitizers.runner import run_program

    run = run_program(
        fix.modules(), fix.entry_module, entry=fix.dynamic_entry
    )
    return ProgramVerdict(
        name=fix.name,
        expect_ip=fix.expect_ip_rules,
        expect_single_file=fix.expect_single_file,
        expect_dynamic=fix.expect_dynamic,
        known_false_positive=fix.known_false_positive,
        whole_program_rules=frozenset(
            f.rule for f in whole.findings
        ),
        single_file_rules=frozenset(
            f.rule for f in per_file.findings
        ),
        dynamic_rules=frozenset(run.rules),
    )


def cross_validate_ip() -> IpCrossReport:
    """Judge every multi-file fixture three ways."""
    return IpCrossReport(
        verdicts=[_judge(fix) for fix in all_multifile_fixtures()]
    )


def _cell(rules: FrozenSet[str]) -> str:
    return ",".join(sorted(rules)) or "-"


def render_ip_crossval_text(report: IpCrossReport) -> str:
    lines = [
        "whole-program cross-validation "
        "(per-file vs --whole-program vs sanitizer)",
        "",
        f"{'fixture':<24} {'per-file':<10} {'whole-prog':<12} "
        f"{'dynamic':<10} verdict",
    ]
    for v in report.verdicts:
        if not v.ok:
            verdict = "MISMATCH"
        elif v.exonerated:
            verdict = "ok (exonerated)"
        elif v.confirmed:
            verdict = "ok (confirmed)"
        else:
            verdict = "ok"
        lines.append(
            f"{v.name:<24} {_cell(v.single_file_rules):<10} "
            f"{_cell(v.whole_program_rules):<12} "
            f"{_cell(v.dynamic_rules):<10} {verdict}"
        )
    lines += [
        "",
        f"confirmed: {', '.join(report.confirmed) or 'none'}",
        f"exonerated: {', '.join(report.exonerated) or 'none'}",
        f"all ok: {report.all_ok}",
    ]
    return "\n".join(lines)


def run_ip_crossval_cli(fmt: str) -> int:
    """``pdc-lint --whole-program --crossval``: 0 iff every gate holds."""
    report = cross_validate_ip()
    if fmt == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_ip_crossval_text(report))
    return 0 if report.all_ok else 1

"""The two-phase whole-program engine.

Phase 1 is the existing per-file :class:`AnalysisEngine` run, untouched
— same findings cache, same byte-identical cold/warm/parallel output.
Phase 2 bolts on behind it:

1. **Summarize** — every readable planned file gets a
   :class:`ModuleSummary`, keyed by *content digest* in the
   :class:`SummaryCache`; an unchanged file is never re-summarized.
   Misses fan out across the same process pool the engine uses.
2. **Link + judge** — summaries link into a :class:`ProgramIndex`;
   each import-graph SCC's cone is analyzed (or replayed from cache
   under its cone digest) and its findings merged into the report.

Invalidation is dependency-shaped by construction: editing one file
changes one content digest, which re-summarizes exactly that file and
changes exactly the digests of the cones containing it — every other
cone replays from cache.  Telemetry lands under ``analysis.ip.*`` in
the shared registry (summary hits/misses, SCC counts, cones analyzed),
so ``--stats`` shows both phases side by side.

Global dedup keeps output stable as cones overlap: iterating SCCs in
dependency-first order, the first cone to claim a finding's key wins,
and whole-program findings that collide with a phase-1 anchor
``(path, line, rule)`` are dropped — the per-file finding already says
it.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine.cache import content_digest
from repro.analysis.engine.core import AnalysisEngine, expand_paths
from repro.analysis.engine.outcome import EngineReport, WorkUnit
from repro.analysis.engine.passes import AnalyzerPass
from repro.analysis.ip.analyzer import IP_VERSION, ConeResult, analyze_cone
from repro.analysis.ip.callgraph import ProgramIndex
from repro.analysis.ip.summaries import (
    ModuleSummary,
    summarize_chunk,
    summarize_module,
)
from repro.runtime.metrics import MetricRegistry

__all__ = ["WholeProgramEngine", "cone_digest"]


def cone_digest(members: Sequence[Tuple[str, str, str]]) -> str:
    """Digest of one cone: a pure function of its members'
    ``(module name, path, content digest)`` tuples and the IP version."""
    h = hashlib.sha256()
    h.update(IP_VERSION.encode("utf-8"))
    for name, path, digest in sorted(members):
        for part in (name, path, digest):
            h.update(b"\x00")
            h.update(part.encode("utf-8"))
    return h.hexdigest()


class WholeProgramEngine:
    """Per-file engine + summary phase + cone phase, one report out."""

    prefix = "analysis.ip"

    def __init__(
        self,
        pass_: AnalyzerPass,
        cache: Optional[object] = None,
        summary_cache: Optional[object] = None,
        jobs: int = 1,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.engine = AnalysisEngine(
            pass_, cache=cache, jobs=jobs, registry=self.registry
        )
        self.summary_cache = summary_cache
        self.jobs = max(1, int(jobs))

    # -- metrics -----------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(f"{self.prefix}.{name}").inc(amount)

    def stats(self) -> Dict[str, object]:
        """Phase-1 engine metrics plus the ``analysis.ip.*`` subtree."""
        merged = dict(self.engine.stats())
        merged.update(self.registry.snapshot(self.prefix))
        return merged

    # -- running -----------------------------------------------------------
    def run_paths(self, paths: Sequence[str]) -> EngineReport:
        units, pre_errors = expand_paths(paths)
        return self.run(units, pre_errors)

    def run(
        self, units: Sequence[WorkUnit], pre_errors: Sequence[str] = ()
    ) -> EngineReport:
        report = self.engine.run(units, pre_errors)
        return self.finalize(units, report)

    # -- phase 2 -----------------------------------------------------------
    def finalize(
        self, units: Sequence[WorkUnit], report: EngineReport
    ) -> EngineReport:
        """Run the whole-program phase over ``units`` and fold its
        findings into ``report``.  Also the watcher's ``post`` hook —
        phase 1 there is served from the watcher's memory, phase 2
        re-links from cached summaries."""
        started = time.perf_counter()
        for name in (
            "summary.hits",
            "summary.misses",
            "summary.analyzed",
            "scc.hits",
            "scc.analyzed",
            "findings",
            "suppressed",
        ):
            self._count(name, 0)

        summaries, digests = self._summarize_phase(units)
        index = ProgramIndex(summaries)
        self.registry.gauge(f"{self.prefix}.modules").set(len(summaries))
        self.registry.gauge(f"{self.prefix}.scc.count").set(
            len(index.sccs())
        )

        phase1_anchors = {
            (f.path, f.line, f.rule) for f in report.findings
        }
        seen_keys: Set[Tuple[str, ...]] = set()
        kept = []
        ip_suppressed = 0
        for i in range(len(index.sccs())):
            result = self._cone_result(index, i, digests)
            for entry in result.entries:
                if entry.key in seen_keys:
                    continue
                seen_keys.add(entry.key)
                f = entry.finding
                if (f.path, f.line, f.rule) in phase1_anchors:
                    continue
                if entry.suppressed:
                    ip_suppressed += 1
                else:
                    kept.append(f)

        self._count("findings", len(kept))
        self._count("suppressed", ip_suppressed)
        for f in kept:
            self.engine._count(f"rule.{f.rule}")
        self.engine._count("findings.total", len(kept))
        self.engine._count("suppressed", ip_suppressed)
        self.registry.histogram(f"{self.prefix}.wall_seconds").observe(
            time.perf_counter() - started
        )
        return EngineReport(
            findings=sorted(report.findings + kept),
            files=report.files,
            suppressed=report.suppressed + ip_suppressed,
            errors=report.errors,
            outcomes=report.outcomes,
            units=report.units,
        )

    def _summarize_phase(
        self, units: Sequence[WorkUnit]
    ) -> Tuple[Dict[str, ModuleSummary], Dict[str, str]]:
        """Load every readable unit, serve summaries from the cache,
        summarize the misses (in the pool when it pays)."""
        summaries: Dict[str, ModuleSummary] = {}
        digests: Dict[str, str] = {}
        misses: List[Tuple[str, bytes, str]] = []  # path, data, digest
        queued: Dict[str, int] = {}  # digest -> index into misses
        dups: List[Tuple[str, str]] = []  # path, digest
        for unit in units:
            try:
                data = self.engine.pass_.load(unit)
            except Exception:  # noqa: BLE001 - phase 1 reported the error
                continue
            if unit.key in digests:
                continue
            digest = content_digest(data, "")
            digests[unit.key] = digest
            if self.summary_cache is not None:
                hit = self.summary_cache.get_summary(digest, unit.key)
                if hit is not None:
                    summaries[unit.key] = hit
                    self._count("summary.hits")
                    continue
                self._count("summary.misses")
            if digest in queued:
                # Identical bytes planned twice: summarize once, rebase.
                dups.append((unit.key, digest))
                continue
            queued[digest] = len(misses)
            misses.append((unit.key, data, digest))

        new = self._summarize(misses)
        for (path, _, digest), summary in zip(misses, new):
            summaries[path] = summary
            if self.summary_cache is not None:
                self.summary_cache.put_summary(digest, summary)
        for path, digest in dups:
            twin = summaries[misses[queued[digest]][0]]
            copy = ModuleSummary.from_wire(twin.to_wire())
            copy.path = path
            summaries[path] = copy
        self._count("summary.analyzed", len(misses))
        return summaries, digests

    def _summarize(
        self, misses: Sequence[Tuple[str, bytes, str]]
    ) -> List[ModuleSummary]:
        if self.jobs > 1 and len(misses) > 1:
            import concurrent.futures

            per_chunk = max(1, len(misses) // (self.jobs * 4) or 1)
            chunks = [
                [(p, d) for p, d, _ in misses[i : i + per_chunk]]
                for i in range(0, len(misses), per_chunk)
            ]
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs
            ) as pool:
                wires = [
                    w
                    for chunk in pool.map(summarize_chunk, chunks)
                    for w in chunk
                ]
            return [ModuleSummary.from_wire(w) for w in wires]
        out: List[ModuleSummary] = []
        for path, data, _ in misses:
            try:
                out.append(
                    summarize_module(path, data.decode("utf-8"))
                )
            except (SyntaxError, UnicodeDecodeError):
                out.append(ModuleSummary.empty(path))
        return out

    def _cone_result(
        self, index: ProgramIndex, scc_index: int, digests: Dict[str, str]
    ) -> ConeResult:
        members = [
            (index.module_name[p], p, digests.get(p, ""))
            for p in index.cone(scc_index)
        ]
        digest = cone_digest(members)
        if self.summary_cache is not None:
            cached = self.summary_cache.get_cone(digest)
            if cached is not None:
                result = ConeResult.from_wire(cached)
                if result.version == IP_VERSION:
                    self._count("scc.hits")
                    return result
        result = analyze_cone(index, scc_index)
        self._count("scc.analyzed")
        if self.summary_cache is not None:
            self.summary_cache.put_cone(digest, result.to_wire())
        return result

"""Per-module summaries: everything whole-program analysis needs.

A :class:`ModuleSummary` is the interprocedural analog of a compiler's
``.o`` file — one module's facts, extracted once, linked many times:

- every access to a shared-state candidate (module globals, ``self.``
  attributes, *and* ``other_module.name`` attribute accesses) with the
  lockset held at the site;
- every call site with the lockset held around it (the edges the
  entry-lockset fixpoint propagates over);
- thread spawn sites with alias-resolved dotted targets;
- lock acquisition sites with their held-before sets (lock-order edges);
- blocking/join call sites (the leaves of transitive PDC206/PDC209);
- locks held at function exit (leaked ``acquire()``s);
- the module's suppression table, so a comment at *either* endpoint of
  a cross-module finding can silence it.

Lock names are stored **import-resolved**: a ``with ss.lock_a:`` after
``import shared_state as ss`` is recorded as ``shared_state.lock_a``.
Names a module merely *uses* (defined elsewhere) are registered as
*candidate* locks so the per-function lockset dataflow tracks them; the
linker later confirms a candidate only if the resolved module really
defines that name as a lock, and drops the rest.

Summaries are versioned, picklable/JSON-able, and content-hash-keyed in
the :class:`~repro.analysis.ip.cache.SummaryCache` — a file whose bytes
did not change is never re-summarized.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.analyzer import ModuleContext
from repro.analysis.lockmodel import (
    LockInfo,
    LockModel,
    dotted_name,
    iter_statements,
    own_nodes,
)
from repro.analysis.races import collect_accesses
from repro.analysis.report import parse_suppressions

__all__ = [
    "SUMMARY_VERSION",
    "GlobalAccess",
    "CallSite",
    "SpawnSummary",
    "BlockingSite",
    "AcquisitionSite",
    "FunctionSummary",
    "ModuleSummary",
    "summarize_module",
]

#: Bumped when the summary schema or extraction semantics change; part
#: of the summary-cache scope, so stale summaries can never be linked.
SUMMARY_VERSION = "1"


@dataclasses.dataclass(frozen=True)
class GlobalAccess:
    """One syntactic access to a shared-state candidate."""

    #: "global" | "nonlocal" | "attr" | "modattr"
    kind: str
    #: ("counter",) for globals, (class, attr) for attrs, the resolved
    #: dotted parts ("shared_state", "counter") for modattrs.
    parts: Tuple[str, ...]
    write: bool
    func: str
    lineno: int
    lockset: Tuple[str, ...]
    in_init: bool


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call with the lockset held around it."""

    #: Resolved dotted name ("shared_state.bump") or the simple name of
    #: a same-module function ("helper").
    callee: str
    func: str
    lineno: int
    lockset: Tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class SpawnSummary:
    """One thread-creation site with an alias-resolved target."""

    target: str
    func: str
    lineno: int
    in_loop: bool


@dataclasses.dataclass(frozen=True)
class BlockingSite:
    """One call that blocks on the outside world (or joins a thread)."""

    label: str
    #: "blocking" (PDC209 shape) | "join" (PDC206 shape)
    kind: str
    func: str
    lineno: int
    lockset: Tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class AcquisitionSite:
    """One lock acquisition with the locks already held before it."""

    lock: str
    func: str
    lineno: int
    held_before: Tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class FunctionSummary:
    """One function's interface facts."""

    name: str
    qualname: str
    owner_class: Optional[str]
    lineno: int
    is_init: bool
    #: Locks certainly still held when the function returns.
    exit_held: Tuple[str, ...]


@dataclasses.dataclass
class ModuleSummary:
    """Everything whole-program analysis knows about one module."""

    path: str
    imports: Dict[str, str]
    #: Module globals (module-level assigns plus ``global`` decls).
    module_globals: Tuple[str, ...]
    #: First module-level assignment line per global (declaration site).
    global_lines: Dict[str, int]
    #: Locks the module *defines*: name -> kind.
    locks: Dict[str, str]
    functions: Tuple[FunctionSummary, ...]
    accesses: Tuple[GlobalAccess, ...]
    calls: Tuple[CallSite, ...]
    spawns: Tuple[SpawnSummary, ...]
    blocking: Tuple[BlockingSite, ...]
    acquisitions: Tuple[AcquisitionSite, ...]
    #: Suppression table: line -> rule ids (None == all rules).
    suppressions: Dict[int, Optional[Tuple[str, ...]]]
    version: str = SUMMARY_VERSION

    # -- wire format -------------------------------------------------------
    def to_wire(self) -> Dict[str, object]:
        """JSON-ready form (the summary cache stores this)."""
        return {
            "version": self.version,
            "path": self.path,
            "imports": dict(self.imports),
            "module_globals": list(self.module_globals),
            "global_lines": {k: v for k, v in self.global_lines.items()},
            "locks": dict(self.locks),
            "functions": [dataclasses.asdict(f) for f in self.functions],
            "accesses": [dataclasses.asdict(a) for a in self.accesses],
            "calls": [dataclasses.asdict(c) for c in self.calls],
            "spawns": [dataclasses.asdict(s) for s in self.spawns],
            "blocking": [dataclasses.asdict(b) for b in self.blocking],
            "acquisitions": [
                dataclasses.asdict(a) for a in self.acquisitions
            ],
            "suppressions": {
                str(line): (None if rules is None else list(rules))
                for line, rules in self.suppressions.items()
            },
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "ModuleSummary":
        """Inverse of :meth:`to_wire`."""

        def _tup(row: Dict[str, object], field: str) -> Dict[str, object]:
            row = dict(row)
            for key in ("parts", "lockset", "held_before", "exit_held"):
                if key in row:
                    row[key] = tuple(row[key])  # type: ignore[arg-type]
            return row

        return cls(
            path=str(payload["path"]),
            imports={str(k): str(v) for k, v in payload["imports"].items()},  # type: ignore[union-attr]
            module_globals=tuple(payload["module_globals"]),  # type: ignore[arg-type]
            global_lines={
                str(k): int(v)  # type: ignore[arg-type]
                for k, v in payload["global_lines"].items()  # type: ignore[union-attr]
            },
            locks={str(k): str(v) for k, v in payload["locks"].items()},  # type: ignore[union-attr]
            functions=tuple(
                FunctionSummary(**_tup(f, "functions"))  # type: ignore[arg-type]
                for f in payload["functions"]  # type: ignore[union-attr]
            ),
            accesses=tuple(
                GlobalAccess(**_tup(a, "accesses"))  # type: ignore[arg-type]
                for a in payload["accesses"]  # type: ignore[union-attr]
            ),
            calls=tuple(
                CallSite(**_tup(c, "calls"))  # type: ignore[arg-type]
                for c in payload["calls"]  # type: ignore[union-attr]
            ),
            spawns=tuple(
                SpawnSummary(**s) for s in payload["spawns"]  # type: ignore[union-attr]
            ),
            blocking=tuple(
                BlockingSite(**_tup(b, "blocking"))  # type: ignore[arg-type]
                for b in payload["blocking"]  # type: ignore[union-attr]
            ),
            acquisitions=tuple(
                AcquisitionSite(**_tup(a, "acquisitions"))  # type: ignore[arg-type]
                for a in payload["acquisitions"]  # type: ignore[union-attr]
            ),
            suppressions={
                int(line): (None if rules is None else tuple(rules))
                for line, rules in payload["suppressions"].items()  # type: ignore[union-attr]
            },
            version=str(payload.get("version", SUMMARY_VERSION)),
        )

    @classmethod
    def empty(cls, path: str) -> "ModuleSummary":
        """The summary of a module that contributes nothing (syntax
        errors: phase 1 already reported them)."""
        return cls(
            path=path,
            imports={},
            module_globals=(),
            global_lines={},
            locks={},
            functions=(),
            accesses=(),
            calls=(),
            spawns=(),
            blocking=(),
            acquisitions=(),
            suppressions={},
        )


# -- candidate locks -------------------------------------------------------
def _candidate_external_locks(
    tree: ast.Module, imports: Dict[str, str]
) -> Set[str]:
    """Raw dotted names used as locks whose head is an imported alias.

    ``with ss.lock_a:`` or ``ss.lock_a.acquire()`` in a module that only
    *imports* ``shared_state`` — the defining module knows it is a lock;
    this one merely uses it.  Registering it as a candidate lets the
    lockset dataflow track it; the linker keeps it only if the resolved
    module really defines a lock by that name.
    """
    candidates: Set[str] = set()

    def note(expr: ast.expr) -> None:
        name = dotted_name(expr)
        if name is not None and name.partition(".")[0] in imports:
            candidates.add(name)

    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                note(item.context_expr)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("acquire", "release")
        ):
            note(node.func.value)
    return candidates


class _AugmentedLockModel(LockModel):
    """A lock model that also tracks imported lock *candidates*."""

    def __init__(self, tree: ast.Module, candidates: Set[str]) -> None:
        super().__init__(tree)
        for name in sorted(candidates):
            if name not in self.locks:
                self.locks[name] = LockInfo(
                    name=name, kind="external", lineno=0
                )


class _IpModuleContext(ModuleContext):
    """A module context whose lock model sees imported lock candidates."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        super().__init__(path, source, tree)
        candidates = _candidate_external_locks(tree, self.imports)
        if candidates:
            self.lockmodel = _AugmentedLockModel(tree, candidates)


# -- extraction ------------------------------------------------------------
def _canon(name: str, imports: Dict[str, str]) -> str:
    """Resolve a raw dotted name's head through the import aliases."""
    head, _, rest = name.partition(".")
    canonical = imports.get(head, head)
    return f"{canonical}.{rest}" if rest else canonical


def _canon_set(
    names: FrozenSet[str], imports: Dict[str, str]
) -> Tuple[str, ...]:
    return tuple(sorted(_canon(n, imports) for n in names))


def _module_global_lines(tree: ast.Module) -> Dict[str, int]:
    lines: Dict[str, int] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for t in targets:
            names = (
                [t.id]
                if isinstance(t, ast.Name)
                else [
                    e.id
                    for e in getattr(t, "elts", [])
                    if isinstance(e, ast.Name)
                ]
            )
            for name in names:
                lines.setdefault(name, stmt.lineno)
    return lines


def _blocking_label(ctx: ModuleContext, call: ast.Call) -> Optional[str]:
    from repro.analysis.rules import BlockingCallUnderLockRule

    resolved = ctx.resolve_call(call)
    if resolved in BlockingCallUnderLockRule._BLOCKING_CALLS:
        return f"{resolved}()"
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in BlockingCallUnderLockRule._BLOCKING_METHODS
    ):
        return f".{call.func.attr}()"
    return None


def _scan_function_sites(
    ctx: ModuleContext,
    summary_calls: List[CallSite],
    summary_blocking: List[BlockingSite],
    summary_modattr: List[GlobalAccess],
) -> None:
    """One walk per function: calls, blocking sites, modattr accesses."""
    from repro.analysis.rules import (
        JoinUnderLockRule,
        _PRIMITIVE_METHODS,
    )

    for info in ctx.functions:
        locksets = ctx.locksets(info.node)
        for stmt in iter_statements(info.node):
            held = locksets.get(id(stmt), frozenset())
            lockset = _canon_set(held, ctx.imports)
            nodes = list(own_nodes(stmt))
            callee_ids = {
                id(c.func) for c in nodes if isinstance(c, ast.Call)
            }
            # Only the outermost attribute of a chain is a data access;
            # inner values of *call* attributes still count (the receiver
            # of `shared.items.append(x)` is read).
            attr_value_ids = {
                id(n.value)
                for n in nodes
                if isinstance(n, ast.Attribute) and id(n) not in callee_ids
            }
            for node in nodes:
                if isinstance(node, ast.Call):
                    callee = ctx.resolve_call(node)
                    if callee is None:
                        simple = ctx._callee_name(node)
                        callee = simple
                    if callee is not None:
                        summary_calls.append(
                            CallSite(
                                callee=callee,
                                func=info.name,
                                lineno=node.lineno,
                                lockset=lockset,
                            )
                        )
                    if info.name not in _PRIMITIVE_METHODS:
                        label = _blocking_label(ctx, node)
                        kind = None
                        if label is not None:
                            kind = "blocking"
                        elif JoinUnderLockRule._is_thread_join(node):
                            label, kind = ".join()", "join"
                        if kind is not None:
                            summary_blocking.append(
                                BlockingSite(
                                    label=label,
                                    kind=kind,
                                    func=info.name,
                                    lineno=node.lineno,
                                    lockset=lockset,
                                )
                            )
                elif (
                    isinstance(node, ast.Attribute)
                    and id(node) not in callee_ids
                    and id(node) not in attr_value_ids
                ):
                    raw = dotted_name(node)
                    if raw is None:
                        continue
                    head = raw.partition(".")[0]
                    if head not in ctx.imports:
                        continue
                    resolved = _canon(raw, ctx.imports)
                    summary_modattr.append(
                        GlobalAccess(
                            kind="modattr",
                            parts=tuple(resolved.split(".")),
                            write=isinstance(
                                node.ctx, (ast.Store, ast.Del)
                            ),
                            func=info.name,
                            lineno=node.lineno,
                            lockset=lockset,
                            in_init=info.is_init,
                        )
                    )


def summarize_module(path: str, source: str) -> ModuleSummary:
    """Extract one module's whole-program summary.

    Raises :class:`SyntaxError` for unparsable source — callers store an
    :meth:`ModuleSummary.empty` in that case (phase 1 already reported
    the error; the module simply contributes no whole-program facts).
    """
    tree = ast.parse(source, filename=path)
    ctx = _IpModuleContext(path, source, tree)
    imports = ctx.imports

    accesses: List[GlobalAccess] = []
    for var, accs in sorted(collect_accesses(ctx).items()):
        for a in accs:
            accesses.append(
                GlobalAccess(
                    kind=var[0],
                    parts=tuple(var[1:]),
                    write=a.write,
                    func=a.func,
                    lineno=a.lineno,
                    lockset=_canon_set(a.lockset, imports),
                    in_init=a.in_init,
                )
            )

    calls: List[CallSite] = []
    blocking: List[BlockingSite] = []
    _scan_function_sites(ctx, calls, blocking, accesses)

    acquisitions: List[AcquisitionSite] = []
    for info in ctx.functions:
        for acq in ctx.lockmodel.acquisitions(info.node):
            acquisitions.append(
                AcquisitionSite(
                    lock=_canon(acq.lock, imports),
                    func=info.name,
                    lineno=acq.lineno,
                    held_before=_canon_set(acq.held_before, imports),
                )
            )

    functions = tuple(
        FunctionSummary(
            name=info.name,
            qualname=info.qualname,
            owner_class=info.owner_class,
            lineno=info.lineno,
            is_init=info.is_init,
            exit_held=_canon_set(
                ctx.lockmodel.exit_lockset(info.node), imports
            ),
        )
        for info in ctx.functions
    )

    defined_locks = {
        name: lock.kind
        for name, lock in ctx.lockmodel.locks.items()
        if lock.kind != "external"
    }
    from repro.analysis.races import _module_globals

    global_lines = _module_global_lines(tree)
    module_globals = set(_module_globals(tree))
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            module_globals.update(node.names)

    return ModuleSummary(
        path=path,
        imports=dict(imports),
        module_globals=tuple(sorted(module_globals)),
        global_lines=global_lines,
        locks=defined_locks,
        functions=functions,
        accesses=tuple(accesses),
        calls=tuple(calls),
        spawns=tuple(
            SpawnSummary(
                target=s.dotted,
                func=s.func,
                lineno=s.lineno,
                in_loop=s.in_loop,
            )
            for s in ctx.spawn_sites()
        ),
        blocking=tuple(blocking),
        acquisitions=tuple(acquisitions),
        suppressions={
            line: (None if rules is None else tuple(sorted(rules)))
            for line, rules in parse_suppressions(source).items()
        },
    )


def summarize_chunk(
    items: Sequence[Tuple[str, bytes]]
) -> List[Dict[str, object]]:
    """Worker entry point: summarize a chunk of (path, bytes) units.

    Returns wire dicts; an unparsable module becomes an empty summary
    (its syntax error is phase 1's finding, not phase 2's).
    """
    out: List[Dict[str, object]] = []
    for path, data in items:
        try:
            summary = summarize_module(path, data.decode("utf-8"))
        except (SyntaxError, UnicodeDecodeError):
            summary = ModuleSummary.empty(path)
        out.append(summary.to_wire())
    return out

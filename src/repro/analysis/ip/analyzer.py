"""Cone analysis: the entry-lockset fixpoint and the whole-program rules.

One :func:`analyze_cone` call judges a single SCC's cone — the SCC plus
every module it transitively imports — using nothing but the member
summaries in the :class:`~repro.analysis.ip.callgraph.ProgramIndex`.
That purity is what makes cone results cacheable under the cone digest.

The fixpoint is context-insensitive: for every function we compute the
set of locks *certainly* held on entry as the intersection, over all
call sites that reach it, of (caller's entry set ∪ locks held around
the call).  Spawn targets and uncalled roots start with the empty set;
entries only shrink, so the iteration converges.  A site's *effective*
lockset is then its local lockset ∪ the enclosing function's entry set
— the quantity the lifted rules reason with:

- **PDC101** cross-module races: accesses to one module's global (or one
  class's attribute) gathered across the cone, judged Eraser-style with
  effective locksets, emitted only when the evidence spans ≥ 2 modules
  (single-module races are the per-file analyzer's findings).
- **PDC102** cross-module lock-order cycles: nesting edges from every
  acquisition's effective held-before set; cycles visible to some
  single file on its own are skipped.
- **PDC206/PDC209** transitively-blocking calls: a bottom-up "does this
  function eventually block/join" fixpoint, then a finding at every
  call edge whose effective lockset is non-empty.

Every finding carries a :class:`~repro.analysis.report.TraceStep` chain
(spawn site, call chain, access sites) and honors inline suppressions
at *either* endpoint — the anchor line or any traced line.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.analysis.ip.callgraph import ProgramIndex
from repro.analysis.report import Finding, Severity, TraceStep

__all__ = ["IP_VERSION", "ConeEntry", "ConeResult", "analyze_cone"]

#: Bumped when linking or rule semantics change; part of the cache scope.
IP_VERSION = "1"

#: A function's identity inside one cone: (module path, function name).
FuncId = Tuple[str, str]

#: Evidence chains longer than this are truncated (SARIF stays readable).
_MAX_TRACE = 8


@dataclasses.dataclass(frozen=True)
class ConeEntry:
    """One whole-program finding plus its global-dedup key."""

    key: Tuple[str, ...]
    finding: Finding
    suppressed: bool


@dataclasses.dataclass
class ConeResult:
    """Everything one cone's analysis produced (the cache payload)."""

    entries: List[ConeEntry]
    version: str = IP_VERSION

    def to_wire(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "entries": [
                {
                    "key": list(e.key),
                    "finding": e.finding.as_dict(),
                    "suppressed": e.suppressed,
                }
                for e in self.entries
            ],
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "ConeResult":
        return cls(
            version=str(payload.get("version", IP_VERSION)),
            entries=[
                ConeEntry(
                    key=tuple(row["key"]),  # type: ignore[index]
                    finding=Finding.from_dict(row["finding"]),  # type: ignore[index,arg-type]
                    suppressed=bool(row["suppressed"]),  # type: ignore[index]
                )
                for row in payload.get("entries", ())  # type: ignore[union-attr]
            ],
        )


def _locks_text(locks: FrozenSet[str]) -> str:
    return "{" + ", ".join(sorted(locks)) + "}" if locks else "no lock"


class _ConeAnalysis:
    """Working state for one cone.  Deterministic by construction: every
    iteration is over sorted paths/names, so two runs over the same
    summaries produce byte-identical results."""

    def __init__(self, index: ProgramIndex, scc_index: int) -> None:
        self.index = index
        self.paths: Tuple[str, ...] = index.cone(scc_index)
        self.cone: Set[str] = set(self.paths)
        self.mod: Dict[str, str] = {
            p: index.module_name[p] for p in self.paths
        }
        self._build_functions()
        self._build_edges()
        self._resolve_spawns()
        self._entry_fixpoint()
        self._concurrency_closure()

    # -- linking -----------------------------------------------------------
    def _build_functions(self) -> None:
        self.funcs: Dict[FuncId, object] = {}
        for p in self.paths:
            for f in self.index.summaries[p].functions:
                self.funcs.setdefault((p, f.name), f)

    def canon_lock(self, p: str, raw: str) -> Optional[str]:
        """One program-wide name per lock, or ``None`` for a *candidate*
        that linking proved is not a lock.  Unresolvable names are kept
        verbatim — both sides of an external lock spell it identically
        after import resolution, so intersections still work."""
        summary = self.index.summaries[p]
        if raw in summary.locks:
            return f"{self.mod[p]}.{raw}"
        if "." in raw:
            if raw.startswith("self."):
                return f"{self.mod[p]}.{raw}"
            hit = self.index.resolve_prefix(raw)
            if hit is not None and hit[0] in self.cone:
                target, rest = hit
                if (
                    len(rest) == 1
                    and rest[0] in self.index.summaries[target].locks
                ):
                    return f"{self.mod[target]}.{rest[0]}"
                return None
            return raw
        return f"{self.mod[p]}.{raw}"

    def _canon_set(self, p: str, raw: Sequence[str]) -> FrozenSet[str]:
        out = {self.canon_lock(p, name) for name in raw}
        out.discard(None)
        return frozenset(out)  # type: ignore[arg-type]

    def _resolve_func(self, p: str, name: str) -> Optional[FuncId]:
        """The function a call/spawn target names, if it is in the cone."""
        if name.startswith("self."):
            name = name[len("self.") :]
        if "." not in name:
            return (p, name) if (p, name) in self.funcs else None
        hit = self.index.resolve_prefix(name)
        if hit is None or hit[0] not in self.cone or len(hit[1]) != 1:
            return None
        fid = (hit[0], hit[1][0])
        return fid if fid in self.funcs else None

    def _build_edges(self) -> None:
        #: (caller, callee, site path, site line, site lockset)
        self.edges: List[
            Tuple[FuncId, FuncId, str, int, FrozenSet[str]]
        ] = []
        self.callers: Dict[
            FuncId, List[Tuple[FuncId, FrozenSet[str]]]
        ] = {}
        for p in self.paths:
            for site in self.index.summaries[p].calls:
                caller = (p, site.func)
                if caller not in self.funcs:
                    continue
                callee = self._resolve_func(p, site.callee)
                if callee is None or callee == caller:
                    continue
                lockset = self._canon_set(p, site.lockset)
                self.edges.append(
                    (caller, callee, p, site.lineno, lockset)
                )
                self.callers.setdefault(callee, []).append(
                    (caller, lockset)
                )

    def _resolve_spawns(self) -> None:
        #: target fid -> spawn site records (path, line, func, in_loop)
        self.spawns: Dict[FuncId, List[Tuple[str, int, str, bool]]] = {}
        for p in self.paths:
            for s in self.index.summaries[p].spawns:
                fid = self._resolve_func(p, s.target)
                if fid is None:
                    continue
                self.spawns.setdefault(fid, []).append(
                    (p, s.lineno, s.func, s.in_loop)
                )

    # -- entry-lockset fixpoint --------------------------------------------
    def _entry_fixpoint(self) -> None:
        roots = set(self.spawns)
        roots.update(f for f in self.funcs if f not in self.callers)
        entry: Dict[FuncId, Optional[FrozenSet[str]]] = {
            f: (frozenset() if f in roots else None) for f in self.funcs
        }
        ordered = sorted(self.funcs)
        changed = True
        while changed:
            changed = False
            for fid in ordered:
                if fid in roots:
                    continue
                new: Optional[FrozenSet[str]] = None
                for caller, lockset in self.callers.get(fid, ()):
                    held = entry[caller]
                    if held is None:
                        continue  # ⊤ is the meet identity
                    contrib = held | lockset
                    new = contrib if new is None else (new & contrib)
                if new is not None and new != entry[fid]:
                    entry[fid] = new
                    changed = True
        #: locks certainly held on entry; unreachable functions get ∅,
        #: matching the per-file analyzer's assumption.
        self.entry: Dict[FuncId, FrozenSet[str]] = {
            f: (held if held is not None else frozenset())
            for f, held in entry.items()
        }

    def effective(
        self, p: str, fid: FuncId, lockset: Sequence[str]
    ) -> FrozenSet[str]:
        """Site lockset ∪ the enclosing function's entry lockset."""
        return self._canon_set(p, lockset) | self.entry.get(
            fid, frozenset()
        )

    # -- concurrency closure -----------------------------------------------
    def _concurrency_closure(self) -> None:
        succs: Dict[FuncId, List[FuncId]] = {}
        for caller, callee, _, _, _ in self.edges:
            succs.setdefault(caller, []).append(callee)
        #: fid -> module paths of the spawn sites that make it concurrent.
        self.conc_modules: Dict[FuncId, Set[str]] = {}
        #: fid -> the first (sorted) spawn site proving concurrency.
        self.conc_step: Dict[FuncId, Tuple[str, int, str]] = {}
        self.multi: Dict[FuncId, bool] = {}
        worklist: List[FuncId] = []
        for fid in sorted(self.spawns):
            sites = sorted(self.spawns[fid])
            multi = len(sites) > 1 or any(s[3] for s in sites)
            p, line, _, _ = sites[0]
            self._absorb(
                fid, {s[0] for s in sites}, (p, line, fid[1]), multi
            )
            worklist.append(fid)
        while worklist:
            fid = worklist.pop()
            for succ in sorted(set(succs.get(fid, ()))):
                if self._absorb(
                    succ,
                    self.conc_modules[fid],
                    self.conc_step[fid],
                    self.multi[fid],
                ):
                    worklist.append(succ)

    def _absorb(
        self,
        fid: FuncId,
        modules: Set[str],
        step: Tuple[str, int, str],
        multi: bool,
    ) -> bool:
        changed = fid not in self.conc_modules
        if changed:
            self.conc_modules[fid] = set(modules)
            self.conc_step[fid] = step
            self.multi[fid] = multi
            return True
        if not modules <= self.conc_modules[fid]:
            self.conc_modules[fid] |= modules
            changed = True
        if step < self.conc_step[fid]:
            self.conc_step[fid] = step
            changed = True
        if multi and not self.multi[fid]:
            self.multi[fid] = True
            changed = True
        return changed

    # -- suppression endpoints ---------------------------------------------
    def suppressed_at(self, path: str, line: int, rule: str) -> bool:
        summary = self.index.summaries.get(path)
        if summary is None or line not in summary.suppressions:
            return False
        rules = summary.suppressions[line]
        return rules is None or rule in rules

    def _is_suppressed(self, finding: Finding) -> bool:
        """A suppression comment at *any* endpoint silences the finding:
        the anchor line or any line on the evidence chain."""
        if self.suppressed_at(finding.path, finding.line, finding.rule):
            return True
        return any(
            self.suppressed_at(step.path, step.line, finding.rule)
            for step in finding.trace
        )

    # -- PDC101: cross-module races ----------------------------------------
    def _race_entries(self) -> List[ConeEntry]:
        Rec = Tuple[str, str, bool, int, FrozenSet[str], bool, FuncId]
        groups: Dict[Tuple[str, ...], List[Rec]] = {}
        decl: Dict[Tuple[str, ...], Tuple[str, int]] = {}
        for p in self.paths:
            summary = self.index.summaries[p]
            for a in summary.accesses:
                if a.kind == "global":
                    target, var = p, a.parts[0]
                elif a.kind == "modattr":
                    hit = self.index.resolve_prefix(".".join(a.parts))
                    if (
                        hit is None
                        or hit[0] not in self.cone
                        or len(hit[1]) != 1
                    ):
                        continue
                    target, var = hit[0], hit[1][0]
                elif a.kind == "attr":
                    cls, attr = a.parts
                    key = ("attr", self.mod[p], cls, attr)
                    fid = (p, a.func)
                    groups.setdefault(key, []).append(
                        (
                            p,
                            a.func,
                            a.write,
                            a.lineno,
                            self.effective(p, fid, a.lockset),
                            a.in_init,
                            fid,
                        )
                    )
                    continue
                else:
                    continue
                owner = self.index.summaries[target]
                if (
                    var not in owner.module_globals
                    or var in owner.locks
                ):
                    continue
                key = ("global", self.mod[target], var)
                decl.setdefault(
                    key, (target, owner.global_lines.get(var, 1))
                )
                fid = (p, a.func)
                groups.setdefault(key, []).append(
                    (
                        p,
                        a.func,
                        a.write,
                        a.lineno,
                        self.effective(p, fid, a.lockset),
                        a.in_init,
                        fid,
                    )
                )

        entries: List[ConeEntry] = []
        for key in sorted(groups):
            recs = groups[key]
            live = [
                r
                for r in recs
                if not r[5] and r[6] in self.conc_modules
            ]
            if not live or not any(r[2] for r in live):
                continue
            fids = sorted({r[6] for r in live})
            if len(fids) < 2 and not any(
                self.multi.get(f, False) for f in fids
            ):
                continue
            held = live[0][4]
            for r in live[1:]:
                held &= r[4]
            if held:
                continue
            evidence = {r[0] for r in live}
            for f in fids:
                evidence |= self.conc_modules[f]
            if key[0] == "global":
                evidence.add(decl[key][0])
            if len(evidence) < 2:
                continue
            display = (
                f"{key[1]}.{key[2]}"
                if key[0] == "global"
                else f"{key[1]}.{key[2]}.{key[3]}"
            )
            entries.append(
                self._race_entry(
                    key, display, live, fids, decl.get(key), len(evidence)
                )
            )
        return entries

    def _race_entry(
        self,
        key: Tuple[str, ...],
        display: str,
        live: List[Tuple],
        fids: List[FuncId],
        decl: Optional[Tuple[str, int]],
        modules: int,
    ) -> ConeEntry:
        ordered = sorted(live, key=lambda r: (r[0], r[3], not r[2]))
        writes = [r for r in ordered if r[2]]
        anchor = writes[0] if writes else ordered[0]
        steps: List[TraceStep] = []
        if decl is not None:
            steps.append(
                TraceStep(
                    path=decl[0],
                    line=decl[1],
                    note=f"`{display}` defined here",
                )
            )
        spawn_steps = sorted(
            {self.conc_step[f] for f in fids if f in self.conc_step}
        )
        for p, line, name in spawn_steps[:2]:
            steps.append(
                TraceStep(
                    path=p,
                    line=line,
                    note=f"`{name}` spawned as a thread here",
                )
            )
        for r in ordered:
            if len(steps) >= _MAX_TRACE:
                break
            verb = "write" if r[2] else "read"
            steps.append(
                TraceStep(
                    path=r[0],
                    line=r[3],
                    note=(
                        f"{verb} in `{self.mod[r[0]]}.{r[1]}` under "
                        f"{_locks_text(r[4])}"
                    ),
                )
            )
        funcs = ", ".join(
            sorted({f"{self.mod[f[0]]}.{f[1]}" for f in fids})
        )
        finding = Finding(
            path=anchor[0],
            line=anchor[3],
            col=0,
            rule="PDC101",
            message=(
                f"potential cross-module data race on `{display}`: "
                f"written from concurrent code with an empty common "
                f"lockset, evidence spanning {modules} modules "
                f"(accessed in: {funcs}); hold one common lock at every "
                "access"
            ),
            severity=Severity.ERROR,
            symbol=display,
            trace=tuple(steps),
        )
        return ConeEntry(
            key=("PDC101",) + key,
            finding=finding,
            suppressed=self._is_suppressed(finding),
        )

    # -- PDC102: cross-module lock-order cycles ----------------------------
    def _lockorder_entries(self) -> List[ConeEntry]:
        Site = Tuple[str, int, str, bool]  # path, line, func, local
        sites: Dict[Tuple[str, str], List[Site]] = {}
        for p in self.paths:
            # Locks this module *defines*, canonically: the only names
            # the per-file lock model can witness an order edge over.
            own = {
                f"{self.mod[p]}.{raw}"
                for raw in self.index.summaries[p].locks
            }
            for acq in self.index.summaries[p].acquisitions:
                inner = self.canon_lock(p, acq.lock)
                if inner is None:
                    continue
                local = self._canon_set(p, acq.held_before)
                held = local | self.entry.get(
                    (p, acq.func), frozenset()
                )
                for outer in sorted(held):
                    if outer == inner:
                        continue
                    sites.setdefault((outer, inner), []).append(
                        (
                            p,
                            acq.lineno,
                            acq.func,
                            outer in local
                            and outer in own
                            and inner in own,
                        )
                    )
        graph = nx.DiGraph()
        for outer, inner in sites:
            graph.add_edge(outer, inner)
        entries: List[ConeEntry] = []
        seen: Set[Tuple[str, ...]] = set()
        for cycle in sorted(
            nx.simple_cycles(graph), key=lambda c: (len(c), sorted(c))
        ):
            pivot = cycle.index(min(cycle))
            canon = tuple(cycle[pivot:] + cycle[:pivot])
            if canon in seen:
                continue
            seen.add(canon)
            edge_sites = [
                sorted(sites[(canon[i], canon[(i + 1) % len(canon)])])[0]
                for i in range(len(canon))
            ]
            # A file that locally witnesses *every* edge would report
            # this cycle in per-file mode: leave it to PDC102 there.
            local_witness: Optional[Set[str]] = None
            for i in range(len(canon)):
                pair = (canon[i], canon[(i + 1) % len(canon)])
                witnesses = {s[0] for s in sites[pair] if s[3]}
                local_witness = (
                    witnesses
                    if local_witness is None
                    else local_witness & witnesses
                )
            if local_witness:
                continue
            anchor = min(edge_sites, key=lambda s: (s[0], s[1]))
            order = " -> ".join(canon + (canon[0],))
            steps = tuple(
                TraceStep(
                    path=s[0],
                    line=s[1],
                    note=(
                        f"`{self.mod[s[0]]}.{s[2]}` acquires "
                        f"`{canon[(i + 1) % len(canon)]}` while holding "
                        f"`{canon[i]}`"
                    ),
                )
                for i, s in enumerate(edge_sites)
            )
            finding = Finding(
                path=anchor[0],
                line=anchor[1],
                col=0,
                rule="PDC102",
                message=(
                    f"cross-module lock-order cycle {order}: some "
                    "interleaving of the nesting sites deadlocks; "
                    "acquire these locks in one global order everywhere"
                ),
                severity=Severity.ERROR,
                symbol=order,
                trace=steps,
            )
            entries.append(
                ConeEntry(
                    key=("PDC102",) + canon,
                    finding=finding,
                    suppressed=self._is_suppressed(finding),
                )
            )
        return entries

    # -- PDC206/PDC209: transitively-blocking calls ------------------------
    def _blocking_entries(self) -> List[ConeEntry]:
        # binfo[f]: (depth, kind, leaf path, leaf line, label, next hop)
        Info = Tuple[
            int, str, str, int, str, Optional[Tuple[FuncId, str, int]]
        ]
        binfo: Dict[FuncId, Info] = {}
        for p in self.paths:
            for b in self.index.summaries[p].blocking:
                fid = (p, b.func)
                if fid not in self.funcs:
                    continue
                cand: Info = (0, b.kind, p, b.lineno, b.label, None)
                if fid not in binfo or cand < binfo[fid]:
                    binfo[fid] = cand
        ordered_edges = sorted(
            self.edges, key=lambda e: (e[0], e[2], e[3], e[1])
        )
        changed = True
        while changed:
            changed = False
            for caller, callee, p, line, _ in ordered_edges:
                info = binfo.get(callee)
                if info is None:
                    continue
                cand = (
                    info[0] + 1,
                    info[1],
                    info[2],
                    info[3],
                    info[4],
                    (callee, p, line),
                )
                if caller not in binfo or cand < binfo[caller]:
                    binfo[caller] = cand
                    changed = True

        entries: List[ConeEntry] = []
        for caller, callee, p, line, lockset in ordered_edges:
            info = binfo.get(callee)
            if info is None:
                continue
            held = self.effective(p, caller, ()) | lockset
            if not held:
                continue
            depth, kind, leaf_path, leaf_line, label, _ = info
            rule = "PDC206" if kind == "join" else "PDC209"
            callee_name = f"{self.mod[callee[0]]}.{callee[1]}"
            steps: List[TraceStep] = [
                TraceStep(
                    path=p,
                    line=line,
                    note=(
                        f"`{self.mod[p]}.{caller[1]}` calls "
                        f"`{callee_name}` holding {_locks_text(held)}"
                    ),
                )
            ]
            hop = callee
            hop_info: Optional[Info] = info
            while (
                hop_info is not None
                and hop_info[5] is not None
                and len(steps) < _MAX_TRACE - 1
            ):
                nxt, via_path, via_line = hop_info[5]
                steps.append(
                    TraceStep(
                        path=via_path,
                        line=via_line,
                        note=(
                            f"`{self.mod[hop[0]]}.{hop[1]}` calls "
                            f"`{self.mod[nxt[0]]}.{nxt[1]}` here"
                        ),
                    )
                )
                hop, hop_info = nxt, binfo.get(nxt)
            steps.append(
                TraceStep(
                    path=leaf_path,
                    line=leaf_line,
                    note=(
                        "joins a thread here"
                        if kind == "join"
                        else f"blocking call {label} here"
                    ),
                )
            )
            what = (
                "joins a thread"
                if kind == "join"
                else f"makes a blocking call ({label})"
            )
            finding = Finding(
                path=p,
                line=line,
                col=0,
                rule=rule,
                message=(
                    f"`{callee_name}` transitively {what} while "
                    f"{_locks_text(held)} is held; move the blocking "
                    "work outside the critical section"
                ),
                severity=Severity.WARNING,
                symbol=callee_name,
                trace=tuple(steps),
            )
            entries.append(
                ConeEntry(
                    key=(rule, p, str(line), callee_name),
                    finding=finding,
                    suppressed=self._is_suppressed(finding),
                )
            )
        return entries

    def run(self) -> ConeResult:
        entries = (
            self._race_entries()
            + self._lockorder_entries()
            + self._blocking_entries()
        )
        entries.sort(
            key=lambda e: (
                e.finding.path,
                e.finding.line,
                e.finding.rule,
                e.key,
            )
        )
        return ConeResult(entries=entries)


def analyze_cone(index: ProgramIndex, scc_index: int) -> ConeResult:
    """Judge one SCC's cone.  Pure in the member summaries: same
    summaries in, byte-identical :class:`ConeResult` out."""
    return _ConeAnalysis(index, scc_index).run()

"""Linking: resolve imports across analyzed files, condense to SCCs.

A :class:`ProgramIndex` maps dotted module names to analyzed files.  A
file ``a/b/worker.py`` answers to every dotted *suffix* of its path —
``worker``, ``b.worker``, ``a.b.worker`` — because the analysis root is
rarely the interpreter's ``sys.path`` root; ``__init__.py`` answers for
its package directory.  An ambiguous short name (two ``utils.py`` in
different trees) resolves to nothing: whole-program analysis degrades
to per-file precision for those references instead of guessing, which
keeps the self-lint honest.

The import graph's strongly connected components (mutual-import
clusters), in dependency-first topological order, are the unit of
phase-2 work: an SCC's **cone** — the SCC plus everything it
transitively imports — is exactly the set of summaries its analysis may
read, so a cone's result is a pure function of its members' content and
caches under their digests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.ip.summaries import ModuleSummary

__all__ = ["ProgramIndex", "module_name_candidates"]


def module_name_candidates(path: str) -> List[str]:
    """Dotted suffixes this file answers to, shortest first."""
    norm = path.replace("\\", "/").lstrip("./")
    if not norm.endswith(".py"):
        return []
    parts = [p for p in norm[: -len(".py")].split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return []
    return [".".join(parts[i:]) for i in range(len(parts) - 1, -1, -1)]


class ProgramIndex:
    """All linked knowledge about one planned file set."""

    def __init__(self, summaries: Dict[str, ModuleSummary]) -> None:
        #: path -> summary, for every readable planned file.
        self.summaries = summaries
        self.paths: List[str] = sorted(summaries)
        claims: Dict[str, List[str]] = {}
        for path in self.paths:
            for name in module_name_candidates(path):
                claims.setdefault(name, []).append(path)
        #: dotted name -> path (unambiguous claims only).
        self._by_name: Dict[str, str] = {
            name: owners[0]
            for name, owners in claims.items()
            if len(owners) == 1
        }
        #: path -> canonical module name (shortest unambiguous suffix).
        self.module_name: Dict[str, str] = {}
        for path in self.paths:
            for name in module_name_candidates(path):
                if self._by_name.get(name) == path:
                    self.module_name[path] = name
                    break
            else:
                self.module_name[path] = path  # fully shadowed: unique key
        self._edges = self._import_edges()
        self._sccs, self._scc_of = self._condense()
        self._cones = self._build_cones()

    # -- resolution --------------------------------------------------------
    def resolve_module(self, dotted: str) -> Optional[str]:
        """The analyzed file a dotted module name refers to, if unique."""
        return self._by_name.get(dotted)

    def resolve_prefix(
        self, dotted: str
    ) -> Optional[Tuple[str, Tuple[str, ...]]]:
        """Split ``pkg.mod.attr...`` into (module path, trailing parts).

        Longest module prefix wins: ``a.b.c`` prefers file ``a/b/c.py``
        over package ``a/b`` with remainder ``("c",)``.
        """
        parts = dotted.split(".")
        for k in range(len(parts), 0, -1):
            path = self._by_name.get(".".join(parts[:k]))
            if path is not None:
                return path, tuple(parts[k:])
        return None

    # -- graph -------------------------------------------------------------
    def _import_edges(self) -> Dict[str, List[str]]:
        edges: Dict[str, List[str]] = {p: [] for p in self.paths}
        for path in self.paths:
            seen: Set[str] = set()
            for canonical in self.summaries[path].imports.values():
                hit = self.resolve_prefix(canonical)
                if hit is not None and hit[0] != path and hit[0] not in seen:
                    seen.add(hit[0])
                    edges[path].append(hit[0])
            edges[path].sort()
        return edges

    def imports_of(self, path: str) -> List[str]:
        """Analyzed files ``path`` imports (directly)."""
        return list(self._edges.get(path, ()))

    def _condense(
        self,
    ) -> Tuple[List[Tuple[str, ...]], Dict[str, int]]:
        """Tarjan SCCs, then a deterministic dependency-first topo order.

        Iteration order is fixed (sorted paths, sorted successors), so
        the SCC list is a pure function of the summaries — no hash-seed
        or insertion-order dependence.
        """
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[Tuple[str, ...]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, child_i = work.pop()
                if child_i == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recursed = False
                succs = self._edges[node]
                for i in range(child_i, len(succs)):
                    succ = succs[i]
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recursed = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if recursed:
                    continue
                for succ in succs:
                    if succ in low and succ in on_stack:
                        low[node] = min(low[node], low[succ])
                if low[node] == index[node]:
                    members: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        members.append(member)
                        if member == node:
                            break
                    sccs.append(tuple(sorted(members)))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        for path in self.paths:
            if path not in index:
                strongconnect(path)

        scc_of = {p: i for i, scc in enumerate(sccs) for p in scc}
        # Dependency-first topological order over the condensation with a
        # deterministic tie-break (lexicographically smallest member).
        dep_edges: Dict[int, Set[int]] = {i: set() for i in range(len(sccs))}
        indegree: Dict[int, int] = {i: 0 for i in range(len(sccs))}
        for path in self.paths:
            for succ in self._edges[path]:
                a, b = scc_of[path], scc_of[succ]
                if a != b and a not in dep_edges[b]:
                    dep_edges[b].add(a)  # b (dependency) unblocks a
                    indegree[a] += 1
        import heapq

        ready = [
            (sccs[i][0], i) for i in range(len(sccs)) if indegree[i] == 0
        ]
        heapq.heapify(ready)
        order: List[int] = []
        while ready:
            _, i = heapq.heappop(ready)
            order.append(i)
            for j in sorted(dep_edges[i]):
                indegree[j] -= 1
                if indegree[j] == 0:
                    heapq.heappush(ready, (sccs[j][0], j))
        ordered = [sccs[i] for i in order]
        scc_of = {p: i for i, scc in enumerate(ordered) for p in scc}
        return ordered, scc_of

    def sccs(self) -> List[Tuple[str, ...]]:
        """SCCs in dependency-first order (imports before importers)."""
        return list(self._sccs)

    def scc_of(self, path: str) -> int:
        """Index of the SCC containing ``path`` (into :meth:`sccs`)."""
        return self._scc_of[path]

    def _build_cones(self) -> List[Tuple[str, ...]]:
        cones: List[Set[str]] = []
        for scc in self._sccs:
            cone: Set[str] = set(scc)
            for path in scc:
                for succ in self._edges[path]:
                    if self._scc_of[succ] != self._scc_of[path]:
                        cone.update(cones[self._scc_of[succ]])
            cones.append(cone)
        return [tuple(sorted(c)) for c in cones]

    def cone(self, scc_index: int) -> Tuple[str, ...]:
        """The SCC plus everything it transitively imports, sorted."""
        return self._cones[scc_index]

    def dependents(self, path: str) -> List[int]:
        """Indices of every SCC whose cone contains ``path`` — exactly
        the phase-2 work invalidated by editing that file."""
        return [
            i for i, cone in enumerate(self._cones) if path in cone
        ]

"""The ``pdc-lint`` CLI: ``python -m repro.analysis <paths>``.

Exit codes: 0 clean, 1 findings, 2 unreadable or unparsable input.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.analyzer import analyze_paths
from repro.analysis.report import render_json, render_sarif, render_text
from repro.analysis.rules import default_registry

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pdc-lint",
        description=(
            "Static concurrency analysis for Python teaching code: data-race "
            "candidates (PDC101), lock-order cycles (PDC102), and locking "
            "hygiene (PDC2xx). Suppress a finding on its line with "
            "`# pdc-lint: disable=PDC101 -- justification`."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories (recurses into *.py)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif for CI code scanning)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help=(
            "comma-separated rule ids or prefixes to run "
            "(e.g. PDC101,PDC2 — default: all rules)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def _list_rules() -> str:
    lines = []
    for r in default_registry().rules():
        lines.append(f"{r.id}  {r.name:<24} [{r.severity.value}] {r.summary}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")
    select: Optional[List[str]] = (
        [s for s in args.select.split(",") if s.strip()] if args.select else None
    )
    result = analyze_paths(args.paths, select=select)
    extra = {}
    if args.format == "sarif":
        renderer = render_sarif
        extra["rules"] = [
            (r.id, r.name, r.summary) for r in default_registry().rules()
        ]
    elif args.format == "json":
        renderer = render_json
    else:
        renderer = render_text
    try:
        print(
            renderer(
                result.findings,
                files=result.files,
                suppressed=result.suppressed,
                errors=result.errors,
                **extra,
            )
        )
    except BrokenPipeError:
        # `pdc-lint ... | head` closed the pipe; the verdict still stands.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

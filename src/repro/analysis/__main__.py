"""The ``pdc-lint`` CLI: ``python -m repro.analysis <paths>``.

A thin argument-parsing shell over :mod:`repro.analysis.engine` — the
engine owns caching, parallelism, watch mode, rendering, and stats.
Exit codes: 0 clean, 1 findings, 2 unreadable or unparsable input.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.engine import cli as engine_cli

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pdc-lint",
        description=(
            "Static concurrency analysis for Python teaching code: data-race "
            "candidates (PDC101), lock-order cycles (PDC102), and locking "
            "hygiene (PDC2xx). Suppress a finding on its line with "
            "`# pdc-lint: disable=PDC101 -- justification`."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories (recurses into *.py)"
    )
    parser.add_argument(
        "--select",
        default=None,
        help=(
            "comma-separated rule ids or prefixes to run "
            "(e.g. PDC101,PDC2 — default: all rules)"
        ),
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help=(
            "link modules across files and lift PDC101/PDC102/PDC206/"
            "PDC209 to whole-program scope (summaries + call-graph "
            "fixpoint; incremental per edited file)"
        ),
    )
    parser.add_argument(
        "--crossval",
        action="store_true",
        help=(
            "validate whole-program findings against the dynamic "
            "sanitizer on the cross-module twin corpus "
            "(requires --whole-program)"
        ),
    )
    engine_cli.add_engine_args(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = _build_parser()
    return engine_cli.run_lint(parser, parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""Static lock-order graph: ABBA deadlock potential (PDC102).

The dynamic :class:`repro.smp.deadlock.LockGraph` records "acquired B
while holding A" edges as a program *runs*; this pass reads the same edges
off the AST: every acquisition site whose entry lockset is non-empty
contributes ``held -> acquired`` edges.  A cycle in the resulting directed
graph means two call paths take the same locks in opposite orders — the
classic ABBA hang — even though no execution has deadlocked yet.  The
cross-validation tests replay fixture programs through the dynamic
``LockGraph`` and assert both analyses agree on cyclicity.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

import networkx as nx

from repro.analysis.analyzer import ModuleContext
from repro.analysis.report import Finding, Severity
from repro.analysis.rules import Rule, rule

__all__ = ["LockOrderRule", "build_lock_order_graph"]


def build_lock_order_graph(ctx: ModuleContext) -> nx.DiGraph:
    """``held -> acquired`` edges over the module's discovered locks.

    Each edge carries a ``sites`` attribute: ``(function, lineno)`` pairs
    where the nested acquisition occurs.
    """
    graph = nx.DiGraph()
    for info in ctx.functions:
        for acq in ctx.lockmodel.acquisitions(info.node):
            for outer in acq.held_before:
                if outer == acq.lock:
                    continue  # re-entry is PDC208's finding, not an order edge
                if not graph.has_edge(outer, acq.lock):
                    graph.add_edge(outer, acq.lock, sites=[])
                graph.edges[outer, acq.lock]["sites"].append(
                    (info.name, acq.lineno)
                )
    return graph


@rule
class LockOrderRule(Rule):
    """PDC102: a cycle in the static lock-order graph."""

    id = "PDC102"
    name = "lock-order-cycle"
    summary = (
        "nested acquisitions take locks in conflicting orders (ABBA "
        "deadlock potential); impose one global order"
    )
    severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        graph = build_lock_order_graph(ctx)
        for cycle in sorted(nx.simple_cycles(graph), key=len):
            yield self._report(ctx, graph, list(cycle))

    def _report(
        self, ctx: ModuleContext, graph: nx.DiGraph, cycle: List[str]
    ) -> Finding:
        edges = list(zip(cycle, cycle[1:] + cycle[:1]))
        sites: List[Tuple[str, int]] = []
        for a, b in edges:
            sites.extend(graph.edges[a, b]["sites"])
        func, lineno = min(sites, key=lambda s: s[1])
        order = " -> ".join(cycle + [cycle[0]])
        where = ", ".join(
            sorted({f"{f}():{ln}" for f, ln in sites})
        )
        return Finding(
            path=ctx.path,
            line=lineno,
            col=0,
            rule=self.id,
            message=(
                f"lock-order cycle {order}: some interleaving of the "
                f"nesting sites ({where}) deadlocks; acquire these locks in "
                "one global order everywhere"
            ),
            severity=self.severity,
            symbol=order,
        )

"""File-level parallel fan-out with deterministic result ordering.

The pool maps units over a ``ProcessPoolExecutor`` in chunks; results
come back in *submission* order (``Executor.map`` guarantees it), so a
parallel run merges identically to a sequential one no matter which
worker finished first.  Passes travel as ``(kind, params)`` specs and
are rebuilt inside each worker — nothing analyzer-shaped is pickled.

``jobs <= 1`` short-circuits to a plain in-process loop: no pool, no
pickling, bit-for-bit the classic sequential analyzer.
"""

from __future__ import annotations

import concurrent.futures
from typing import Dict, List, Sequence, Tuple

from repro.analysis.engine.outcome import FileOutcome, WorkUnit
from repro.analysis.engine.passes import AnalyzerPass, build_pass

__all__ = ["run_units"]

#: One worker task: the pass spec plus a chunk of (kind, key, data) units.
_Chunk = Tuple[str, Dict[str, object], List[Tuple[str, str, bytes]]]


def _analyze_chunk(chunk: _Chunk) -> List[Dict[str, object]]:
    """Worker entry point: rebuild the pass, analyze one chunk."""
    kind, params, items = chunk
    pass_ = build_pass(kind, params)
    return [
        pass_.analyze(WorkUnit(kind=ukind, key=key, data=data), data).to_wire()
        for ukind, key, data in items
    ]


def _chunks(
    pass_: AnalyzerPass,
    loaded: Sequence[Tuple[WorkUnit, bytes]],
    jobs: int,
) -> List[_Chunk]:
    """Split the work into ~4 chunks per worker (amortizes IPC, keeps
    the tail balanced)."""
    kind, params = pass_.spec()
    per_chunk = max(1, len(loaded) // (jobs * 4) or 1)
    out: List[_Chunk] = []
    for start in range(0, len(loaded), per_chunk):
        items = [
            (u.kind, u.key, data)
            for u, data in loaded[start : start + per_chunk]
        ]
        out.append((kind, params, items))
    return out


def run_units(
    pass_: AnalyzerPass,
    loaded: Sequence[Tuple[WorkUnit, bytes]],
    jobs: int = 1,
) -> List[FileOutcome]:
    """Analyze ``loaded`` units, returning outcomes in input order."""
    if jobs <= 1 or len(loaded) <= 1:
        return [pass_.analyze(unit, data) for unit, data in loaded]
    outcomes: List[FileOutcome] = []
    workers = min(jobs, len(loaded))
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        for wire_chunk in pool.map(_analyze_chunk, _chunks(pass_, loaded, jobs)):
            outcomes.extend(FileOutcome.from_wire(w) for w in wire_chunk)
    return outcomes

"""Analyzer passes: the pluggable "what happens to one unit" layer.

An :class:`AnalyzerPass` is everything the engine needs to know about
one analyzer: how to load a unit's content (for hashing), how to
analyze it, what version/configuration it runs under (the cache key),
and how its findings render (tool name, SARIF rule table).  PDC-Lint
and PDC-San each ship one pass; a third analyzer plugs in by
subclassing and registering a factory — the engine, cache, pool, watch
loop, and CLI plumbing are all shared.

Passes cross process boundaries as a ``(kind, params)`` spec so the
worker pool can rebuild them without pickling analyzer internals.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine.outcome import FileOutcome, WorkUnit
from repro.analysis.report import apply_suppressions

__all__ = [
    "AnalyzerPass",
    "LintPass",
    "SanitizePass",
    "VerifyPass",
    "build_pass",
    "register_pass",
]

#: Bumped when an analyzer's semantics change; part of every cache key,
#: so stale entries from an older analyzer can never be replayed.
LINT_VERSION = "2"
SAN_VERSION = "2"
VERIFY_VERSION = "1"


class AnalyzerPass(abc.ABC):
    """One analyzer, as the engine sees it."""

    #: Tool name for renderers ("pdc-lint", "pdc-san").
    tool: str = ""
    #: Spec kind for :func:`build_pass` (worker-side reconstruction).
    kind: str = ""
    #: Analyzer version; changing it invalidates every cache entry.
    version: str = "0"
    #: Whether unreadable units still count in the ``files`` summary
    #: (pdc-lint's convention) or not (pdc-san counts actual runs).
    count_unreadable: bool = True

    @abc.abstractmethod
    def config_key(self) -> str:
        """Canonical string for the run configuration (cache scope)."""

    @abc.abstractmethod
    def params(self) -> Dict[str, object]:
        """Constructor kwargs for worker-side reconstruction."""

    @abc.abstractmethod
    def analyze(self, unit: WorkUnit, data: bytes) -> FileOutcome:
        """Analyze one loaded unit."""

    @abc.abstractmethod
    def sarif_rules(self) -> List[Tuple[str, str, str]]:
        """``(id, name, summary)`` driver metadata for SARIF logs."""

    @abc.abstractmethod
    def rule_table(self) -> str:
        """The human ``--list-rules`` table."""

    def load(self, unit: WorkUnit) -> bytes:
        """The unit's content bytes (hashed for the incremental cache)."""
        if unit.data is not None:
            return unit.data
        if unit.kind == "fixture":
            from repro.smp.fixtures import fixture

            return fixture(unit.key).source.encode("utf-8")
        with open(unit.key, "rb") as fh:
            return fh.read()

    def content_salt(self, unit: WorkUnit) -> str:
        """Extra per-unit material folded into the content digest."""
        return ""

    def spec(self) -> Tuple[str, Dict[str, object]]:
        """The picklable ``(kind, params)`` form of this pass."""
        return self.kind, self.params()


class LintPass(AnalyzerPass):
    """PDC-Lint: the static rules of :mod:`repro.analysis.rules`."""

    tool = "pdc-lint"
    kind = "lint"
    version = LINT_VERSION
    count_unreadable = True

    def __init__(self, select: Optional[Sequence[str]] = None) -> None:
        self.select = [str(s) for s in select] if select else None

    def config_key(self) -> str:
        from repro.analysis.rules import default_registry

        # The registered rule set is part of the configuration: adding a
        # rule (or narrowing --select) must invalidate cached findings.
        active = ",".join(r.id for r in default_registry().selected(self.select))
        chosen = ",".join(self.select) if self.select else "all"
        return f"select={chosen};rules={active}"

    def params(self) -> Dict[str, object]:
        return {"select": self.select}

    def analyze(self, unit: WorkUnit, data: bytes) -> FileOutcome:
        from repro.analysis.analyzer import ModuleContext
        from repro.analysis.rules import default_registry

        try:
            source = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            return FileOutcome(errors=[f"{unit.key}: {exc}"])
        try:
            ctx = ModuleContext.build(unit.key, source)
        except SyntaxError as exc:
            return FileOutcome(
                errors=[
                    f"{unit.key}: syntax error: {exc.msg} (line {exc.lineno})"
                ]
            )
        findings = []
        for rule in default_registry().selected(self.select):
            findings.extend(rule.check(ctx))
        kept, dropped = apply_suppressions(findings, source)
        return FileOutcome(findings=sorted(kept), suppressed=len(dropped))

    def sarif_rules(self) -> List[Tuple[str, str, str]]:
        from repro.analysis.rules import default_registry

        return [(r.id, r.name, r.summary) for r in default_registry().rules()]

    def rule_table(self) -> str:
        from repro.analysis.rules import default_registry

        return "\n".join(
            f"{r.id}  {r.name:<24} [{r.severity.value}] {r.summary}"
            for r in default_registry().rules()
        )


class SanitizePass(AnalyzerPass):
    """PDC-San: one deterministic instrumented execution per unit.

    Caching an *execution* is sound only because the runner is
    deterministic by construction (inline logical threads, seeded
    schedules): same source in, same findings out, every run.
    """

    tool = "pdc-san"
    kind = "sanitize"
    version = SAN_VERSION
    count_unreadable = False

    def __init__(self, entry: str = "main") -> None:
        self.entry = entry

    def config_key(self) -> str:
        return f"entry={self.entry}"

    def params(self) -> Dict[str, object]:
        return {"entry": self.entry}

    def content_salt(self, unit: WorkUnit) -> str:
        if unit.kind == "fixture":
            # A fixture's entry functions are part of what runs, so they
            # are part of the digest (its name alone is not content).
            from repro.smp.fixtures import fixture

            fix = fixture(unit.key)
            return f"{fix.dynamic_entry}|{','.join(fix.entrypoints)}"
        return ""

    def analyze(self, unit: WorkUnit, data: bytes) -> FileOutcome:
        from repro.sanitizers.runner import run_fixture, run_source

        if unit.kind == "fixture":
            from repro.smp.fixtures import fixture

            run = run_fixture(fixture(unit.key))
        else:
            run = run_source(
                data.decode("utf-8"), path=unit.key, entry=self.entry
            )
        return FileOutcome(
            findings=list(run.findings),
            suppressed=len(run.suppressed),
            errors=list(run.errors),
        )

    def sarif_rules(self) -> List[Tuple[str, str, str]]:
        from repro.sanitizers.findings import DYNAMIC_RULES

        return [
            (rid, name, summary)
            for rid, (name, _sev, summary) in sorted(DYNAMIC_RULES.items())
        ]

    def rule_table(self) -> str:
        from repro.sanitizers.findings import DYNAMIC_RULES

        return "\n".join(
            f"{rid}  {name:<24} [{severity.value}] {summary}"
            for rid, (name, severity, summary) in sorted(DYNAMIC_RULES.items())
        )


class VerifyPass(AnalyzerPass):
    """PDC-Verify: exhaustive schedule exploration per unit.

    Caching a *model-checking verdict* is sound for the same reason
    caching a sanitizer run is — the exploration is a deterministic
    function of the source, the mode, and the budget, all of which are
    in the cache key.
    """

    tool = "pdc-verify"
    kind = "verify"
    version = VERIFY_VERSION
    count_unreadable = False

    def __init__(
        self,
        entry: str = "main",
        mode: str = "dpor",
        max_schedules: Optional[int] = None,
        max_steps: Optional[int] = None,
    ) -> None:
        self.entry = entry
        self.mode = mode
        self.max_schedules = max_schedules
        self.max_steps = max_steps

    def config_key(self) -> str:
        return (
            f"entry={self.entry};mode={self.mode};"
            f"schedules={self.max_schedules};steps={self.max_steps}"
        )

    def params(self) -> Dict[str, object]:
        return {
            "entry": self.entry,
            "mode": self.mode,
            "max_schedules": self.max_schedules,
            "max_steps": self.max_steps,
        }

    def content_salt(self, unit: WorkUnit) -> str:
        if unit.kind == "fixture":
            # Entry functions and exploration bounds are part of what
            # gets checked, so they are part of the digest.
            from repro.smp.fixtures import fixture

            fix = fixture(unit.key)
            return (
                f"{fix.dynamic_entry}|{','.join(fix.entrypoints)}"
                f"|{fix.verify_budget}|{fix.verify_max_steps}"
            )
        return ""

    def _budget(self, fix=None):
        from repro.verify.explorer import ExploreBudget, fixture_budget

        if self.max_schedules is None and self.max_steps is None:
            return fixture_budget(fix) if fix is not None else ExploreBudget()
        base = fixture_budget(fix) if fix is not None else ExploreBudget()
        return ExploreBudget(
            max_schedules=self.max_schedules or base.max_schedules,
            max_steps_per_task=self.max_steps or base.max_steps_per_task,
        )

    def analyze(self, unit: WorkUnit, data: bytes) -> FileOutcome:
        from repro.verify.explorer import explore_fixture, explore_source

        if unit.kind == "fixture":
            from repro.smp.fixtures import fixture

            fix = fixture(unit.key)
            result = explore_fixture(
                fix, mode=self.mode, budget=self._budget(fix)
            )
        else:
            result = explore_source(
                data.decode("utf-8"),
                path=unit.key,
                entry=self.entry,
                mode=self.mode,
                budget=self._budget(),
            )
        return FileOutcome(
            findings=list(result.findings),
            errors=list(result.errors),
        )

    def sarif_rules(self) -> List[Tuple[str, str, str]]:
        from repro.sanitizers.findings import DYNAMIC_RULES

        return [
            (rid, name, summary)
            for rid, (name, _sev, summary) in sorted(DYNAMIC_RULES.items())
        ]

    def rule_table(self) -> str:
        from repro.sanitizers.findings import DYNAMIC_RULES

        return "\n".join(
            f"{rid}  {name:<24} [{severity.value}] {summary}"
            for rid, (name, severity, summary) in sorted(DYNAMIC_RULES.items())
        )


_PASS_FACTORIES: Dict[str, Callable[..., AnalyzerPass]] = {}


def register_pass(kind: str, factory: Callable[..., AnalyzerPass]) -> None:
    """Register a pass factory under ``kind`` (third analyzers hook in)."""
    if kind in _PASS_FACTORIES:
        raise ValueError(f"duplicate pass kind {kind!r}")
    _PASS_FACTORIES[kind] = factory


register_pass("lint", LintPass)
register_pass("sanitize", SanitizePass)
register_pass("verify", VerifyPass)


def build_pass(kind: str, params: Dict[str, object]) -> AnalyzerPass:
    """Rebuild a pass from its spec (the worker side of :meth:`spec`)."""
    try:
        factory = _PASS_FACTORIES[kind]
    except KeyError:
        raise ValueError(f"unknown analyzer pass kind {kind!r}") from None
    return factory(**params)

"""The shared analysis engine behind PDC-Lint and PDC-San.

Both analyzer CLIs (and the autograder's static/dynamic gates) drive
the same machinery: an :class:`AnalysisEngine` plans work units, runs a
registered :class:`AnalyzerPass` per unit, and merges results in
planned order — never completion order — so output is deterministic by
construction.  On top of that sit the incremental content-hash cache
(:mod:`.cache`), the process-pool fan-out (:mod:`.pool`), the warm
``--watch`` loop (:mod:`.watch`), and the shared CLI plumbing
(:mod:`.cli`).

The invariant everything here is built around, and that the test suite
enforces: **cold, warm-cache, and parallel runs produce byte-identical
text/JSON/SARIF output.**  A cache hit or a worker handoff is allowed
to change wall-clock time and nothing else.
"""

from repro.analysis.engine.cache import (
    FindingsCache,
    MemoryCache,
    content_digest,
    scope_id,
)
from repro.analysis.engine.core import AnalysisEngine, expand_paths
from repro.analysis.engine.outcome import (
    EngineReport,
    FileOutcome,
    WorkUnit,
    merge_outcomes,
)
from repro.analysis.engine.passes import (
    AnalyzerPass,
    LintPass,
    SanitizePass,
    VerifyPass,
    build_pass,
    register_pass,
)
from repro.analysis.engine.watch import Watcher

__all__ = [
    "AnalysisEngine",
    "AnalyzerPass",
    "EngineReport",
    "FileOutcome",
    "FindingsCache",
    "LintPass",
    "MemoryCache",
    "SanitizePass",
    "VerifyPass",
    "Watcher",
    "WorkUnit",
    "build_pass",
    "content_digest",
    "expand_paths",
    "merge_outcomes",
    "register_pass",
    "scope_id",
]

"""Work units, per-unit outcomes, and the deterministic merge.

The engine's planning vocabulary is deliberately tiny.  A
:class:`WorkUnit` names one thing to analyze — a file on disk, a corpus
fixture, or an in-memory source string — and a :class:`FileOutcome` is
everything analyzing one unit produced.  Merging outcomes back into one
:class:`EngineReport` is pure data plumbing with a hard rule: the merge
is a function of the *planned unit order* (paths sorted at walk time),
never of completion order, so a parallel run and a sequential run are
indistinguishable from their output.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import Finding

__all__ = ["WorkUnit", "FileOutcome", "EngineReport", "merge_outcomes"]


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One thing to analyze: a file, a fixture, or inline source.

    ``key`` is the display path (what findings and errors cite).  For
    ``kind="source"`` the content rides along in ``data`` — the
    autograder analyzes submission strings that exist nowhere on disk.
    """

    kind: str  # "file" | "fixture" | "source"
    key: str
    data: Optional[bytes] = None

    @classmethod
    def file(cls, path: str) -> "WorkUnit":
        """A unit backed by a file on disk."""
        return cls(kind="file", key=path)

    @classmethod
    def fixture(cls, name: str) -> "WorkUnit":
        """A unit backed by a twin-corpus fixture."""
        return cls(kind="fixture", key=name)

    @classmethod
    def source(cls, path: str, source: str) -> "WorkUnit":
        """A unit carrying its own source (no filesystem involved)."""
        return cls(kind="source", key=path, data=source.encode("utf-8"))


@dataclasses.dataclass
class FileOutcome:
    """Everything analyzing one unit produced.

    ``readable`` distinguishes "the analyzer ran and reported errors"
    (syntax error: still a planned, analyzed file) from "the unit could
    not even be loaded" (missing file) — the two count differently in
    the per-tool ``files`` summary.
    """

    findings: List[Finding] = dataclasses.field(default_factory=list)
    suppressed: int = 0
    errors: List[str] = dataclasses.field(default_factory=list)
    readable: bool = True
    #: True when this outcome came out of the incremental cache.
    cached: bool = False

    def to_wire(self) -> Dict[str, object]:
        """JSON/pickle-friendly form (cache entries, worker results)."""
        return {
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": self.suppressed,
            "errors": list(self.errors),
            "readable": self.readable,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "FileOutcome":
        """Inverse of :meth:`to_wire`."""
        return cls(
            findings=[Finding.from_dict(d) for d in payload["findings"]],  # type: ignore[union-attr]
            suppressed=int(payload["suppressed"]),  # type: ignore[arg-type]
            errors=[str(e) for e in payload["errors"]],  # type: ignore[union-attr]
            readable=bool(payload.get("readable", True)),
        )


@dataclasses.dataclass
class EngineReport:
    """One engine run, merged: what the renderers and exit code consume."""

    findings: List[Finding]
    files: int
    suppressed: int
    errors: List[str]
    #: Per-unit outcomes in planned order (the watcher reuses them).
    outcomes: List[FileOutcome] = dataclasses.field(default_factory=list)
    units: List[WorkUnit] = dataclasses.field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 clean · 1 findings · 2 unreadable/unrunnable input."""
        if self.errors:
            return 2
        return 1 if self.findings else 0


def merge_outcomes(
    units: Sequence[WorkUnit],
    outcomes: Sequence[FileOutcome],
    pre_errors: Sequence[str] = (),
    count_unreadable: bool = True,
) -> EngineReport:
    """Fold per-unit outcomes into one report, deterministically.

    ``pre_errors`` are planning-time errors (a path that matched
    nothing); they precede every per-unit error.  ``count_unreadable``
    is the per-tool ``files`` convention: pdc-lint counts every planned
    file (unreadable ones included), pdc-san counts executions that
    actually happened.
    """
    findings: List[Finding] = []
    errors: List[str] = list(pre_errors)
    suppressed = 0
    files = 0
    for outcome in outcomes:
        findings.extend(outcome.findings)
        errors.extend(outcome.errors)
        suppressed += outcome.suppressed
        if count_unreadable or outcome.readable:
            files += 1
    return EngineReport(
        findings=sorted(findings),
        files=files,
        suppressed=suppressed,
        errors=errors,
        outcomes=list(outcomes),
        units=list(units),
    )

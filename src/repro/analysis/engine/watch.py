"""Warm watch mode: re-analyze only what changed, keep the rest hot.

A :class:`Watcher` holds the last outcome of every unit in memory and
polls the filesystem: a unit is re-analyzed only when its mtime/size
*stat* changes **and** its content hash actually differs (saves on
editors that rewrite identical bytes).  Everything else is served from
memory — not even the disk cache is consulted — so a warm iteration
over a monorepo costs one ``stat`` per file plus the changed files'
analysis.

The loop itself is injectable (``sleep``, ``max_cycles``) so tests can
drive cycles synchronously; the CLI runs it forever until Ctrl-C.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine.cache import content_digest
from repro.analysis.engine.core import AnalysisEngine, expand_paths
from repro.analysis.engine.outcome import (
    EngineReport,
    FileOutcome,
    WorkUnit,
    merge_outcomes,
)

__all__ = ["Watcher"]

#: What we remember per path: (mtime_ns, size, content digest, outcome).
_Entry = Tuple[int, int, str, FileOutcome]


class Watcher:
    """Re-runs an engine over a path set as files change."""

    def __init__(
        self,
        engine: AnalysisEngine,
        paths: Sequence[str],
        on_report: Optional[Callable[[EngineReport], None]] = None,
        post: Optional[
            Callable[[Sequence[WorkUnit], EngineReport], EngineReport]
        ] = None,
    ) -> None:
        self.engine = engine
        self.paths = list(paths)
        self.on_report = on_report
        #: Whole-program hook: runs over the *full* unit list after the
        #: per-file merge (changed files re-summarize, the rest replay).
        self.post = post
        self._known: Dict[str, _Entry] = {}
        self._started = False

    def _stat(self, path: str) -> Optional[Tuple[int, int]]:
        try:
            st = os.stat(path)
        except OSError:
            return None
        return st.st_mtime_ns, st.st_size

    def run_cycle(self) -> Optional[EngineReport]:
        """One poll: returns a fresh report, or ``None`` if nothing changed.

        The first cycle always analyzes (and reports) everything.
        """
        units, pre_errors = expand_paths(self.paths)
        stale: List[WorkUnit] = []
        entries: Dict[str, Optional[_Entry]] = {}
        for unit in units:
            stat = self._stat(unit.key)
            known = self._known.get(unit.key)
            if stat is None or known is None or known[:2] != stat:
                stale.append(unit)  # new, vanished, or stat changed: rehash
                entries[unit.key] = None
            else:
                entries[unit.key] = known

        changed = len(self._known) != len(units) or not self._started
        for unit in stale:
            try:
                data = self.engine.pass_.load(unit)
            except Exception as exc:  # noqa: BLE001 - mirror engine behavior
                entries[unit.key] = (
                    0,
                    0,
                    "",
                    FileOutcome(errors=[f"{unit.key}: {exc}"], readable=False),
                )
                changed = True
                continue
            digest = content_digest(data, self.engine.pass_.content_salt(unit))
            known = self._known.get(unit.key)
            stat = self._stat(unit.key) or (0, 0)
            if known is not None and known[2] == digest:
                # Touched but byte-identical: keep the outcome, new stat.
                entries[unit.key] = (stat[0], stat[1], digest, known[3])
                continue
            report = self.engine.run([unit])
            entries[unit.key] = (stat[0], stat[1], digest, report.outcomes[0])
            changed = True

        self._known = {k: v for k, v in entries.items() if v is not None}
        self._started = True
        if not changed:
            return None
        outcomes = [self._known[u.key][3] for u in units if u.key in self._known]
        report = merge_outcomes(
            units, outcomes, pre_errors, self.engine.pass_.count_unreadable
        )
        if self.post is not None:
            report = self.post(units, report)
        if self.on_report is not None:
            self.on_report(report)
        return report

    def run_forever(
        self,
        interval: float = 0.5,
        max_cycles: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """Poll until interrupted (or ``max_cycles`` polls, for tests)."""
        cycles = 0
        while max_cycles is None or cycles < max_cycles:
            self.run_cycle()
            cycles += 1
            if max_cycles is not None and cycles >= max_cycles:
                break
            sleep(interval)

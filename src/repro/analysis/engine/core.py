"""The :class:`AnalysisEngine`: plan → cache → fan out → merge.

One engine drives one pass over a planned list of work units:

1. **Plan** — expand paths to files (sorted walk, identical to the
   classic sequential analyzers), or accept explicit units (fixtures,
   in-memory sources).
2. **Cache** — hash each unit's content; a hit replays stored findings
   rebased to the unit's path, a miss queues the unit for analysis.
3. **Fan out** — analyze misses in-process (``jobs=1``) or across a
   process pool; results return in submission order either way.
4. **Merge** — fold outcomes in planned order into one report.

The hard invariant, enforced by tests: cold, warm-cache, and parallel
runs produce byte-identical text/JSON/SARIF output.  Every run records
its own telemetry in a :class:`~repro.runtime.metrics.MetricRegistry`
(files planned/analyzed, cache hits/misses, findings by rule, wall
clock) — the engine dogfoods the substrate it lints.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import pool as _pool
from repro.analysis.engine.cache import content_digest, rebase_entry
from repro.analysis.engine.outcome import (
    EngineReport,
    FileOutcome,
    WorkUnit,
    merge_outcomes,
)
from repro.analysis.engine.passes import AnalyzerPass
from repro.runtime.metrics import MetricRegistry

__all__ = ["AnalysisEngine", "expand_paths"]


def expand_paths(paths: Sequence[str]) -> Tuple[List[WorkUnit], List[str]]:
    """Paths and directory trees → file units, in deterministic order."""
    from repro.analysis.analyzer import iter_python_files

    files, errors = iter_python_files(paths)
    return [WorkUnit.file(p) for p in files], errors


class AnalysisEngine:
    """Runs one analyzer pass over planned units, incrementally."""

    def __init__(
        self,
        pass_: AnalyzerPass,
        cache: Optional[object] = None,
        jobs: int = 1,
        registry: Optional[MetricRegistry] = None,
        metrics_prefix: str = "engine",
    ) -> None:
        self.pass_ = pass_
        self.cache = cache
        self.jobs = max(1, int(jobs))
        self.registry = registry if registry is not None else MetricRegistry()
        self.prefix = metrics_prefix
        if self.cache is not None:
            self.cache.prune_stale(pass_)
            self.cache.open_scope(pass_)

    # -- metrics -----------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(f"{self.prefix}.{name}").inc(amount)

    def stats(self) -> Dict[str, object]:
        """This engine's metric subtree, snapshotted."""
        return self.registry.snapshot(self.prefix)

    # -- running -----------------------------------------------------------
    def run_paths(self, paths: Sequence[str]) -> EngineReport:
        """Plan files from ``paths`` and run them."""
        units, pre_errors = expand_paths(paths)
        return self.run(units, pre_errors)

    def run(
        self, units: Sequence[WorkUnit], pre_errors: Sequence[str] = ()
    ) -> EngineReport:
        """Analyze ``units``; cache hits skip analysis entirely."""
        started = time.perf_counter()
        self._count("runs")
        self._count("files.planned", len(units))
        # Pre-register the zero case: a cold run's stats must still say
        # "cache.hits: 0", not omit the key.
        for name in ("files.unreadable", "cache.hits", "cache.misses"):
            self._count(name, 0)
        outcomes: List[Optional[FileOutcome]] = [None] * len(units)
        to_run: List[Tuple[int, WorkUnit, bytes, str]] = []
        pending: Dict[str, int] = {}  # digest -> index into to_run
        dups: List[Tuple[int, WorkUnit, str]] = []
        for i, unit in enumerate(units):
            try:
                data = self.pass_.load(unit)
            except Exception as exc:  # noqa: BLE001 - any load failure is the
                # unit's error, reported in place of its findings
                outcomes[i] = FileOutcome(
                    errors=[f"{unit.key}: {exc}"], readable=False
                )
                self._count("files.unreadable")
                continue
            digest = content_digest(data, self.pass_.content_salt(unit))
            if self.cache is not None:
                hit = self.cache.get(self.pass_, digest, unit.key)
                if hit is not None:
                    outcomes[i] = hit
                    self._count("cache.hits")
                    continue
                self._count("cache.misses")
            if digest in pending:
                # Identical content queued earlier in this very run:
                # analyze once, replay for every other path.
                dups.append((i, unit, digest))
                self._count("cache.hits")
                continue
            pending[digest] = len(to_run)
            to_run.append((i, unit, data, digest))

        fresh = _pool.run_units(
            self.pass_, [(u, d) for _, u, d, _ in to_run], jobs=self.jobs
        )
        for (i, unit, _, digest), outcome in zip(to_run, fresh):
            outcomes[i] = outcome
            if self.cache is not None:
                self.cache.put(self.pass_, digest, unit.key, outcome)
        for i, unit, digest in dups:
            j = pending[digest]
            outcomes[i] = rebase_entry(
                {"path": to_run[j][1].key, "outcome": fresh[j].to_wire()},
                unit.key,
            )
        self._count("files.analyzed", len(to_run))

        done = [o for o in outcomes if o is not None]
        report = merge_outcomes(
            units, done, pre_errors, self.pass_.count_unreadable
        )
        self._count("findings.total", len(report.findings))
        self._count("suppressed", report.suppressed)
        self._count("errors", len(report.errors))
        for finding in report.findings:
            self._count(f"rule.{finding.rule}")
        self.registry.gauge(f"{self.prefix}.jobs").set(self.jobs)
        self.registry.histogram(f"{self.prefix}.wall_seconds").observe(
            time.perf_counter() - started
        )
        return report

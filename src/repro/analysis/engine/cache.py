"""The incremental findings cache: content-addressed, version-scoped.

Layout on disk::

    <root>/<tool>/<scope>/meta.json            # version + config, human-readable
    <root>/<tool>/<scope>/<content-digest>.json  # one analyzed unit

``scope`` hashes the analyzer version and its rule configuration, so a
version bump or a ``--select`` change can never replay stale findings —
the lookup simply lands in a different directory.  Old-version scope
directories are explicitly invalidated (deleted) by :meth:`prune_stale`
at engine startup.  ``content-digest`` hashes the unit's *bytes* (plus
any per-unit salt), which makes entries path-independent: two paths
with identical content share one entry, and :func:`rebase_entry`
rewrites the stored path into the queried one on the way out.

Writes are atomic (temp file + ``os.replace``) so a crashed or
concurrent run can never leave a half-written entry; a corrupted or
unreadable entry degrades to a cache miss, never to an error.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
from typing import Dict, Optional

from repro.analysis.engine.outcome import FileOutcome
from repro.analysis.engine.passes import AnalyzerPass

__all__ = [
    "content_digest",
    "scope_id",
    "rebase_entry",
    "FindingsCache",
    "MemoryCache",
]

#: Schema version of the entry JSON itself (not the analyzer's).
_ENTRY_SCHEMA = 1


def content_digest(data: bytes, salt: str = "") -> str:
    """sha256 of a unit's content bytes (plus per-unit salt)."""
    h = hashlib.sha256(data)
    if salt:
        h.update(b"\x00")
        h.update(salt.encode("utf-8"))
    return h.hexdigest()


def scope_id(pass_: AnalyzerPass) -> str:
    """The cache scope for one analyzer version + configuration."""
    material = f"{pass_.tool}\x00{pass_.version}\x00{pass_.config_key()}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def rebase_entry(entry: Dict[str, object], path: str) -> FileOutcome:
    """Deserialize a cache entry, rewriting its stored path to ``path``.

    Entries are stored under a content digest, so the same entry serves
    every path whose bytes match; findings and error strings cite the
    path they were produced at, which must be rewritten for the hit to
    be indistinguishable from a fresh analysis.
    """
    outcome = FileOutcome.from_wire(entry["outcome"])  # type: ignore[arg-type]
    old = str(entry.get("path", ""))
    if old and old != path:
        outcome.findings = [
            dataclasses.replace(f, path=path) if f.path == old else f
            for f in outcome.findings
        ]
        outcome.errors = [
            path + e[len(old):] if e.startswith(old + ":") else e
            for e in outcome.errors
        ]
    outcome.cached = True
    return outcome


class FindingsCache:
    """The on-disk cache.  All I/O failures degrade to misses."""

    def __init__(self, root: str) -> None:
        self.root = root

    # -- paths -------------------------------------------------------------
    def _scope_dir(self, pass_: AnalyzerPass) -> str:
        return os.path.join(self.root, pass_.tool, scope_id(pass_))

    def _entry_path(self, pass_: AnalyzerPass, digest: str) -> str:
        return os.path.join(self._scope_dir(pass_), f"{digest}.json")

    # -- lifecycle ---------------------------------------------------------
    def open_scope(self, pass_: AnalyzerPass) -> None:
        """Create the scope directory and its ``meta.json`` descriptor."""
        scope = self._scope_dir(pass_)
        try:
            os.makedirs(scope, exist_ok=True)
            meta = os.path.join(scope, "meta.json")
            if not os.path.exists(meta):
                self._atomic_write(
                    meta,
                    json.dumps(
                        {
                            "tool": pass_.tool,
                            "version": pass_.version,
                            "config": pass_.config_key(),
                            "schema": _ENTRY_SCHEMA,
                        },
                        indent=2,
                    ),
                )
        except OSError:
            pass  # a cache that cannot be created is just a miss machine

    def prune_stale(self, pass_: AnalyzerPass) -> int:
        """Delete sibling scopes written by *older analyzer versions*.

        Scopes for the current version but a different configuration
        (another ``--select``) are left alone — they are still valid.
        Returns the number of scope directories removed.
        """
        tool_dir = os.path.join(self.root, pass_.tool)
        removed = 0
        try:
            names = os.listdir(tool_dir)
        except OSError:
            return 0
        for name in names:
            scope = os.path.join(tool_dir, name)
            try:
                with open(
                    os.path.join(scope, "meta.json"), "r", encoding="utf-8"
                ) as fh:
                    meta = json.load(fh)
                stale = (
                    meta.get("version") != pass_.version
                    or meta.get("schema") != _ENTRY_SCHEMA
                )
            except (OSError, ValueError):
                stale = True  # unreadable scope: nothing in it is trustworthy
            if stale:
                shutil.rmtree(scope, ignore_errors=True)
                removed += 1
        return removed

    # -- entries -----------------------------------------------------------
    def get(
        self, pass_: AnalyzerPass, digest: str, path: str
    ) -> Optional[FileOutcome]:
        """The cached outcome for ``digest``, rebased to ``path``."""
        try:
            with open(
                self._entry_path(pass_, digest), "r", encoding="utf-8"
            ) as fh:
                entry = json.load(fh)
            if entry.get("schema") != _ENTRY_SCHEMA:
                return None
            return rebase_entry(entry, path)
        except (OSError, ValueError, KeyError, TypeError):
            return None  # missing, corrupted, or wrong-shaped: a miss

    def put(
        self, pass_: AnalyzerPass, digest: str, path: str, outcome: FileOutcome
    ) -> None:
        """Store one outcome atomically (failures are silent)."""
        entry = {
            "schema": _ENTRY_SCHEMA,
            "digest": digest,
            "path": path,
            "outcome": outcome.to_wire(),
        }
        try:
            self._atomic_write(
                self._entry_path(pass_, digest), json.dumps(entry)
            )
        except OSError:
            pass

    def _atomic_write(self, path: str, text: str) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)


class MemoryCache:
    """A per-process cache with the same surface as :class:`FindingsCache`.

    The autograder uses one per grading session: a cohort where many
    students submit byte-identical starter code is analyzed once.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[str, object]] = {}

    def open_scope(self, pass_: AnalyzerPass) -> None:
        pass

    def prune_stale(self, pass_: AnalyzerPass) -> int:
        return 0

    def get(
        self, pass_: AnalyzerPass, digest: str, path: str
    ) -> Optional[FileOutcome]:
        entry = self._entries.get(f"{scope_id(pass_)}/{digest}")
        return None if entry is None else rebase_entry(entry, path)

    def put(
        self, pass_: AnalyzerPass, digest: str, path: str, outcome: FileOutcome
    ) -> None:
        self._entries[f"{scope_id(pass_)}/{digest}"] = {
            "path": path,
            "outcome": outcome.to_wire(),
        }

"""Shared CLI plumbing: one flag set, one driver, two tools.

``pdc-lint`` and ``pdc-san`` used to each own a copy of the
format-selection / render / exit-code dance; both are now <60-line
argument-parsing shells that call :func:`run_lint` / :func:`run_san`.
Everything engine-shaped — cache wiring, parallel jobs, watch mode,
``--stats`` telemetry — is defined once here and behaves identically
in both tools.

Stats go to *stderr* (or a ``--stats-json`` file): stdout carries the
findings report and nothing else, which is what lets CI diff cold and
warm runs byte-for-byte.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.engine.cache import FindingsCache
from repro.analysis.engine.core import AnalysisEngine, expand_paths
from repro.analysis.engine.outcome import EngineReport, WorkUnit
from repro.analysis.engine.passes import (
    AnalyzerPass,
    LintPass,
    SanitizePass,
    VerifyPass,
)
from repro.analysis.engine.watch import Watcher
from repro.analysis.report import render_json, render_sarif, render_text

__all__ = [
    "add_engine_args",
    "apply_baseline",
    "run_lint",
    "run_san",
    "run_verify",
]


def add_engine_args(parser: argparse.ArgumentParser) -> None:
    """The engine flags every analyzer CLI shares."""
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif for CI code scanning)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze files across N worker processes (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental findings cache for this run",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache location (default: $PDC_CACHE_DIR or ~/.cache/pdc-analysis)",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="stay warm: poll for changes and re-analyze only changed files",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SEC",
        help="--watch poll interval in seconds (default: 0.5)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print run telemetry (files, cache hits, wall clock) to stderr",
    )
    parser.add_argument(
        "--stats-json",
        default=None,
        metavar="FILE",
        help="write the run's metric registry snapshot to FILE as JSON",
    )
    parser.add_argument(
        "--baseline",
        nargs=2,
        default=None,
        metavar=("MODE", "FILE"),
        help=(
            "baseline findings: 'write FILE' captures the current run, "
            "'check FILE' suppresses exact matches recorded in FILE"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )


def default_cache_dir() -> str:
    """``$PDC_CACHE_DIR``, else the XDG cache home, else ``~/.cache``."""
    explicit = os.environ.get("PDC_CACHE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(xdg, "pdc-analysis")


def render_report(
    pass_: AnalyzerPass, fmt: str, report: EngineReport
) -> str:
    """One report in the requested format, byte-compatible with the
    classic sequential CLIs."""
    if fmt == "sarif":
        return render_sarif(
            report.findings,
            files=report.files,
            suppressed=report.suppressed,
            errors=report.errors,
            tool=pass_.tool,
            rules=pass_.sarif_rules(),
        )
    if fmt == "json":
        return render_json(
            report.findings,
            files=report.files,
            suppressed=report.suppressed,
            errors=report.errors,
            tool=pass_.tool,
        )
    return render_text(
        report.findings,
        files=report.files,
        suppressed=report.suppressed,
        errors=report.errors,
    )


def _print_report(text: str) -> None:
    try:
        print(text)
    except BrokenPipeError:
        # `pdc-lint ... | head` closed the pipe; the verdict still stands.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def _emit_stats(engine: object, args: argparse.Namespace) -> None:
    snapshot = engine.stats()
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.stats:
        # A WholeProgramEngine wraps the per-file engine; stats lines
        # cite the inner engine's prefix/pass either way.
        inner = getattr(engine, "engine", engine)
        prefix = inner.prefix
        wall = snapshot.get(f"{prefix}.wall_seconds", {})
        by_rule = {
            name.split(".rule.", 1)[1]: value
            for name, value in snapshot.items()
            if f"{prefix}.rule." in name
        }
        lines = [
            f"files: {snapshot.get(f'{prefix}.files.planned', 0)} planned, "
            f"{snapshot.get(f'{prefix}.files.analyzed', 0)} analyzed",
            f"cache: {snapshot.get(f'{prefix}.cache.hits', 0)} hits, "
            f"{snapshot.get(f'{prefix}.cache.misses', 0)} misses",
            f"wall clock: {wall.get('sum', 0.0):.3f}s "
            f"over {int(wall.get('count', 0))} run(s), jobs="
            f"{int(snapshot.get(f'{prefix}.jobs', 1))}",
            "findings by rule: "
            + (
                ", ".join(f"{r}={c}" for r, c in sorted(by_rule.items()))
                or "none"
            ),
        ]
        if any(name.startswith("analysis.ip.") for name in snapshot):
            lines += [
                "whole-program: "
                f"{int(snapshot.get('analysis.ip.modules', 0))} modules, "
                f"{int(snapshot.get('analysis.ip.scc.count', 0))} SCCs",
                "summaries: "
                f"{snapshot.get('analysis.ip.summary.hits', 0)} hits, "
                f"{snapshot.get('analysis.ip.summary.misses', 0)} misses",
                "cones: "
                f"{snapshot.get('analysis.ip.scc.hits', 0)} replayed, "
                f"{snapshot.get('analysis.ip.scc.analyzed', 0)} analyzed",
                "whole-program findings: "
                f"{snapshot.get('analysis.ip.findings', 0)} "
                f"({snapshot.get('analysis.ip.suppressed', 0)} suppressed)",
            ]
        print("\n".join(f"[{inner.pass_.tool} stats] {ln}" for ln in lines),
              file=sys.stderr)


def _baseline_key(payload: dict) -> tuple:
    return (
        payload.get("path"),
        payload.get("line"),
        payload.get("col"),
        payload.get("rule"),
        payload.get("symbol", ""),
        payload.get("message", ""),
    )


def apply_baseline(
    report: EngineReport, mode: str, path: str
) -> EngineReport:
    """``write``: capture the report's findings to ``path``.  ``check``:
    drop findings exactly matching the capture (counted as suppressed).
    """
    if mode == "write":
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {"findings": [f.as_dict() for f in report.findings]},
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
        return report
    with open(path, "r", encoding="utf-8") as fh:
        known = {_baseline_key(d) for d in json.load(fh)["findings"]}
    kept = [
        f for f in report.findings if _baseline_key(f.as_dict()) not in known
    ]
    return EngineReport(
        findings=kept,
        files=report.files,
        suppressed=report.suppressed + (len(report.findings) - len(kept)),
        errors=report.errors,
        outcomes=report.outcomes,
        units=report.units,
    )


def _drive(
    args: argparse.Namespace,
    pass_: AnalyzerPass,
    units: List[WorkUnit],
    pre_errors: List[str],
    watch_paths: Optional[List[str]] = None,
    whole_program: bool = False,
) -> int:
    baseline = getattr(args, "baseline", None)
    if baseline is not None and baseline[0] not in ("write", "check"):
        raise SystemExit(
            f"--baseline mode must be 'write' or 'check', got {baseline[0]!r}"
        )
    cache = None
    if not args.no_cache:
        cache = FindingsCache(args.cache_dir or default_cache_dir())

    def _finish(report: EngineReport) -> EngineReport:
        if baseline is not None:
            report = apply_baseline(report, baseline[0], baseline[1])
        return report

    if whole_program:
        from repro.analysis.ip.analyzer import IP_VERSION
        from repro.analysis.ip.cache import SummaryCache
        from repro.analysis.ip.engine import WholeProgramEngine

        summary_cache = None
        if not args.no_cache:
            summary_cache = SummaryCache(
                args.cache_dir or default_cache_dir(), IP_VERSION
            )
        engine = WholeProgramEngine(
            pass_,
            cache=cache,
            summary_cache=summary_cache,
            jobs=args.jobs,
        )
        inner, post = engine.engine, engine.finalize
    else:
        engine = AnalysisEngine(pass_, cache=cache, jobs=args.jobs)
        inner, post = engine, None

    if args.watch and watch_paths:
        watcher = Watcher(
            inner,
            watch_paths,
            on_report=lambda r: _print_report(
                render_report(pass_, args.format, _finish(r))
            ),
            post=post,
        )
        try:
            watcher.run_forever(interval=args.interval)
        except KeyboardInterrupt:
            pass
        _emit_stats(engine, args)
        return 0
    report = _finish(engine.run(units, pre_errors))
    _print_report(render_report(pass_, args.format, report))
    _emit_stats(engine, args)
    if baseline is not None and baseline[0] == "write":
        # Capturing a baseline is bookkeeping, not a gate: exit clean
        # unless the inputs themselves were unreadable.
        return 2 if report.errors else 0
    return report.exit_code


def run_lint(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> int:
    """Everything ``pdc-lint`` does after argument parsing."""
    pass_ = LintPass(
        select=[s for s in (args.select or "").split(",") if s.strip()] or None
    )
    if args.list_rules:
        _print_report(pass_.rule_table())
        return 0
    whole_program = bool(getattr(args, "whole_program", False))
    if getattr(args, "crossval", False):
        if not whole_program:
            parser.error("--crossval requires --whole-program")
        if args.format == "sarif":
            parser.error("--crossval supports text and json only")
        from repro.analysis.ip.crossval import run_ip_crossval_cli

        return run_ip_crossval_cli(args.format)
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")
    units, pre_errors = expand_paths(args.paths)
    return _drive(
        args,
        pass_,
        units,
        pre_errors,
        watch_paths=args.paths,
        whole_program=whole_program,
    )


def run_san(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> int:
    """Everything ``pdc-san`` does after argument parsing."""
    pass_ = SanitizePass(entry=args.entry)
    if args.list_rules:
        _print_report(pass_.rule_table())
        return 0
    if args.crossval:
        if args.format == "sarif":
            parser.error("--crossval supports text and json only")
        from repro.sanitizers.crossval import run_crossval_cli

        return run_crossval_cli(args.format)
    if not (args.paths or args.fixture or args.corpus):
        parser.error(
            "nothing to run (give paths, --fixture, --corpus, or --crossval)"
        )
    names = list(args.fixture)
    if args.corpus:
        from repro.smp.fixtures import all_fixtures

        names.extend(
            f.name
            for f in all_fixtures()
            if (f.dynamic_entry or f.entrypoints) and f.name not in names
        )
    units = [WorkUnit.fixture(n) for n in names]
    units.extend(WorkUnit.file(p) for p in args.paths)
    return _drive(
        args, pass_, units, [], watch_paths=args.paths if args.paths else None
    )


def run_verify(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> int:
    """Everything ``pdc-verify`` does after argument parsing."""
    pass_ = VerifyPass(
        entry=args.entry,
        mode=args.mode,
        max_schedules=args.max_schedules,
        max_steps=args.max_steps,
    )
    if args.list_rules:
        _print_report(pass_.rule_table())
        return 0
    if args.replay:
        from repro.verify.explorer import replay_fixture, replay_source

        if args.fixture:
            run = replay_fixture(args.fixture[0], args.replay)
        elif args.paths:
            with open(args.paths[0], "r", encoding="utf-8") as fh:
                run = replay_source(
                    fh.read(), args.replay,
                    path=args.paths[0], entry=args.entry,
                )
        else:
            parser.error("--replay needs a --fixture or one path")
        for finding in run.findings:
            print(finding)
        for error in run.errors:
            print(f"error: {error}", file=sys.stderr)
        print(f"schedule: {run.schedule}")
        return run.exit_code
    if args.crossval:
        if args.format == "sarif":
            parser.error("--crossval supports text and json only")
        from repro.verify.crossval import run_verify_crossval_cli

        return run_verify_crossval_cli(
            args.format, mode=args.mode, stats_path=args.stats_json
        )
    if not (args.paths or args.fixture or args.corpus):
        parser.error(
            "nothing to check (give paths, --fixture, --corpus, or --crossval)"
        )
    names = list(args.fixture)
    if args.corpus:
        from repro.smp.fixtures import all_fixtures

        names.extend(
            f.name
            for f in all_fixtures()
            if (f.dynamic_entry or f.entrypoints) and f.name not in names
        )
    units = [WorkUnit.fixture(n) for n in names]
    units.extend(WorkUnit.file(p) for p in args.paths)
    return _drive(
        args, pass_, units, [], watch_paths=args.paths if args.paths else None
    )

"""Per-function control-flow graphs over ``ast``, plus a dataflow solver.

Every statement of a function becomes one node; compound statements
(``if``/``while``/``for``/``with``/``try``/``match``) become a *header*
node whose successors are the entry nodes of their bodies.  ``with``
statements additionally get a synthetic ``WITH_EXIT`` node on the fall-out
edge, so scoped effects (releasing a lock) have a place to live — the
property :mod:`repro.analysis.lockmodel` relies on.

The exception model is deliberately coarse: a ``try`` header has an edge
straight to every handler (as if the body could raise before doing
anything), which is the *conservative* direction for must-hold lockset
analysis — a lock acquired inside the body is never assumed held in the
handler.  ``return``/``raise`` jump to the synthetic exit node without
unwinding ``finally`` blocks; that costs nothing for the intersection-based
analyses built on top.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

__all__ = ["NodeKind", "CFGNode", "ControlFlowGraph", "build_cfg", "solve_forward"]


class NodeKind(enum.Enum):
    """What a CFG node represents."""

    ENTRY = "entry"
    EXIT = "exit"
    STMT = "stmt"
    WITH_EXIT = "with-exit"  # synthetic: leaving a with-block's scope


@dataclasses.dataclass
class CFGNode:
    """One node: a statement (or synthetic marker) and its successor ids."""

    index: int
    kind: NodeKind
    stmt: Optional[ast.stmt]
    succ: List[int] = dataclasses.field(default_factory=list)


class ControlFlowGraph:
    """A statement-level CFG with distinguished entry and exit nodes."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new(NodeKind.ENTRY, None)
        self.exit = self._new(NodeKind.EXIT, None)

    def _new(self, kind: NodeKind, stmt: Optional[ast.stmt]) -> int:
        node = CFGNode(index=len(self.nodes), kind=kind, stmt=stmt)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succ:
            self.nodes[src].succ.append(dst)

    def preds(self) -> List[List[int]]:
        """Predecessor lists, indexed like :attr:`nodes`."""
        table: List[List[int]] = [[] for _ in self.nodes]
        for node in self.nodes:
            for s in node.succ:
                table[s].append(node.index)
        return table

    def statement_nodes(self) -> List[CFGNode]:
        """All non-synthetic nodes (each carries a real ``ast.stmt``)."""
        return [n for n in self.nodes if n.kind is NodeKind.STMT]


_LOOP_HEADERS = (ast.While, ast.For, ast.AsyncFor)


class _Builder:
    """Wires statement lists back-to-front so each node knows its follow."""

    def __init__(self) -> None:
        self.g = ControlFlowGraph()
        # (continue_target, break_target) per enclosing loop
        self._loops: List[Tuple[int, int]] = []

    def build(self, body: List[ast.stmt]) -> ControlFlowGraph:
        first = self._wire_body(body, self.g.exit)
        self.g._edge(self.g.entry, first)
        return self.g

    def _wire_body(self, stmts: List[ast.stmt], follow: int) -> int:
        entry = follow
        for stmt in reversed(stmts):
            entry = self._wire_stmt(stmt, entry)
        return entry

    def _wire_stmt(self, stmt: ast.stmt, follow: int) -> int:
        g = self.g
        if isinstance(stmt, ast.If):
            n = g._new(NodeKind.STMT, stmt)
            g._edge(n, self._wire_body(stmt.body, follow))
            g._edge(n, self._wire_body(stmt.orelse, follow) if stmt.orelse else follow)
            return n
        if isinstance(stmt, _LOOP_HEADERS):
            n = g._new(NodeKind.STMT, stmt)
            exit_ = self._wire_body(stmt.orelse, follow) if stmt.orelse else follow
            self._loops.append((n, exit_))
            g._edge(n, self._wire_body(stmt.body, n))
            self._loops.pop()
            g._edge(n, exit_)
            return n
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            leave = g._new(NodeKind.WITH_EXIT, stmt)
            g._edge(leave, follow)
            n = g._new(NodeKind.STMT, stmt)
            g._edge(n, self._wire_body(stmt.body, leave))
            return n
        if isinstance(stmt, ast.Try) or stmt.__class__.__name__ == "TryStar":
            fin = self._wire_body(stmt.finalbody, follow) if stmt.finalbody else follow
            after_body = self._wire_body(stmt.orelse, fin) if stmt.orelse else fin
            n = g._new(NodeKind.STMT, stmt)
            g._edge(n, self._wire_body(stmt.body, after_body))
            for handler in stmt.handlers:
                g._edge(n, self._wire_body(handler.body, fin))
            return n
        if isinstance(stmt, ast.Match):
            n = g._new(NodeKind.STMT, stmt)
            for case in stmt.cases:
                g._edge(n, self._wire_body(case.body, follow))
            g._edge(n, follow)  # no case may match
            return n
        if isinstance(stmt, (ast.Return, ast.Raise)):
            n = g._new(NodeKind.STMT, stmt)
            g._edge(n, g.exit)
            return n
        if isinstance(stmt, ast.Break):
            n = g._new(NodeKind.STMT, stmt)
            g._edge(n, self._loops[-1][1] if self._loops else g.exit)
            return n
        if isinstance(stmt, ast.Continue):
            n = g._new(NodeKind.STMT, stmt)
            g._edge(n, self._loops[-1][0] if self._loops else g.exit)
            return n
        # Nested defs/classes are opaque single statements: each function
        # gets its own CFG; we never descend here.
        n = g._new(NodeKind.STMT, stmt)
        g._edge(n, follow)
        return n


def build_cfg(func: ast.AST) -> ControlFlowGraph:
    """Build the CFG of a function (or any object with a ``body`` list)."""
    body = getattr(func, "body", None)
    if not isinstance(body, list):
        raise TypeError(f"cannot build a CFG for {type(func).__name__}")
    return _Builder().build(body)


def solve_forward(
    cfg: ControlFlowGraph,
    transfer: Callable[[CFGNode, FrozenSet[str]], FrozenSet[str]],
    init: FrozenSet[str] = frozenset(),
) -> Dict[int, FrozenSet[str]]:
    """Forward must-analysis: meet = set intersection, to a fixpoint.

    Returns the **in**-set of every reachable node.  Unreached predecessors
    contribute nothing (the standard "top = all" treatment, realized by
    skipping them), so the result is the set of facts that hold on *every*
    path reaching the node — exactly what a "locks certainly held" analysis
    wants.
    """
    preds = cfg.preds()
    in_: Dict[int, FrozenSet[str]] = {cfg.entry: init}
    out: Dict[int, FrozenSet[str]] = {}
    worklist = [cfg.entry]
    while worklist:
        idx = worklist.pop()
        node = cfg.nodes[idx]
        if idx == cfg.entry:
            node_in = init
        else:
            avail = [out[p] for p in preds[idx] if p in out]
            if not avail:
                continue
            node_in = frozenset.intersection(*avail)
        in_[idx] = node_in
        node_out = transfer(node, node_in)
        if out.get(idx) != node_out:
            out[idx] = node_out
            worklist.extend(node.succ)
        else:
            # Revisit successors still missing an in-set (first visit may
            # have been skipped for lack of any available predecessor).
            worklist.extend(s for s in node.succ if s not in in_)
    return in_

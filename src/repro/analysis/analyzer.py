"""The PDC-Lint driver: module contexts, file walking, rule dispatch.

A :class:`ModuleContext` is everything the rules need to know about one
module: its AST, its :class:`~repro.analysis.lockmodel.LockModel`, every
function definition with qualified names, which functions are *thread
targets* (``threading.Thread(target=f)``, ``executor.submit(f)``,
``start_new_thread(f)``), the call-graph closure of those targets (the
*concurrent* set), and which targets are spawned more than once (in a
loop, a comprehension, or at two or more sites) — the distinction that
lets the static Eraser treat a single multiply-spawned worker as racing
with itself.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lockmodel import LockModel, dotted_name
from repro.analysis.report import Finding, apply_suppressions

__all__ = [
    "FunctionInfo",
    "SpawnSite",
    "ModuleContext",
    "AnalysisResult",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOOPY = (
    ast.For,
    ast.While,
    ast.AsyncFor,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


@dataclasses.dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    qualname: str
    node: ast.AST
    owner_class: Optional[str]
    lineno: int

    @property
    def is_init(self) -> bool:
        """Constructors run before threads exist (happens-before spawn)."""
        return self.name in ("__init__", "__new__", "__post_init__")


@dataclasses.dataclass(frozen=True)
class SpawnSite:
    """One thread-creation site.

    ``target`` is the simple name the per-file closure keys on;
    ``dotted`` is the alias-resolved dotted form (``worker.run`` after
    ``import worker``) that whole-program analysis resolves across
    files.  ``func`` is the enclosing function's simple name
    (``"<module>"`` for top-level spawns).
    """

    target: str
    dotted: str
    lineno: int
    in_loop: bool
    func: str


class ModuleContext:
    """Everything the rules see about one module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lockmodel = LockModel(tree)
        self.functions: List[FunctionInfo] = []
        self.imports: Dict[str, str] = {}  # local alias -> canonical dotted name
        self._spawns: List[SpawnSite] = []
        self._calls: Dict[str, Set[str]] = {}  # caller simple name -> callees
        self._scan()
        self.thread_targets: Set[str] = {s.target for s in self._spawns}
        self.multi_spawned: Set[str] = self._find_multi_spawned()
        self.concurrent: Set[str] = self._closure(self.thread_targets)
        #: Functions reachable from a multiply-spawned target: they run in
        #: several threads at once even if only one function accesses them.
        self.multi_concurrent: Set[str] = self._closure(self.multi_spawned)

    @classmethod
    def build(cls, path: str, source: str) -> "ModuleContext":
        """Parse and index one module."""
        return cls(path, source, ast.parse(source, filename=path))

    # -- scanning ---------------------------------------------------------
    def _scan(self) -> None:
        self._scan_imports()
        self._walk_functions(self.tree.body, prefix="", owner=None)
        # Module-level code spawns threads too (scripts, fixtures, demos).
        self._index_body("<module>", self.tree.body)

    def _scan_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def _walk_functions(
        self, body: Sequence[ast.stmt], prefix: str, owner: Optional[str]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, _FUNC_NODES):
                qual = f"{prefix}{stmt.name}"
                self.functions.append(
                    FunctionInfo(
                        name=stmt.name,
                        qualname=qual,
                        node=stmt,
                        owner_class=owner,
                        lineno=stmt.lineno,
                    )
                )
                self._index_function(stmt)
                self._walk_functions(stmt.body, prefix=f"{qual}.", owner=owner)
            elif isinstance(stmt, ast.ClassDef):
                self._walk_functions(
                    stmt.body, prefix=f"{prefix}{stmt.name}.", owner=stmt.name
                )

    def _index_function(self, func: ast.AST) -> None:
        self._index_body(func.name, getattr(func, "body", []))

    def _index_body(self, caller: str, body: Sequence[ast.stmt]) -> None:
        """Record spawn sites and same-module calls made by ``caller``."""
        callees = self._calls.setdefault(caller, set())

        def visit(node: ast.AST, in_loop: bool) -> None:
            if isinstance(node, _FUNC_NODES):
                return  # nested defs are indexed on their own
            if isinstance(node, ast.Call):
                target = self._spawn_target(node)
                if target is not None:
                    dotted = self.resolve_name(target)
                    if dotted is not None:
                        self._spawns.append(
                            SpawnSite(
                                target=dotted.split(".")[-1],
                                dotted=dotted,
                                lineno=node.lineno,
                                in_loop=in_loop,
                                func=caller,
                            )
                        )
                callee = self._callee_name(node)
                if callee is not None:
                    callees.add(callee)
            loops = in_loop or isinstance(node, _LOOPY)
            for child in ast.iter_child_nodes(node):
                visit(child, loops)

        for stmt in body:
            visit(stmt, in_loop=False)

    def _spawn_target(self, call: ast.Call) -> Optional[ast.expr]:
        """The expression this call hands to a thread as its target."""
        fn = self.resolve_call(call)
        if fn is not None and fn.split(".")[-1] == "Thread":
            for kw in call.keywords:
                if kw.arg == "target":
                    return kw.value
            return None
        if fn is not None and fn.endswith("start_new_thread") and call.args:
            return call.args[0]
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "submit"
            and call.args
        ):
            return call.args[0]
        return None

    def _callee_name(self, call: ast.Call) -> Optional[str]:
        if isinstance(call.func, ast.Name):
            return call.func.id
        if isinstance(call.func, ast.Attribute) and isinstance(
            call.func.value, ast.Name
        ):
            if call.func.value.id == "self":
                return call.func.attr
        return None

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Canonical dotted name of the called function, through aliases.

        ``sleep(1)`` after ``from time import sleep`` resolves to
        ``time.sleep``; ``t.sleep(1)`` after ``import time as t`` too.
        """
        return self.resolve_name(call.func)

    def resolve_name(self, expr: ast.expr) -> Optional[str]:
        """Alias-resolved dotted name of any name/attribute expression."""
        name = dotted_name(expr)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        canonical = self.imports.get(head, head)
        return f"{canonical}.{rest}" if rest else canonical

    # -- concurrency classification ---------------------------------------
    def _find_multi_spawned(self) -> Set[str]:
        counts: Dict[str, int] = {}
        multi: Set[str] = set()
        for spawn in self._spawns:
            counts[spawn.target] = counts.get(spawn.target, 0) + 1
            if spawn.in_loop:
                multi.add(spawn.target)
        multi.update(t for t, c in counts.items() if c >= 2)
        return multi

    def _closure(self, roots: Set[str]) -> Set[str]:
        seen: Set[str] = set()
        frontier = [r for r in roots if r]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(self._calls.get(name, ()))
        return seen

    def spawn_sites(self) -> List[SpawnSite]:
        """Every thread-creation site, with alias-resolved targets."""
        return list(self._spawns)

    def function_named(self, name: str) -> Optional[FunctionInfo]:
        """The first function with this simple name, if any."""
        for info in self.functions:
            if info.name == name:
                return info
        return None

    def locksets(self, func: ast.AST) -> Dict[int, FrozenSet[str]]:
        """Lockset at entry of every statement of ``func`` (cached)."""
        return self.lockmodel.locksets(func)


@dataclasses.dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    findings: List[Finding]
    files: int
    suppressed: int
    errors: List[str]

    @property
    def exit_code(self) -> int:
        """0 clean · 1 findings · 2 unreadable/unparsable input."""
        if self.errors:
            return 2
        return 1 if self.findings else 0


def _run_rules(
    ctx: ModuleContext, select: Optional[Sequence[str]]
) -> List[Finding]:
    from repro.analysis.rules import default_registry

    findings: List[Finding] = []
    for rule in default_registry().selected(select):
        findings.extend(rule.check(ctx))
    return findings


def analyze_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Analyze one module's source; suppression comments are honored."""
    ctx = ModuleContext.build(path, source)
    kept, _ = apply_suppressions(_run_rules(ctx, select), source)
    return sorted(kept)


def analyze_file(
    path: str, select: Optional[Sequence[str]] = None
) -> AnalysisResult:
    """Analyze one file on disk."""
    return analyze_paths([path], select=select)


def iter_python_files(paths: Iterable[str]) -> Tuple[List[str], List[str]]:
    """Expand files and directory trees into a sorted ``*.py`` list."""
    files: List[str] = []
    errors: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d not in ("__pycache__", ".git")]
                files.extend(
                    os.path.join(root, n) for n in sorted(names)
                    if n.endswith(".py")
                )
        elif os.path.isfile(path):
            files.append(path)
        else:
            errors.append(f"{path}: no such file or directory")
    return files, errors


#: Backward-compatible alias (pre-whole-program name).
_iter_python_files = iter_python_files


def analyze_paths(
    paths: Sequence[str], select: Optional[Sequence[str]] = None
) -> AnalysisResult:
    """Analyze files and directory trees (recursing into ``*.py``)."""
    files, errors = iter_python_files(paths)
    findings: List[Finding] = []
    suppressed = 0
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            errors.append(f"{path}: {exc}")
            continue
        try:
            kept, dropped = apply_suppressions(
                _run_rules(ModuleContext.build(path, source), select), source
            )
        except SyntaxError as exc:
            errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
            continue
        findings.extend(kept)
        suppressed += len(dropped)
    return AnalysisResult(
        findings=sorted(findings),
        files=len(files),
        suppressed=suppressed,
        errors=errors,
    )

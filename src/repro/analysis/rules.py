"""The pluggable rule engine and the concurrency-hygiene rules.

A :class:`Rule` inspects one :class:`~repro.analysis.analyzer.ModuleContext`
and yields :class:`~repro.analysis.report.Finding` objects.  Rules register
themselves on the default :class:`RuleRegistry` with the :func:`rule`
decorator; new rules (course-specific style checks, assignment-specific
bans) plug in the same way, which is the point of the engine.

Rule inventory
--------------
========  =======================================================
PDC101    potential data race (static Eraser, :mod:`.races`)
PDC102    lock-order cycle / ABBA deadlock (:mod:`.lockorder`)
PDC201    bare ``acquire()`` with no ``with`` / ``try…finally``
PDC202    ``time.sleep`` inside a critical section
PDC203    ``notify``/``wait`` without holding the condition's lock
PDC204    double-checked locking
PDC205    mutable default argument on a thread-reachable function
PDC206    ``join()`` while holding a lock
PDC207    busy-wait spin loop
PDC208    re-acquiring a held non-reentrant lock (self-deadlock)
PDC209    blocking call (stdin/subprocess/network) under a lock
PDC210    wall-clock read in a module written against an injected Clock
========  =======================================================

The PDC3xx family (dynamic findings from :mod:`repro.sanitizers`) shares
the same :class:`~repro.analysis.report.Finding` model and renderers but
is *not* registered here: those diagnoses come from execution, not from
a static pass over a module.
"""

from __future__ import annotations

import abc
import ast
from typing import Dict, Iterator, List, Optional, Sequence, Type

from repro.analysis.analyzer import FunctionInfo, ModuleContext
from repro.analysis.lockmodel import dotted_name, iter_statements, own_nodes
from repro.analysis.report import Finding, Severity

__all__ = ["Rule", "RuleRegistry", "rule", "default_registry"]


class Rule(abc.ABC):
    """One diagnostic pass over a module."""

    id: str = "PDC000"
    name: str = "abstract"
    summary: str = ""
    severity: Severity = Severity.WARNING

    @abc.abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""

    def make(
        self, ctx: ModuleContext, node: ast.AST, message: str, symbol: str = ""
    ) -> Finding:
        """A finding of this rule anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            severity=self.severity,
            symbol=symbol,
        )


class RuleRegistry:
    """Holds rule classes; instantiates them per run."""

    def __init__(self) -> None:
        self._rules: Dict[str, Type[Rule]] = {}

    def register(self, rule_cls: Type[Rule]) -> Type[Rule]:
        if rule_cls.id in self._rules:
            raise ValueError(f"duplicate rule id {rule_cls.id}")
        self._rules[rule_cls.id] = rule_cls
        return rule_cls

    def rules(self) -> List[Rule]:
        """Every registered rule, by id."""
        return [self._rules[k]() for k in sorted(self._rules)]

    def selected(self, select: Optional[Sequence[str]]) -> List[Rule]:
        """Rules whose id starts with any selector (``None`` = all).

        ``select=["PDC2"]`` picks the whole hygiene family; an exact id
        picks one rule.
        """
        if not select:
            return self.rules()
        prefixes = tuple(s.strip().upper() for s in select if s.strip())
        return [r for r in self.rules() if r.id.startswith(prefixes)]


_DEFAULT = RuleRegistry()


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: register on the default registry."""
    return _DEFAULT.register(cls)


def default_registry() -> RuleRegistry:
    """The registry with every built-in rule loaded."""
    # The analysis rules live in their own modules; importing them here
    # (not at module import) avoids a cycle and keeps them pluggable.
    from repro.analysis import lockorder, races  # noqa: F401

    return _DEFAULT


def _func_statements_with_locks(ctx: ModuleContext, info: FunctionInfo):
    locksets = ctx.locksets(info.node)
    for stmt in iter_statements(info.node):
        yield stmt, locksets.get(id(stmt), frozenset())


def _calls_in(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Calls made by this statement itself (nested statements excluded —
    they carry their own, possibly larger, locksets)."""
    for node in own_nodes(stmt):
        if isinstance(node, ast.Call):
            yield node


#: Methods that *implement* lock primitives manage lock state across
#: methods by design; intra-procedural pairing rules skip them.
_PRIMITIVE_METHODS = {
    "acquire", "release", "__enter__", "__exit__",
    "lock", "unlock", "P", "V",
}


@rule
class BareAcquireRule(Rule):
    """PDC201: ``lock.acquire()`` with no ``with`` block or try/finally."""

    id = "PDC201"
    name = "bare-acquire"
    summary = (
        "a blocking acquire() whose release is not exception-safe; "
        "use `with lock:` or pair it with try/finally"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for info in ctx.functions:
            if info.name in _PRIMITIVE_METHODS:
                continue
            yield from self._check_body(ctx, info.node.body, protected=frozenset())

    def _check_body(self, ctx, body, protected) -> Iterator[Finding]:
        lm = ctx.lockmodel
        for i, stmt in enumerate(body):
            if isinstance(stmt, ast.Try):
                inner = protected | self._finally_releases(lm, stmt)
                for field in (stmt.body, stmt.orelse):
                    yield from self._check_body(ctx, field, inner)
                for handler in stmt.handlers:
                    yield from self._check_body(ctx, handler.body, protected)
                yield from self._check_body(ctx, stmt.finalbody, protected)
                continue
            lock = lm.call_acquisition(stmt)
            if lock is not None and lock not in protected:
                nxt = body[i + 1] if i + 1 < len(body) else None
                if not (
                    isinstance(nxt, ast.Try)
                    and lock in self._finally_releases(lm, nxt)
                ):
                    yield self.make(
                        ctx,
                        stmt,
                        f"`{lock}.acquire()` is not exception-safe: use "
                        f"`with {lock}:` or release in a try/finally",
                        symbol=lock,
                    )
            for child_body in self._compound_bodies(stmt):
                yield from self._check_body(ctx, child_body, protected)

    @staticmethod
    def _compound_bodies(stmt: ast.stmt):
        for field in ("body", "orelse"):
            child = getattr(stmt, field, None)
            if isinstance(child, list) and child and isinstance(child[0], ast.stmt):
                yield child
        for case in getattr(stmt, "cases", []) or []:
            yield case.body

    @staticmethod
    def _finally_releases(lm, try_stmt: ast.Try) -> frozenset:
        released = set()
        for stmt in try_stmt.finalbody:
            lock = lm.call_release(stmt)
            if lock is not None:
                released.add(lock)
        return frozenset(released)


@rule
class SleepUnderLockRule(Rule):
    """PDC202: sleeping while holding a lock serializes everyone else."""

    id = "PDC202"
    name = "sleep-under-lock"
    summary = "time.sleep() inside a critical section stalls all waiters"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for info in ctx.functions:
            for stmt, held in _func_statements_with_locks(ctx, info):
                if not held:
                    continue
                for call in _calls_in(stmt):
                    if ctx.resolve_call(call) == "time.sleep":
                        yield self.make(
                            ctx,
                            call,
                            f"time.sleep() while holding "
                            f"{{{', '.join(sorted(held))}}} stalls every "
                            "waiter; sleep outside the critical section",
                            symbol=",".join(sorted(held)),
                        )


@rule
class NotifyOutsideLockRule(Rule):
    """PDC203: Condition methods require the condition's lock."""

    id = "PDC203"
    name = "notify-outside-lock"
    summary = (
        "notify/wait on a Condition whose lock is not held raises "
        "RuntimeError at runtime"
    )
    severity = Severity.ERROR

    _METHODS = {"notify", "notify_all", "wait", "wait_for"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        tracked = {
            c.name for c in ctx.lockmodel.conditions() if not c.external_lock
        }
        if not tracked:
            return
        for info in ctx.functions:
            for stmt, held in _func_statements_with_locks(ctx, info):
                for call in _calls_in(stmt):
                    if not (
                        isinstance(call.func, ast.Attribute)
                        and call.func.attr in self._METHODS
                    ):
                        continue
                    cond = dotted_name(call.func.value)
                    if cond in tracked and cond not in held:
                        yield self.make(
                            ctx,
                            call,
                            f"`{cond}.{call.func.attr}()` outside "
                            f"`with {cond}:` — the condition's lock must be "
                            "held (RuntimeError otherwise)",
                            symbol=cond,
                        )


@rule
class DoubleCheckedLockingRule(Rule):
    """PDC204: check-lock-recheck reads the flag unsynchronized."""

    id = "PDC204"
    name = "double-checked-locking"
    summary = (
        "test outside the lock + identical test inside it: the outer read "
        "is an unsynchronized racy read"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for info in ctx.functions:
            for stmt in iter_statements(info.node):
                if not isinstance(stmt, ast.If):
                    continue
                outer_test = ast.dump(stmt.test)
                for inner in stmt.body:
                    if not ctx.lockmodel.with_locks(inner):
                        continue
                    for nested in inner.body:  # type: ignore[attr-defined]
                        if (
                            isinstance(nested, ast.If)
                            and ast.dump(nested.test) == outer_test
                        ):
                            yield self.make(
                                ctx,
                                nested,
                                "double-checked locking: the outer check of "
                                f"`{ast.unparse(stmt.test)}` runs without the "
                                "lock; take the lock first (or use a dedicated "
                                "once-primitive)",
                            )


@rule
class MutableDefaultSharedRule(Rule):
    """PDC205: one default object, every thread."""

    id = "PDC205"
    name = "mutable-default-shared"
    summary = (
        "a mutable default argument on a thread-reachable function is a "
        "single object shared (unlocked) by every thread"
    )

    _MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for info in ctx.functions:
            if info.name not in ctx.concurrent:
                continue
            args = info.node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if self._mutable(default):
                    yield self.make(
                        ctx,
                        default,
                        f"mutable default on thread-reachable `{info.name}` is "
                        "evaluated once and shared by every thread; default to "
                        "None and allocate inside the function",
                        symbol=info.qualname,
                    )

    def _mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
        )


@rule
class JoinUnderLockRule(Rule):
    """PDC206: joining a thread that needs your lock never returns."""

    id = "PDC206"
    name = "join-under-lock"
    summary = (
        "thread.join() inside a critical section deadlocks if the joined "
        "thread ever needs that lock"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for info in ctx.functions:
            for stmt, held in _func_statements_with_locks(ctx, info):
                if not held:
                    continue
                for call in _calls_in(stmt):
                    if self._is_thread_join(call):
                        yield self.make(
                            ctx,
                            call,
                            f"join() while holding "
                            f"{{{', '.join(sorted(held))}}}: if the joined "
                            "thread needs the lock this never returns; join "
                            "outside the critical section",
                        )

    @staticmethod
    def _is_thread_join(call: ast.Call) -> bool:
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "join"
            and isinstance(call.func.value, (ast.Name, ast.Attribute))
        ):
            return False
        # str.join takes the iterable positionally; Thread.join takes at
        # most a (possibly keyword) numeric timeout.
        if len(call.args) > 1:
            return False
        if call.args and not isinstance(call.args[0], (ast.Constant, ast.Name)):
            return False
        if call.args and isinstance(call.args[0], ast.Constant):
            if not isinstance(call.args[0].value, (int, float, type(None))):
                return False
        return all(kw.arg == "timeout" for kw in call.keywords)


@rule
class SpinWaitRule(Rule):
    """PDC207: a pass-only while loop burns the GIL."""

    id = "PDC207"
    name = "busy-wait"
    summary = (
        "empty-bodied while loop busy-waits; use threading.Event/Condition "
        "(or at least sleep) instead"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for info in ctx.functions:
            for stmt in iter_statements(info.node):
                if isinstance(stmt, ast.While) and all(
                    isinstance(s, (ast.Pass, ast.Continue)) for s in stmt.body
                ):
                    yield self.make(
                        ctx,
                        stmt,
                        f"busy-wait on `{ast.unparse(stmt.test)}`: spinning "
                        "burns the GIL and starves the writer; block on an "
                        "Event or Condition",
                    )


@rule
class BlockingCallUnderLockRule(Rule):
    """PDC209: blocking I/O inside a critical section."""

    id = "PDC209"
    name = "blocking-call-under-lock"
    summary = (
        "a call that blocks on the outside world (stdin, subprocess, "
        "network request) inside a critical section stalls every waiter "
        "for unbounded time"
    )

    #: Canonical dotted names that block on the outside world.
    #: ``time.sleep`` is deliberately absent (PDC202's diagnosis), as are
    #: ``.join`` (PDC206) and ``.get`` (dictionary lookups under a lock
    #: are idiomatic and queue gets are often intentional rendezvous).
    _BLOCKING_CALLS = {
        "input",
        "os.system", "os.wait", "os.waitpid",
        "subprocess.run", "subprocess.call",
        "subprocess.check_call", "subprocess.check_output",
        "urllib.request.urlopen",
        "requests.get", "requests.post", "requests.put",
        "requests.delete", "requests.request",
        "socket.create_connection",
    }
    #: Method names that block regardless of the receiver's type.
    _BLOCKING_METHODS = {"recv", "recvfrom", "accept", "getresponse"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for info in ctx.functions:
            if info.name in _PRIMITIVE_METHODS:
                continue
            for stmt, held in _func_statements_with_locks(ctx, info):
                if not held:
                    continue
                for call in _calls_in(stmt):
                    label = self._blocking_label(ctx, call)
                    if label is not None:
                        yield self.make(
                            ctx,
                            call,
                            f"`{label}` blocks on the outside world while "
                            f"holding {{{', '.join(sorted(held))}}}; move the "
                            "blocking call outside the critical section",
                            symbol=label,
                        )

    def _blocking_label(
        self, ctx: ModuleContext, call: ast.Call
    ) -> Optional[str]:
        resolved = ctx.resolve_call(call)
        if resolved in self._BLOCKING_CALLS:
            return f"{resolved}()"
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in self._BLOCKING_METHODS
        ):
            return f".{call.func.attr}()"
        return None


@rule
class WallClockRule(Rule):
    """PDC210: wall-clock reads in code written against an injected Clock."""

    id = "PDC210"
    name = "wallclock-in-clocked-code"
    summary = (
        "time.time()/monotonic()/perf_counter() in a clock-injected module "
        "bypasses the injected Clock and breaks deterministic replay"
    )

    _WALLCLOCK = {
        "time.time", "time.monotonic", "time.perf_counter",
        "time.time_ns", "time.monotonic_ns", "time.perf_counter_ns",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self._clock_aware(ctx.tree):
            return
        for info in ctx.functions:
            for stmt in iter_statements(info.node):
                for call in _calls_in(stmt):
                    resolved = ctx.resolve_call(call)
                    if resolved in self._WALLCLOCK:
                        yield self.make(
                            ctx,
                            call,
                            f"`{resolved}()` reads the wall clock in a module "
                            "written against an injected Clock; route the "
                            "read through the clock so replays stay "
                            "deterministic",
                            symbol=resolved,
                        )

    @staticmethod
    def _clock_aware(tree: ast.Module) -> bool:
        """Whether the module opted into clock injection: it imports a
        Clock type from :mod:`repro.runtime`, takes a ``clock`` parameter,
        stores ``self.clock``/``self._clock``, or subclasses ``Clock``."""
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.startswith("repro.runtime") and any(
                    "Clock" in alias.name for alias in node.names
                ):
                    return True
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                params = (
                    list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)
                )
                if any(p.arg == "clock" for p in params):
                    return True
            elif isinstance(node, ast.ClassDef):
                for base in node.bases:
                    if (isinstance(base, ast.Name) and base.id == "Clock") or (
                        isinstance(base, ast.Attribute) and base.attr == "Clock"
                    ):
                        return True
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store)
                and node.attr in {"clock", "_clock"}
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
        return False


@rule
class RelockRule(Rule):
    """PDC208: re-acquiring a held ``Lock`` deadlocks the holder itself."""

    id = "PDC208"
    name = "relock-self-deadlock"
    summary = (
        "acquiring a non-reentrant lock already held on every path here "
        "blocks forever"
    )
    severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for info in ctx.functions:
            for acq in ctx.lockmodel.acquisitions(info.node):
                lock = ctx.lockmodel.locks.get(acq.lock)
                if lock is None or lock.kind != "lock":
                    continue
                if acq.lock in acq.held_before:
                    yield self.make(
                        ctx,
                        acq.stmt,
                        f"`{acq.lock}` is already held here; a plain Lock is "
                        "not reentrant, so this blocks forever (use RLock or "
                        "restructure)",
                        symbol=acq.lock,
                    )

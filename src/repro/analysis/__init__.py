"""PDC-Lint: static concurrency analysis for Python teaching code.

The repo teaches races, deadlock, and synchronization *dynamically*
(:mod:`repro.smp.racedetect` is an Eraser lockset detector,
:mod:`repro.smp.deadlock` audits lock orders at runtime,
:mod:`repro.smp.interleave` enumerates every schedule) — but all of those
need the program to *run*.  This package closes the loop the paper's
case-study courses (LAU §IV-A, AUC §IV-B) leave open: feedback on
concurrent code **before** execution, from the AST alone.

Layers
------
- :mod:`repro.analysis.cfg` — per-function control-flow graphs over ``ast``
  plus a generic forward dataflow solver.
- :mod:`repro.analysis.lockmodel` — recognizes ``threading`` lock creation
  and acquisition idioms and computes the lockset held at every statement.
- :mod:`repro.analysis.races` — a *static* Eraser: shared-state candidates
  whose write sites share no common lock are potential data races (PDC101).
- :mod:`repro.analysis.lockorder` — static lock-order graph; cycles are
  ABBA deadlock potential (PDC102), cross-validated against the dynamic
  :class:`repro.smp.deadlock.LockGraph`.
- :mod:`repro.analysis.rules` — the pluggable rule engine and eight
  syntactic concurrency-hygiene rules (PDC201–PDC208).
- :mod:`repro.analysis.report` — findings, per-line suppressions
  (``# pdc-lint: disable=PDC101 -- why``), and text/JSON renderers.
- :mod:`repro.analysis.analyzer` — the driver gluing it all together.

Run it as ``python -m repro.analysis <path>`` or via the ``pdc-lint``
console script; the autograder (:mod:`repro.pedagogy.autograder`) can run
it as an optional static pre-check stage on submissions.
"""

from repro.analysis.analyzer import (
    AnalysisResult,
    ModuleContext,
    analyze_file,
    analyze_paths,
    analyze_source,
)
from repro.analysis.report import (
    Finding,
    Severity,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.rules import Rule, RuleRegistry, default_registry

__all__ = [
    "AnalysisResult",
    "ModuleContext",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "Finding",
    "Severity",
    "render_json",
    "render_sarif",
    "render_text",
    "Rule",
    "RuleRegistry",
    "default_registry",
]

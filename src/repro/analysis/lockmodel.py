"""Recognizing ``threading`` locks and computing locksets statically.

Two halves:

- **Discovery** — scan a module for names bound to ``threading.Lock()``,
  ``RLock()``, ``Condition()``, ``Semaphore()``, ``BoundedSemaphore()``
  (bare or attribute form, module level, function level, or ``self.x =``
  inside methods).  Aliased locks (``b = a``) and locks received as
  parameters are deliberately out of scope; the discovered set is what all
  downstream passes reason about.
- **Locksets** — a forward must-analysis over the function's CFG
  (:func:`repro.analysis.cfg.solve_forward`): ``with lock:`` holds the lock
  for exactly the body, a blocking ``lock.acquire()`` statement holds it
  from that point on, ``lock.release()`` drops it.  Non-blocking tries
  (``acquire(blocking=False)``, ``acquire(False)``) prove nothing and are
  ignored.  The result maps every statement to the set of locks *certainly*
  held when it starts — empty-intersection reasoning then powers the static
  Eraser (:mod:`repro.analysis.races`) and the hygiene rules.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.cfg import CFGNode, NodeKind, build_cfg, solve_forward

__all__ = [
    "LockInfo",
    "LockModel",
    "dotted_name",
    "Acquisition",
    "iter_statements",
    "own_nodes",
]


def own_nodes(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Nodes belonging to ``stmt`` itself, not to nested statements.

    ``ast.walk`` would descend into a compound statement's body and
    attribute inner expressions to the outer statement — wrong for any
    per-statement lockset query, because the body runs under locks the
    header does not hold.
    """
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.stmt):
                stack.append(child)


def iter_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """Every statement in ``func``'s body, not descending into nested defs."""
    stack: List[ast.stmt] = list(getattr(func, "body", []))
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, field, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            stack.extend(handler.body)
        for case in getattr(stmt, "cases", []) or []:
            stack.extend(case.body)

#: ``threading`` factory callables that create a lock-like object.
LOCK_FACTORIES = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore",
}


def dotted_name(expr: ast.expr) -> Optional[str]:
    """``a``, ``self.x``, ``a.b.c`` — or ``None`` for anything fancier."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclasses.dataclass(frozen=True)
class LockInfo:
    """One discovered lock: its dotted name and what kind of lock it is."""

    name: str
    kind: str  # one of LOCK_FACTORIES' values
    lineno: int
    #: ``Condition(existing_lock)`` — lock management is delegated to an
    #: external mutex this analysis cannot track across methods.
    external_lock: bool = False

    @property
    def reentrant(self) -> bool:
        """RLocks may be re-acquired by the holder (PDC208 exemption)."""
        return self.kind == "rlock"


@dataclasses.dataclass(frozen=True)
class Acquisition:
    """One static acquisition site of a discovered lock."""

    lock: str
    stmt: ast.stmt
    lineno: int
    col: int
    via_with: bool
    #: Locks certainly held when this acquisition starts.
    held_before: FrozenSet[str]


def _factory_kind(call: ast.expr) -> Optional[Tuple[str, bool]]:
    """``(kind, has_args)`` if ``call`` constructs a lock, else ``None``."""
    if not isinstance(call, ast.Call):
        return None
    fn = call.func
    name = fn.attr if isinstance(fn, ast.Attribute) else (
        fn.id if isinstance(fn, ast.Name) else None
    )
    if name not in LOCK_FACTORIES:
        return None
    return LOCK_FACTORIES[name], bool(call.args or call.keywords)


class LockModel:
    """All lock knowledge about one module."""

    def __init__(self, tree: ast.Module) -> None:
        self.locks: Dict[str, LockInfo] = {}
        self._collect(tree)
        self._lockset_cache: Dict[int, Dict[int, FrozenSet[str]]] = {}

    # -- discovery --------------------------------------------------------
    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            found = _factory_kind(value)
            if found is None:
                continue
            kind, has_args = found
            for target in targets:
                name = dotted_name(target)
                if name is None:
                    continue
                self.locks[name] = LockInfo(
                    name=name,
                    kind=kind,
                    lineno=node.lineno,
                    external_lock=(kind == "condition" and has_args),
                )

    def is_lock(self, name: Optional[str]) -> bool:
        """Whether ``name`` is a discovered lock-like object."""
        return name is not None and name in self.locks

    def conditions(self) -> List[LockInfo]:
        """The discovered condition variables."""
        return [i for i in self.locks.values() if i.kind == "condition"]

    # -- acquisition idioms ----------------------------------------------
    def with_locks(self, stmt: ast.stmt) -> List[str]:
        """Discovered locks acquired by a ``with`` statement's items."""
        if not isinstance(stmt, (ast.With, ast.AsyncWith)):
            return []
        names = []
        for item in stmt.items:
            name = dotted_name(item.context_expr)
            if self.is_lock(name):
                names.append(name)
        return names

    def call_acquisition(self, stmt: ast.stmt) -> Optional[str]:
        """The lock a blocking ``x.acquire()`` expression-statement takes."""
        call = self._method_call(stmt, "acquire")
        if call is None:
            return None
        if self._nonblocking(call):
            return None
        return dotted_name(call.func.value)  # type: ignore[attr-defined]

    def call_release(self, stmt: ast.stmt) -> Optional[str]:
        """The lock a ``x.release()`` expression-statement drops."""
        call = self._method_call(stmt, "release")
        if call is None:
            return None
        return dotted_name(call.func.value)  # type: ignore[attr-defined]

    def _method_call(self, stmt: ast.stmt, method: str) -> Optional[ast.Call]:
        if not isinstance(stmt, ast.Expr):
            return None
        call = stmt.value
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == method
            and self.is_lock(dotted_name(call.func.value))
        ):
            return call
        return None

    @staticmethod
    def _nonblocking(call: ast.Call) -> bool:
        if call.args:
            first = call.args[0]
            if isinstance(first, ast.Constant) and first.value is False:
                return True
        for kw in call.keywords:
            if kw.arg == "blocking":
                return not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is True
                )
        return False

    # -- lockset dataflow -------------------------------------------------
    def locksets(self, func: ast.AST) -> Dict[int, FrozenSet[str]]:
        """Map ``id(stmt)`` -> locks certainly held when ``stmt`` starts.

        Covers every statement in ``func``'s body, however deeply nested in
        compound statements.  Results are cached per function node.
        """
        cached = self._lockset_cache.get(id(func))
        if cached is not None:
            return cached
        cfg = build_cfg(func)
        node_in = solve_forward(cfg, self._transfer)
        result: Dict[int, FrozenSet[str]] = {}
        for node in cfg.statement_nodes():
            if node.index in node_in and node.stmt is not None:
                result[id(node.stmt)] = node_in[node.index]
        self._lockset_cache[id(func)] = result
        return result

    def _transfer(self, node: CFGNode, held: FrozenSet[str]) -> FrozenSet[str]:
        if node.kind is NodeKind.WITH_EXIT:
            return held - frozenset(self.with_locks(node.stmt))
        if node.kind is not NodeKind.STMT or node.stmt is None:
            return held
        stmt = node.stmt
        acquired = self.with_locks(stmt)
        if acquired:
            return held | frozenset(acquired)
        taken = self.call_acquisition(stmt)
        if taken is not None:
            return held | {taken}
        dropped = self.call_release(stmt)
        if dropped is not None:
            return held - {dropped}
        return held

    def exit_lockset(self, func: ast.AST) -> FrozenSet[str]:
        """Locks certainly still held when ``func`` falls off its end.

        A bare ``acquire()`` with no release on some path shows up here;
        whole-program summaries use it to propagate leaked locks to
        callers.
        """
        cfg = build_cfg(func)
        node_in = solve_forward(cfg, self._transfer)
        return node_in.get(cfg.exit, frozenset())

    def acquisitions(self, func: ast.AST) -> Iterator[Acquisition]:
        """Every acquisition site in ``func``, with the lockset before it."""
        locksets = self.locksets(func)
        for stmt in self._all_statements(func):
            held = locksets.get(id(stmt), frozenset())
            for name in self.with_locks(stmt):
                yield Acquisition(
                    lock=name,
                    stmt=stmt,
                    lineno=stmt.lineno,
                    col=stmt.col_offset,
                    via_with=True,
                    held_before=held,
                )
            taken = self.call_acquisition(stmt)
            if taken is not None:
                yield Acquisition(
                    lock=taken,
                    stmt=stmt,
                    lineno=stmt.lineno,
                    col=stmt.col_offset,
                    via_with=False,
                    held_before=held,
                )

    _all_statements = staticmethod(iter_statements)

"""The static Eraser: lockset-based data-race candidates (PDC101).

The dynamic detector (:class:`repro.smp.racedetect.LocksetRaceDetector`)
intersects the locks held at each *observed* access; this pass does the
same over *all* syntactic access sites, before the program ever runs:

1. Shared-state candidates are module globals (written under a ``global``
   declaration), ``nonlocal`` cells, and ``self.`` attributes — the state a
   thread-target function can reach that other threads reach too.
2. An access site's lockset comes from the must-hold dataflow
   (:meth:`~repro.analysis.lockmodel.LockModel.locksets`).
3. Only accesses in *concurrent* functions (thread targets and everything
   they call) participate.  A candidate is *shared* when two distinct
   concurrent functions touch it, or when its single accessor is spawned
   more than once — N copies of ``worker`` race with each other.  It is
   *racy* when it is shared, some write exists, and the intersection of
   locksets over its concurrent access sites is empty.

Constructor accesses (``__init__`` et al.) and main-thread harness code
are ignored: they are ordered by the thread ``start()``/``join()``
happens-before edges this analysis cannot see.
Like every lockset analysis this one cannot certify ad-hoc synchronization
(flags, ``turn`` variables — Peterson's algorithm): such programs are
flagged even when a model checker proves them race-free, which is exactly
the Eraser trade-off the labs teach.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.analyzer import FunctionInfo, ModuleContext
from repro.analysis.lockmodel import iter_statements, own_nodes
from repro.analysis.report import Finding, Severity
from repro.analysis.rules import Rule, rule

__all__ = ["StaticRaceRule", "collect_accesses", "Access"]

VarKey = Tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class Access:
    """One syntactic access to a shared-state candidate."""

    var: VarKey
    write: bool
    func: str  # simple function name ("" for module level)
    lineno: int
    lockset: FrozenSet[str]
    in_init: bool


def _module_globals(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for t in targets:
            if isinstance(t, ast.Name):
                names.add(t.id)
            elif isinstance(t, ast.Tuple):
                names.update(e.id for e in t.elts if isinstance(e, ast.Name))
    return names


def _declared(func: ast.AST, kind: type) -> Set[str]:
    found: Set[str] = set()
    for stmt in iter_statements(func):
        if isinstance(stmt, kind):
            found.update(stmt.names)
    return found


def _local_names(func: ast.AST, escaping: Set[str]) -> Set[str]:
    """Parameters plus names the function binds without global/nonlocal."""
    args = func.args
    names = {
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    }
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.add(extra.arg)
    for stmt in iter_statements(func):
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                names.add(node.id)
    return names - escaping


def collect_accesses(ctx: ModuleContext) -> Dict[VarKey, List[Access]]:
    """Every access to every shared-state candidate in the module."""
    module_globals = _module_globals(ctx.tree)
    table: Dict[VarKey, List[Access]] = {}

    for info in ctx.functions:
        globals_ = _declared(info.node, ast.Global)
        nonlocals = _declared(info.node, ast.Nonlocal)
        escaping = globals_ | nonlocals
        locals_ = _local_names(info.node, escaping)
        locksets = ctx.locksets(info.node)

        for stmt in iter_statements(info.node):
            held = locksets.get(id(stmt), frozenset())
            callee_ids = {
                id(c.func) for c in own_nodes(stmt) if isinstance(c, ast.Call)
            }
            for node in own_nodes(stmt):
                key = self_attr = None
                write = False
                if isinstance(node, ast.Name):
                    write = isinstance(node.ctx, (ast.Store, ast.Del))
                    if node.id in globals_:
                        key = ("global", node.id)
                    elif node.id in nonlocals:
                        key = ("nonlocal", node.id)
                    elif (
                        not write
                        and node.id in module_globals
                        and node.id not in locals_
                    ):
                        key = ("global", node.id)
                elif (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and info.owner_class is not None
                    and id(node) not in callee_ids  # self.method() is a call
                ):
                    write = isinstance(node.ctx, (ast.Store, ast.Del))
                    self_attr = f"self.{node.attr}"
                    key = ("attr", info.owner_class, node.attr)
                if key is None:
                    continue
                # Lock objects themselves are synchronization, not data.
                if ctx.lockmodel.is_lock(self_attr or node.id):  # type: ignore[union-attr]
                    continue
                # AugAssign targets are read-modify-write: record the write,
                # which subsumes the read for lockset intersection.
                table.setdefault(key, []).append(
                    Access(
                        var=key,
                        write=write,
                        func=info.name,
                        lineno=node.lineno,
                        lockset=held,
                        in_init=info.is_init,
                    )
                )
    return table


def _display(var: VarKey) -> str:
    if var[0] == "attr":
        return f"self.{var[2]} (class {var[1]})"
    return var[1]


@rule
class StaticRaceRule(Rule):
    """PDC101: shared state written with an empty common lockset."""

    id = "PDC101"
    name = "static-race"
    summary = (
        "shared state written from concurrent code with no consistently "
        "held lock (static Eraser)"
    )
    severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.thread_targets:
            return
        for var, accesses in sorted(collect_accesses(ctx).items()):
            finding = self._judge(ctx, var, accesses)
            if finding is not None:
                yield finding

    def _judge(
        self, ctx: ModuleContext, var: VarKey, accesses: List[Access]
    ) -> Optional[Finding]:
        # Only thread-reachable accesses participate: the main thread's
        # spawn-join-assert harness reads/writes are ordered by the start()
        # and join() happens-before edges this analysis cannot see, and
        # flagging them would make every test harness a false positive.
        live = [
            a for a in accesses if not a.in_init and a.func in ctx.concurrent
        ]
        writes = [a for a in live if a.write]
        if not writes:
            return None
        funcs = sorted({a.func for a in live})
        shared = len(funcs) >= 2 or any(
            f in ctx.multi_concurrent for f in funcs
        )
        if not shared:
            return None
        candidate = frozenset.intersection(*(a.lockset for a in live))
        if candidate:
            return None
        first = min(writes, key=lambda a: a.lineno)
        return Finding(
            path=ctx.path,
            line=first.lineno,
            col=0,
            rule=self.id,
            message=(
                f"potential data race on `{_display(var)}`: written from "
                f"concurrent code with an empty candidate lockset "
                f"(accessed in: {', '.join(funcs)}); hold one common lock "
                "at every access"
            ),
            severity=self.severity,
            symbol=_display(var),
        )

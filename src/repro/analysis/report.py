"""Findings, suppressions, and reporters for PDC-Lint.

A :class:`Finding` is one diagnostic at one source location.  Students (and
this repo's own self-lint) can silence a finding *with a justification* by
putting a suppression comment on the flagged line::

    counter += 1  # pdc-lint: disable=PDC101 -- intentionally racy lab

``disable=all`` silences every rule on that line.  Anything after ``--`` is
the human justification; the analyzer does not require it, but this repo's
convention (and the autograder's advice to students) is that a suppression
without a reason is a smell.  ``# pdc:`` and ``# pdc-san:`` are accepted
prefixes too — one comment grammar across the whole lint → sanitize →
verify ladder.

Whole-program findings span several locations: a cross-module race has a
declaration site, access sites, and the spawn site that made them
concurrent.  Those ride along as the finding's :attr:`Finding.trace` — an
ordered tuple of :class:`TraceStep` — rendered as SARIF ``codeFlows`` /
``relatedLocations``, and a suppression comment at *any* step's line
silences the finding (either endpoint is a legitimate place to say "I
know").
"""

from __future__ import annotations

import dataclasses
import enum
import json
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Severity",
    "TraceStep",
    "Finding",
    "parse_suppressions",
    "apply_suppressions",
    "render_text",
    "render_json",
    "render_sarif",
]


class Severity(enum.Enum):
    """How bad a finding is (JSON reporters emit the value string)."""

    ERROR = "error"  # likely defect: race, deadlock potential
    WARNING = "warning"  # risky idiom: bare acquire, sleep under lock
    ADVICE = "advice"  # style-of-concurrency guidance


@dataclasses.dataclass(frozen=True)
class TraceStep:
    """One location along a whole-program finding's evidence chain."""

    path: str
    line: int
    #: What happened here ("spawned as a thread", "write under {a}", ...).
    note: str

    def as_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "note": self.note}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TraceStep":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            note=str(payload.get("note", "")),
        )


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule firing at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str = dataclasses.field(compare=False)
    severity: Severity = dataclasses.field(default=Severity.WARNING, compare=False)
    #: The program entity involved (variable, lock, function) — machine use.
    symbol: str = dataclasses.field(default="", compare=False)
    #: Whole-program findings carry their cross-module evidence chain;
    #: single-file findings leave it empty (and serialize without it).
    trace: Tuple[TraceStep, ...] = dataclasses.field(
        default=(), compare=False
    )

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of the text format."""
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        payload: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "symbol": self.symbol,
        }
        if self.trace:
            payload["trace"] = [s.as_dict() for s in self.trace]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        """Inverse of :meth:`as_dict` (the engine cache round-trips it)."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            rule=str(payload["rule"]),
            message=str(payload["message"]),
            severity=Severity(payload["severity"]),
            symbol=str(payload.get("symbol", "")),
            trace=tuple(
                TraceStep.from_dict(s)
                for s in payload.get("trace", ())  # type: ignore[union-attr]
            ),
        )


_SUPPRESS_RE = re.compile(
    r"#\s*pdc(?:-lint|-san)?:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?|all)"
    r"\s*(?:--.*)?$"
)


def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule ids (``None`` means *all* rules).

    Only the physical line carrying the comment is suppressed; findings
    anchor to the line of the offending node, so put the comment there.
    """
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        spec = m.group("rules").strip()
        if spec.lower() == "all":
            table[lineno] = None
        else:
            table[lineno] = {r.strip().upper() for r in spec.split(",") if r.strip()}
    return table


def apply_suppressions(
    findings: Iterable[Finding], source: str
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (kept, suppressed) per the source's comments."""
    table = parse_suppressions(source)
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for f in findings:
        rules = table.get(f.line, ...)
        if rules is ... :
            kept.append(f)
        elif rules is None or f.rule in rules:
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


def render_text(
    findings: Sequence[Finding],
    files: int = 0,
    suppressed: int = 0,
    errors: Sequence[str] = (),
) -> str:
    """The human format: one ``path:line:col: RULE message`` per finding,
    with a whole-program finding's evidence chain indented beneath it."""
    lines = []
    for f in sorted(findings):
        lines.append(
            f"{f.location()}: {f.rule} [{f.severity.value}] {f.message}"
        )
        lines.extend(f"    {s.path}:{s.line}: {s.note}" for s in f.trace)
    lines.extend(f"error: {e}" for e in errors)
    noun = "finding" if len(findings) == 1 else "findings"
    tail = f"{len(findings)} {noun}"
    if files:
        tail += f" in {files} file{'s' if files != 1 else ''}"
    if suppressed:
        tail += f" ({suppressed} suppressed)"
    lines.append(tail)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    files: int = 0,
    suppressed: int = 0,
    errors: Sequence[str] = (),
    tool: str = "pdc-lint",
) -> str:
    """The machine format: findings plus a per-rule summary."""
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    payload = {
        "tool": tool,
        "files": files,
        "suppressed": suppressed,
        "errors": list(errors),
        "summary": dict(sorted(by_rule.items())),
        "findings": [f.as_dict() for f in sorted(findings)],
    }
    return json.dumps(payload, indent=2)


_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.ADVICE: "note",
}


def _sarif_location(step: TraceStep) -> Dict[str, object]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": step.path},
            "region": {"startLine": max(step.line, 1)},
        },
        "message": {"text": step.note},
    }


def render_sarif(
    findings: Sequence[Finding],
    files: int = 0,
    suppressed: int = 0,
    errors: Sequence[str] = (),
    tool: str = "pdc-lint",
    rules: Optional[Sequence[Tuple[str, str, str]]] = None,
) -> str:
    """SARIF 2.1.0 — the interchange format CI code-scanning ingests.

    ``rules`` is optional ``(id, name, summary)`` driver metadata; rule
    ids appearing only in ``findings`` still get a minimal entry, so the
    log is self-contained either way.  SARIF columns are 1-based where
    :class:`Finding` columns are 0-based.
    """
    meta: Dict[str, Tuple[str, str]] = {
        rid: (name, summary) for rid, name, summary in (rules or ())
    }
    for f in findings:
        meta.setdefault(f.rule, (f.rule, f.message))
    driver_rules = [
        {
            "id": rid,
            "name": name,
            "shortDescription": {"text": summary},
        }
        for rid, (name, summary) in sorted(meta.items())
    ]
    results = []
    for f in sorted(findings):
        result: Dict[str, object] = {
            "ruleId": f.rule,
            "level": _SARIF_LEVEL[f.severity],
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        if f.trace:
            # Whole-program findings: each evidence step is a related
            # location, and the ordered chain is one thread flow — the
            # SARIF shape code-scanning UIs walk step by step.
            result["relatedLocations"] = [
                _sarif_location(step) for step in f.trace
            ]
            result["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {"location": _sarif_location(step)}
                                for step in f.trace
                            ]
                        }
                    ]
                }
            ]
        results.append(result)
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {"driver": {"name": tool, "rules": driver_rules}},
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not errors,
                        "toolExecutionNotifications": [
                            {"level": "error", "message": {"text": e}}
                            for e in errors
                        ],
                    }
                ],
                "properties": {"files": files, "suppressed": suppressed},
            }
        ],
    }
    return json.dumps(payload, indent=2)

"""PDC-Ed: parallel & distributed computing education, made executable.

A reproduction of *"ABET Accreditation: A Way Forward for PDC Education"*
(Aly, Raj, Harmanani, Sharafeddine -- EduPar/IPDPS 2021) as a production
library.  Two halves:

- :mod:`repro.core` -- the paper's contribution: machine-readable curricular
  guidelines (CS2013, CC2020, CE2016, SE2014), ABET accreditation criteria,
  course/program models, the 20-program survey analysis (Figs. 2-3), the
  concept-to-course mapping (Table I), and the three case-study programs.

- The teaching substrate -- runnable implementations of every PDC topic the
  mapped courses teach: :mod:`repro.smp` (shared memory), :mod:`repro.mp`
  (message passing), :mod:`repro.gpu` (SIMT manycore), :mod:`repro.arch`
  (architecture simulators), :mod:`repro.oskernel` (scheduling &
  synchronization), :mod:`repro.db` (transaction concurrency),
  :mod:`repro.net` (networks & client-server), :mod:`repro.dist`
  (distributed algorithms), :mod:`repro.algorithms` (parallel algorithms &
  work-span analysis), :mod:`repro.pedagogy` (labs, autograding, ABET
  outcome assessment), and :mod:`repro.analysis` (PDC-Lint, the static
  concurrency analyzer: races, lock-order cycles, locking hygiene — the
  pre-execution feedback loop, runnable as ``pdc-lint``).

Underneath both halves sits :mod:`repro.runtime` — the deterministic
execution & observability substrate (metric registry, clock abstraction,
seeded RNG streams, structured tracing, and the :class:`RunContext`
bundle every instrumented subsystem accepts), so one seed reproduces a
whole multi-subsystem lab and one trace shows it.

Subpackages are imported on demand (``from repro import mp``) rather than
eagerly here, so ``import repro`` stays cheap.
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "runtime",
    "smp",
    "mp",
    "gpu",
    "arch",
    "oskernel",
    "db",
    "net",
    "dist",
    "algorithms",
    "pedagogy",
    "analysis",
]

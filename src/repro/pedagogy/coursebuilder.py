"""Assemble the case-study courses as runnable syllabi of labs.

The LAU course's three parts (§IV-A: foundations; multicore/OpenMP;
manycore/CUDA at ~60%) and the RIT breadth course's units (§IV-C:
threads; networks; security; distributed; parallel) become
:class:`Syllabus` objects whose units carry the lab exercises of
:mod:`repro.pedagogy.labs` — a dedicated-course and a breadth-course
instantiation of the same machinery.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.pedagogy.exercise import Exercise
from repro.pedagogy.labs import standard_labs

__all__ = ["SyllabusUnit", "Syllabus", "build_lau_course", "build_rit_course"]


@dataclasses.dataclass(frozen=True)
class SyllabusUnit:
    """One part/unit of a course: a share of the term plus its labs."""

    title: str
    weight: float  # fraction of the course
    lab_ids: Sequence[str]

    def __post_init__(self) -> None:
        if not 0 < self.weight <= 1:
            raise ValueError("weight must be in (0, 1]")


@dataclasses.dataclass
class Syllabus:
    """A course as an ordered set of units over the lab library."""

    course_title: str
    units: List[SyllabusUnit]
    labs: Dict[str, Exercise]

    def __post_init__(self) -> None:
        total = sum(u.weight for u in self.units)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"unit weights must sum to 1 (got {total})")
        for unit in self.units:
            for lab_id in unit.lab_ids:
                if lab_id not in self.labs:
                    raise KeyError(f"unknown lab {lab_id!r} in {unit.title!r}")

    def exercises(self) -> List[Exercise]:
        """All labs of the course, in unit order (no duplicates)."""
        seen: List[Exercise] = []
        ids: set = set()
        for unit in self.units:
            for lab_id in unit.lab_ids:
                if lab_id not in ids:
                    ids.add(lab_id)
                    seen.append(self.labs[lab_id])
        return seen

    def unit_for(self, lab_id: str) -> SyllabusUnit:
        """Which unit a lab belongs to (first occurrence)."""
        for unit in self.units:
            if lab_id in unit.lab_ids:
                return unit
        raise KeyError(f"lab {lab_id!r} not in syllabus")


def _lab_index() -> Dict[str, Exercise]:
    return {e.exercise_id: e for e in standard_labs()}


def build_lau_course() -> Syllabus:
    """LAU's dedicated parallel-programming course (§IV-A).

    Three parts; the manycore part carries ~60% of the course, exactly as
    the paper describes.
    """
    return Syllabus(
        course_title="CSC447 Parallel Programming (LAU)",
        units=[
            SyllabusUnit(
                "Part 1 — History and driving forces of PDC",
                weight=0.15,
                lab_ids=["arch-amdahl", "algo-work-span"],
            ),
            SyllabusUnit(
                "Part 2 — Multicore programming (Pthreads/OpenMP)",
                weight=0.25,
                lab_ids=["smp-atomic-counter", "smp-lock-order",
                         "smp-bounded-buffer"],
            ),
            SyllabusUnit(
                "Part 3 — Manycore programming (SIMT) and clusters",
                weight=0.60,
                lab_ids=["gpu-coalesced-double", "mp-pi"],
            ),
        ],
        labs=_lab_index(),
    )


def build_rit_course() -> Syllabus:
    """RIT's Concepts of Parallel and Distributed Systems (§IV-C).

    The breadth design: five interleaved units, none in depth, covering
    multithreading, networking, security-adjacent protocol work,
    distributed systems, and parallel computing.
    """
    return Syllabus(
        course_title="CSCI251 Concepts of Parallel and Distributed Systems (RIT)",
        units=[
            SyllabusUnit(
                "Multithreaded computing",
                weight=0.25,
                lab_ids=["smp-atomic-counter", "smp-lock-order",
                         "smp-bounded-buffer"],
            ),
            SyllabusUnit(
                "Networked computers and protocols",
                weight=0.25,
                lab_ids=["net-kv-protocol"],
            ),
            SyllabusUnit(
                "Distributed systems and middleware",
                weight=0.2,
                lab_ids=["mp-pi"],
            ),
            SyllabusUnit(
                "Transactions and coordination",
                weight=0.15,
                lab_ids=["db-serializable-interleaving"],
            ),
            SyllabusUnit(
                "Parallel computing architectures",
                weight=0.15,
                lab_ids=["arch-amdahl", "os-scheduler-pick", "algo-work-span"],
            ),
        ],
        labs=_lab_index(),
    )

"""The fault-tolerance lab: grading resilience, not just correctness.

The accreditation argument (paper §V) wants distributed *challenges* —
not just algorithms that work, but students who can make a call survive
a dependency that sometimes does not answer.  This lab grades exactly
that skill against :mod:`repro.faults`:

- full credit: the submission recovers from transient failures **and**
  gives up, visibly, on a permanently dead dependency within a bounded
  call budget (unbounded retry is an outage amplifier);
- half credit: it recovers but either retries forever or swallows a
  permanent failure;
- zero: it cannot deliver the value at all.

Kept out of :func:`~repro.pedagogy.labs.standard_labs` (whose ten-lab
contract is load-bearing for the outcome-coverage tests); courses append
it explicitly, which mirrors how the fault-tolerance week is an add-on
unit in the surveyed curricula.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.taxonomy import PdcTopic
from repro.faults.errors import Unavailable
from repro.faults.policies import Retry
from repro.pedagogy.exercise import Exercise

__all__ = ["fault_tolerance_lab"]

#: Calls a submission may spend on a dead dependency before we call its
#: retry loop unbounded.
_CALL_BUDGET = 64


def _check_resilient_call(harden: Callable[[Callable[[], Any]], Any]) -> float:
    """Submission: ``harden(flaky) -> value`` — call a zero-arg callable
    that raises :class:`~repro.faults.errors.Unavailable` transiently,
    and return its eventual value.

    Scored in two scenarios: a dependency that recovers after three
    failures (must return its value), and one that never recovers (must
    surface a failure within :data:`_CALL_BUDGET` calls, not loop or
    swallow it).
    """
    transient = {"calls": 0}

    def flaky() -> str:
        transient["calls"] += 1
        if transient["calls"] <= 3:
            raise Unavailable("transient outage")
        return "ok"

    try:
        if harden(flaky) != "ok":
            return 0.0
    except Exception:  # noqa: BLE001 - failing submission scores zero
        return 0.0

    dead = {"calls": 0}

    def never_up() -> str:
        dead["calls"] += 1
        if dead["calls"] > _CALL_BUDGET:
            # Escape hatch so an unbounded-retry submission terminates;
            # tripping it is itself the evidence of unboundedness.
            raise RuntimeError("retry budget blown: unbounded retry loop")
        raise Unavailable("still down")

    try:
        harden(never_up)
    except Exception:  # noqa: BLE001 - giving up loudly is the right move
        pass
    else:
        return 0.5  # swallowed a permanent failure: caller can't react
    if dead["calls"] > _CALL_BUDGET:
        return 0.5  # only "gave up" because the harness pulled the plug
    return 1.0


def _reference_resilient_call(flaky: Callable[[], Any]) -> Any:
    # Bounded attempts, no real sleeping: the grader runs on wall time.
    return Retry(attempts=8, base_delay=0.0)(flaky)()


def fault_tolerance_lab() -> Exercise:
    """The eleventh lab: wrap an unreliable call so transient failures
    are retried and permanent ones surface within a bounded budget."""
    return Exercise(
        "faults-resilient-call",
        "Write harden(flaky) that returns flaky()'s value through "
        "transient Unavailable failures, but surfaces a failure (raises) "
        "within a bounded number of calls when the dependency never "
        "recovers.",
        _check_resilient_call,
        points=15,
        topics=[PdcTopic.CLIENT_SERVER, PdcTopic.IPC],
        outcome_numbers=(1, 2),
        reference=_reference_resilient_call,
        modules=("repro.faults.policies", "repro.faults.plan"),
    )

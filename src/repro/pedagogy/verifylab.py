"""The model-checking lab: a fix must be *proved*, not just re-run.

The pedagogy gap this lab closes (and the syllabi surveys in PAPERS.md
measure): students learn to write concurrent code, rarely to reason
about *all* of its interleavings.  A test that passes shows one lucky
schedule; the distinction between "my test passed" and "no schedule can
fail" is the competency.

The exercise hands the student a racy bank-transfer module as *source
text* and asks for a repaired module (also source text).  The checker
(:mod:`repro.verify`) grades it on three rungs:

- zero: some interleaving still loses an update or deadlocks — the
  grade report carries the failing schedule token, and
  ``pdc-verify --replay TOKEN`` shows the student their bug happening,
  deterministically, every time;
- half credit: no failure was found but the schedule tree could not be
  drained (busy-wait loops make it infinite) — the fix merely survived
  a bounded search;
- full credit: the checker *proved* the fix — every interleaving
  explored, none fails.

Used with ``Autograder(verify_gate=True)`` the same bar applies
lab-wide: the gate scores a submission zero until the proof goes
through.  Kept out of :func:`~repro.pedagogy.labs.standard_labs` (its
ten-lab contract is load-bearing); courses append it explicitly.
"""

from __future__ import annotations

import textwrap

from repro.core.taxonomy import PdcTopic
from repro.pedagogy.exercise import Exercise

__all__ = ["model_checking_lab", "RACY_TRANSFER_SOURCE"]

#: The handed-out buggy module: two unlocked read-modify-write updates.
RACY_TRANSFER_SOURCE = textwrap.dedent('''
    """Transfer between two accounts — loses updates under contention."""
    import threading

    balance_a = 100
    balance_b = 100


    def move_ab() -> None:
        global balance_a, balance_b
        balance_a -= 10
        balance_b += 10


    def move_ba() -> None:
        global balance_a, balance_b
        balance_b -= 10
        balance_a += 10


    def main() -> int:
        first = threading.Thread(target=move_ab)
        second = threading.Thread(target=move_ba)
        first.start(); second.start()
        first.join(); second.join()
        return balance_a + balance_b
''').lstrip()

_REFERENCE_FIX = textwrap.dedent('''
    """Transfer between two accounts — one lock orders every update."""
    import threading

    balance_a = 100
    balance_b = 100
    ledger_lock = threading.Lock()


    def move_ab() -> None:
        global balance_a, balance_b
        with ledger_lock:
            balance_a -= 10
            balance_b += 10


    def move_ba() -> None:
        global balance_a, balance_b
        with ledger_lock:
            balance_b -= 10
            balance_a += 10


    def main() -> int:
        first = threading.Thread(target=move_ab)
        second = threading.Thread(target=move_ba)
        first.start(); second.start()
        first.join(); second.join()
        return balance_a + balance_b
''').lstrip()


def _check_proved_fix(source: str) -> float:
    """Submission: the repaired module, as source text."""
    from repro.verify.explorer import ExploreBudget, explore_source

    result = explore_source(
        str(source),
        path="<submission:verify-proved-fix>",
        entry="main",
        mode="dpor",
        budget=ExploreBudget(max_schedules=500, max_steps_per_task=200),
    )
    if result.findings or result.errors:
        return 0.0
    if not result.proved:
        return 0.5  # clean so far, but that is a bounded search, not a proof
    return 1.0


def model_checking_lab() -> Exercise:
    """The twelfth lab: repair the racy transfer module so the model
    checker can prove no interleaving loses an update or deadlocks."""
    return Exercise(
        "verify-proved-fix",
        "The module in RACY_TRANSFER_SOURCE loses updates: both transfer "
        "functions read-modify-write the balances with no ordering. "
        "Submit a repaired module (source text) with the same entry "
        "points. Full credit only when pdc-verify proves the fix — "
        "every interleaving explored, none races or deadlocks. A fix "
        "that survives a bounded search (e.g. because it busy-waits) "
        "earns half credit; a reachable failure earns zero and a "
        "schedule token that replays it.",
        _check_proved_fix,
        points=15,
        topics=[PdcTopic.ATOMICITY, PdcTopic.SHARED_MEMORY_PROGRAMMING],
        outcome_numbers=(1, 2),
        reference=_REFERENCE_FIX,
        modules=("repro.verify.explorer", "repro.verify.scheduler"),
    )

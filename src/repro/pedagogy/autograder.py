"""The autograder: submissions × exercises → grade reports."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Sequence

from repro.pedagogy.exercise import Exercise, ExerciseResult

__all__ = ["GradeReport", "Autograder"]


@dataclasses.dataclass
class GradeReport:
    """One student's results over a lab's exercises."""

    student: str
    results: List[ExerciseResult]

    @property
    def points_earned(self) -> float:
        """Total points earned."""
        return sum(r.points_earned for r in self.results)

    @property
    def points_possible(self) -> float:
        """Total points available."""
        return sum(r.points_possible for r in self.results)

    @property
    def percentage(self) -> float:
        """Overall score in [0, 100]."""
        if self.points_possible == 0:
            return 0.0
        return 100.0 * self.points_earned / self.points_possible

    @property
    def letter(self) -> str:
        """A coarse letter grade (the usual 90/80/70/60 cut-offs)."""
        pct = self.percentage
        for cut, letter in ((90, "A"), (80, "B"), (70, "C"), (60, "D")):
            if pct >= cut:
                return letter
        return "F"

    def result_for(self, exercise_id: str) -> ExerciseResult:
        """Look up one exercise's result."""
        for r in self.results:
            if r.exercise_id == exercise_id:
                return r
        raise KeyError(f"no result for {exercise_id!r}")


class Autograder:
    """Grades submissions against a fixed exercise list.

    A submission maps exercise ids to whatever each exercise's checker
    expects; missing entries score zero (with an explanatory error).
    """

    def __init__(self, exercises: Sequence[Exercise]) -> None:
        ids = [e.exercise_id for e in exercises]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate exercise ids")
        self.exercises = list(exercises)

    def grade(self, student: str, submission: Mapping[str, Any]) -> GradeReport:
        """Grade one student."""
        results: List[ExerciseResult] = []
        for exercise in self.exercises:
            if exercise.exercise_id in submission:
                results.append(exercise.grade(submission[exercise.exercise_id]))
            else:
                results.append(
                    ExerciseResult(
                        exercise_id=exercise.exercise_id,
                        fraction=0.0,
                        points_earned=0.0,
                        points_possible=exercise.points,
                        error="not submitted",
                    )
                )
        return GradeReport(student=student, results=results)

    def grade_cohort(
        self, submissions: Mapping[str, Mapping[str, Any]]
    ) -> Dict[str, GradeReport]:
        """Grade every student; keyed by student name."""
        return {s: self.grade(s, sub) for s, sub in submissions.items()}

    def sanity_check(self) -> List[str]:
        """Grade each exercise's reference submission; full credit expected.

        Returns the ids of exercises whose reference does *not* earn full
        credit — the instructor's pre-release checklist (empty == good).
        """
        bad: List[str] = []
        for exercise in self.exercises:
            if exercise.reference is None:
                continue
            if exercise.grade(exercise.reference).fraction < 1.0:
                bad.append(exercise.exercise_id)
        return bad

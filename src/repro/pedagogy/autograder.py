"""The autograder: submissions × exercises → grade reports.

Besides running each exercise's checker, the autograder can run PDC-Lint
(:mod:`repro.analysis`) as an optional **static pre-check stage**: when a
submission carries source (a string, or a callable whose source
``inspect`` can recover), the analyzer's findings are attached to the
grade report — and, with ``precheck_gate=True``, a flagged submission
scores zero before its code ever runs, mirroring how Bloom/ABET-mapped
assessment grades understanding before outcomes.

A second, **dynamic** stage (``sanitize=True``) runs the same source
under PDC-San (:mod:`repro.sanitizers`): one deterministic instrumented
execution, whose PDC3xx findings (races FastTrack actually observed,
lock-order cycles actually taken) land in the report next to the static
ones — and, with ``sanitize_gate=True``, also score the submission zero.
The pairing is the pedagogy: a static flag says "this *could* race", a
sanitizer flag says "this *did*".

The third, **exhaustive** stage (``verify=True``) model-checks the
source with PDC-Verify (:mod:`repro.verify`): every relevant
interleaving, not just the one the sanitizer ran.  With
``verify_gate=True`` a submission passes only when the checker *proves*
the fix — drains the whole schedule tree without finding a PDC3xx —
and any failure comes with a one-line schedule token the student can
replay to watch their bug happen, deterministically, every time.
"""

from __future__ import annotations

import dataclasses
import inspect
import textwrap
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence

from repro.pedagogy.exercise import Exercise, ExerciseResult
from repro.runtime import RunContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis import Finding

__all__ = ["GradeReport", "Autograder"]


@dataclasses.dataclass
class GradeReport:
    """One student's results over a lab's exercises."""

    student: str
    results: List[ExerciseResult]
    #: PDC-Lint findings per exercise id (only when the static pre-check
    #: stage ran and the submission exposed source).
    static_findings: Dict[str, List["Finding"]] = dataclasses.field(
        default_factory=dict
    )
    #: PDC-San findings per exercise id (only when the sanitizer stage
    #: ran and the submission exposed source).
    dynamic_findings: Dict[str, List["Finding"]] = dataclasses.field(
        default_factory=dict
    )
    #: PDC-Verify findings per exercise id (only when the verify stage
    #: ran and the submission exposed source).
    verify_findings: Dict[str, List["Finding"]] = dataclasses.field(
        default_factory=dict
    )
    #: Per-exercise checker receipts: schedules explored/pruned, whether
    #: the clean verdict is a proof, and replay tokens for failures.
    verify_stats: Dict[str, Dict[str, Any]] = dataclasses.field(
        default_factory=dict
    )

    @property
    def points_earned(self) -> float:
        """Total points earned."""
        return sum(r.points_earned for r in self.results)

    @property
    def points_possible(self) -> float:
        """Total points available."""
        return sum(r.points_possible for r in self.results)

    @property
    def percentage(self) -> float:
        """Overall score in [0, 100]."""
        if self.points_possible == 0:
            return 0.0
        return 100.0 * self.points_earned / self.points_possible

    @property
    def letter(self) -> str:
        """A coarse letter grade (the usual 90/80/70/60 cut-offs)."""
        pct = self.percentage
        for cut, letter in ((90, "A"), (80, "B"), (70, "C"), (60, "D")):
            if pct >= cut:
                return letter
        return "F"

    def result_for(self, exercise_id: str) -> ExerciseResult:
        """Look up one exercise's result.

        Raises ``KeyError`` (never a silent ``None``) for an unknown id,
        naming the ids that do exist — the typo is usually obvious.
        """
        for r in self.results:
            if r.exercise_id == exercise_id:
                return r
        known = ", ".join(sorted(r.exercise_id for r in self.results)) or "none"
        raise KeyError(
            f"no result for exercise {exercise_id!r} in {self.student!r}'s "
            f"report; graded exercises: {known}"
        )


class Autograder:
    """Grades submissions against a fixed exercise list.

    A submission maps exercise ids to whatever each exercise's checker
    expects; missing entries score zero (with an explanatory error).

    Parameters
    ----------
    static_precheck:
        Run PDC-Lint over each submission that exposes source (a string
        or an inspectable callable) and attach the findings to the report.
    precheck_select:
        Rule ids/prefixes to run (e.g. ``["PDC101", "PDC2"]``); default all.
    precheck_gate:
        With the pre-check on, a submission with findings scores zero
        *without running*: the checker never executes statically-racy code.
        Suppressions (``# pdc-lint: disable=... -- why``) pass the gate, so
        a student can ship a justified exception — and defend it in review.
    sanitize:
        Run PDC-San over each submission that exposes source: one
        deterministic instrumented execution whose PDC3xx findings are
        attached to the report (``dynamic_findings``).
    sanitize_gate:
        With the sanitizer on, a submission whose instrumented run
        observes a race / deadlock scores zero.  The same suppression
        comments apply (but note: ``disable=PDC101`` does *not* silence
        an observed PDC301 — the dynamic verdict must be answered on its
        own terms).
    verify:
        Model-check each submission that exposes source with PDC-Verify:
        exhaustive schedule exploration (DPOR-pruned), findings and
        explored/pruned/proved receipts attached to the report.
    verify_gate:
        The proof gate: a submission passes only when the checker drains
        the schedule tree — no truncation, within budget — and finds no
        PDC3xx on *any* interleaving.  "The sanitizer didn't see it" is
        no longer enough; "no schedule can produce it" is the bar, which
        is what distinguishes a fixed program from a lucky run.
    context:
        A :class:`~repro.runtime.RunContext` to instrument grading with:
        each exercise check runs inside a ``lab.<exercise-id>`` trace span
        and records its score under ``lab.<exercise-id>.fraction`` in the
        run's metric registry, so one lab session exports one coherent
        trace + metrics dump (``context.save(dir)``).
    """

    def __init__(
        self,
        exercises: Sequence[Exercise],
        static_precheck: bool = False,
        precheck_select: Optional[Sequence[str]] = None,
        precheck_gate: bool = False,
        sanitize: bool = False,
        sanitize_gate: bool = False,
        verify: bool = False,
        verify_gate: bool = False,
        context: Optional["RunContext"] = None,
    ) -> None:
        ids = [e.exercise_id for e in exercises]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate exercise ids")
        self.exercises = list(exercises)
        self.static_precheck = static_precheck or precheck_gate
        self.precheck_select = (
            list(precheck_select) if precheck_select is not None else None
        )
        self.precheck_gate = precheck_gate
        self.sanitize = sanitize or sanitize_gate
        self.sanitize_gate = sanitize_gate
        self.verify = verify or verify_gate
        self.verify_gate = verify_gate
        self.context = context
        # Engine-backed analysis caches, created on first use: a cohort
        # where many students submit byte-identical code (starter files,
        # shared solutions) is analyzed once per distinct source.
        self._static_cache: Optional[Any] = None
        self._dynamic_cache: Optional[Any] = None

    def _submission_source(self, submitted: Any) -> Optional[str]:
        """The analyzable source of a submission, if it has any."""
        if isinstance(submitted, str):
            return submitted
        try:
            return textwrap.dedent(inspect.getsource(submitted))
        except (OSError, TypeError):
            return None  # built-ins, REPL lambdas, plain values: no source

    def _static_findings(
        self, exercise_id: str, submitted: Any
    ) -> List["Finding"]:
        """PDC-Lint findings for one submission (empty if sourceless)."""
        source = self._submission_source(submitted)
        if source is None:
            return []
        # Deferred import: pedagogy stays importable without the analyzer.
        from repro.analysis.engine import LintPass, MemoryCache

        if self._static_cache is None:
            self._static_cache = MemoryCache()
        # Unparsable source yields engine errors, not findings: the
        # submission then fails in the checker, on record.
        return self._engine_findings(
            exercise_id,
            source,
            LintPass(select=self.precheck_select),
            self._static_cache,
            "grader.static",
        )

    def _dynamic_findings(
        self, exercise_id: str, submitted: Any
    ) -> List["Finding"]:
        """PDC-San findings from one instrumented run (empty if sourceless)."""
        source = self._submission_source(submitted)
        if source is None:
            return []
        # Deferred import: pedagogy stays importable without the sanitizers.
        from repro.analysis.engine import MemoryCache, SanitizePass

        entry = (
            getattr(submitted, "__name__", "main")
            if callable(submitted)
            else "main"
        )
        if self._dynamic_cache is None:
            self._dynamic_cache = MemoryCache()
        # Caching an execution is sound because the sanitized run is
        # deterministic: same source + entry, same findings, every run.
        return self._engine_findings(
            exercise_id,
            source,
            SanitizePass(entry=entry),
            self._dynamic_cache,
            "grader.dynamic",
        )

    def _verify_submission(
        self, exercise_id: str, submitted: Any
    ) -> Optional[Any]:
        """Model-check one submission; ``None`` when it has no source."""
        source = self._submission_source(submitted)
        if source is None:
            return None
        # Deferred import: pedagogy stays importable without the checker.
        from repro.verify.explorer import ExploreBudget, explore_source

        entry = (
            getattr(submitted, "__name__", "main")
            if callable(submitted)
            else "main"
        )
        # A grading-sized budget: big enough to drain every lab-scale
        # schedule tree, small enough that a spinning submission fails
        # fast (with "could not prove", which is the right verdict).
        return explore_source(
            source,
            path=f"<submission:{exercise_id}>",
            entry=entry,
            mode="dpor",
            budget=ExploreBudget(max_schedules=500, max_steps_per_task=200),
        )

    def _engine_findings(
        self,
        exercise_id: str,
        source: str,
        pass_: Any,
        cache: Any,
        metrics_prefix: str,
    ) -> List["Finding"]:
        """Run one analyzer pass over one submission via the engine.

        When a :class:`~repro.runtime.RunContext` is attached, the
        engine records its telemetry (submissions analyzed, cache hits,
        findings by rule) in the context's metric registry under
        ``metrics_prefix`` — grading dogfoods the same observability
        substrate the graded labs use.
        """
        from repro.analysis.engine import AnalysisEngine, WorkUnit

        engine = AnalysisEngine(
            pass_,
            cache=cache,
            registry=(
                self.context.registry if self.context is not None else None
            ),
            metrics_prefix=metrics_prefix,
        )
        unit = WorkUnit.source(f"<submission:{exercise_id}>", source)
        return engine.run([unit]).findings

    def grade(self, student: str, submission: Mapping[str, Any]) -> GradeReport:
        """Grade one student."""
        results: List[ExerciseResult] = []
        static_findings: Dict[str, List["Finding"]] = {}
        dynamic_findings: Dict[str, List["Finding"]] = {}
        verify_findings: Dict[str, List["Finding"]] = {}
        verify_stats: Dict[str, Dict[str, Any]] = {}
        for exercise in self.exercises:
            eid = exercise.exercise_id
            if eid not in submission:
                results.append(
                    ExerciseResult(
                        exercise_id=eid,
                        fraction=0.0,
                        points_earned=0.0,
                        points_possible=exercise.points,
                        error="not submitted",
                    )
                )
                continue
            submitted = submission[eid]
            if self.static_precheck:
                findings = self._static_findings(eid, submitted)
                if findings:
                    static_findings[eid] = findings
                if findings and self.precheck_gate:
                    rules = ", ".join(
                        sorted({f"{f.rule}@{f.line}" for f in findings})
                    )
                    results.append(
                        ExerciseResult(
                            exercise_id=eid,
                            fraction=0.0,
                            points_earned=0.0,
                            points_possible=exercise.points,
                            error=(
                                f"static pre-check failed ({rules}); fix the "
                                "findings or suppress them with a justified "
                                "`# pdc-lint: disable=...` comment"
                            ),
                        )
                    )
                    continue
            if self.sanitize:
                observed = self._dynamic_findings(eid, submitted)
                if observed:
                    dynamic_findings[eid] = observed
                if observed and self.sanitize_gate:
                    rules = ", ".join(
                        sorted({f"{f.rule}@{f.line}" for f in observed})
                    )
                    results.append(
                        ExerciseResult(
                            exercise_id=eid,
                            fraction=0.0,
                            points_earned=0.0,
                            points_possible=exercise.points,
                            error=(
                                f"sanitizer check failed ({rules}): the "
                                "instrumented run observed these; fix the "
                                "synchronization (a static suppression does "
                                "not answer an observed race)"
                            ),
                        )
                    )
                    continue
            if self.verify:
                checked = self._verify_submission(eid, submitted)
                if checked is not None:
                    if checked.findings:
                        verify_findings[eid] = list(checked.findings)
                    verify_stats[eid] = {
                        "schedules_explored": checked.schedules_explored,
                        "schedules_pruned": checked.schedules_pruned,
                        "proved": checked.proved,
                        "tokens": dict(checked.tokens),
                    }
                if checked is not None and self.verify_gate:
                    if checked.findings:
                        rules = ", ".join(
                            f"{rule} [replay {token}]"
                            for rule, token in sorted(checked.tokens.items())
                        ) or ", ".join(sorted(checked.rules))
                        results.append(
                            ExerciseResult(
                                exercise_id=eid,
                                fraction=0.0,
                                points_earned=0.0,
                                points_possible=exercise.points,
                                error=(
                                    f"model checker found a reachable "
                                    f"failure ({rules}): some interleaving "
                                    "of your code still breaks — replay the "
                                    "schedule token to watch it happen"
                                ),
                            )
                        )
                        continue
                    if not checked.proved:
                        results.append(
                            ExerciseResult(
                                exercise_id=eid,
                                fraction=0.0,
                                points_earned=0.0,
                                points_possible=exercise.points,
                                error=(
                                    "model checker could not prove the fix: "
                                    f"exploration was bounded (explored "
                                    f"{checked.schedules_explored} schedules"
                                    f", {checked.truncated_runs} truncated)."
                                    " Replace busy-waiting with blocking "
                                    "synchronization so the schedule tree "
                                    "is finite"
                                ),
                            )
                        )
                        continue
            if self.context is not None:
                with self.context.tracer.span(
                    f"lab.{eid}", cat="pedagogy", tid="autograder",
                    args={"student": student},
                ):
                    result = exercise.grade(submitted)
                self.context.registry.gauge(f"lab.{eid}.fraction").set(
                    result.fraction
                )
                self.context.registry.counter("lab.graded").inc()
            else:
                result = exercise.grade(submitted)
            results.append(result)
        return GradeReport(
            student=student,
            results=results,
            static_findings=static_findings,
            dynamic_findings=dynamic_findings,
            verify_findings=verify_findings,
            verify_stats=verify_stats,
        )

    def grade_cohort(
        self, submissions: Mapping[str, Mapping[str, Any]]
    ) -> Dict[str, GradeReport]:
        """Grade every student; keyed by student name."""
        return {s: self.grade(s, sub) for s, sub in submissions.items()}

    def sanity_check(self) -> List[str]:
        """Grade each exercise's reference submission; full credit expected.

        Returns the ids of exercises whose reference does *not* earn full
        credit — the instructor's pre-release checklist (empty == good).
        """
        bad: List[str] = []
        for exercise in self.exercises:
            if exercise.reference is None:
                continue
            if exercise.grade(exercise.reference).fraction < 1.0:
                bad.append(exercise.exercise_id)
        return bad

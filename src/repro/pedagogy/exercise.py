"""Exercises: a prompt, a checker, points, and outcome tags."""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional, Sequence

from repro.core.taxonomy import PdcTopic

__all__ = ["Exercise", "ExerciseResult"]


@dataclasses.dataclass(frozen=True)
class Exercise:
    """One gradable exercise.

    ``check`` receives the student's submission (any callable or value,
    per the exercise's contract) and returns a score in [0, 1]; the
    autograder scales it by ``points``.  ``reference`` is a known-good
    submission used by tests and by instructors sanity-checking the lab.
    """

    exercise_id: str
    prompt: str
    check: Callable[[Any], float]
    points: float = 10.0
    topics: Sequence[PdcTopic] = ()
    outcome_numbers: Sequence[int] = (2,)  # ABET Student Outcomes assessed
    reference: Optional[Any] = None
    #: Substrate modules the lab exercises (evidence for competency checks).
    modules: Sequence[str] = ()

    def __post_init__(self) -> None:
        if self.points <= 0:
            raise ValueError("points must be positive")

    def grade(self, submission: Any) -> "ExerciseResult":
        """Run the checker defensively; exceptions score zero."""
        try:
            fraction = float(self.check(submission))
        except Exception as exc:  # noqa: BLE001 - a failing submission
            return ExerciseResult(
                exercise_id=self.exercise_id,
                fraction=0.0,
                points_earned=0.0,
                points_possible=self.points,
                error=f"{type(exc).__name__}: {exc}",
            )
        fraction = min(1.0, max(0.0, fraction))
        return ExerciseResult(
            exercise_id=self.exercise_id,
            fraction=fraction,
            points_earned=fraction * self.points,
            points_possible=self.points,
            error=None,
        )


@dataclasses.dataclass(frozen=True)
class ExerciseResult:
    """The graded outcome of one exercise."""

    exercise_id: str
    fraction: float
    points_earned: float
    points_possible: float
    error: Optional[str]

    @property
    def passed(self) -> bool:
        """Full-credit threshold (>= 60% counts as meeting the outcome)."""
        return self.fraction >= 0.6

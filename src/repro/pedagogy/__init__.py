"""Pedagogy: exercises, autograding, labs, and ABET outcome assessment.

The layer that turns the substrate into a course.  LAU's case study
(§IV-A) grades labs, milestone projects, and reports, and uses the course
to assess ABET Student Outcomes 2 and 3; this subpackage provides the
machinery:

- :mod:`repro.pedagogy.exercise` — exercises with reference checks and
  point values.
- :mod:`repro.pedagogy.autograder` — run student submissions against
  exercises; produce grade reports with partial credit.
- :mod:`repro.pedagogy.labs` — a library of ready labs, one per substrate
  area (race detection, deadlock ordering, MPI π, GPU coalescing,
  Amdahl analysis, scheduler comparison, transactions, client–server).
- :mod:`repro.pedagogy.chaoslab` — the fault-tolerance lab graded
  against :mod:`repro.faults` (resilient calls over unreliable
  dependencies).
- :mod:`repro.pedagogy.verifylab` — the model-checking lab graded
  against :mod:`repro.verify`: full credit only when the checker
  *proves* the fix over every interleaving.
- :mod:`repro.pedagogy.outcomes` — map exercises to ABET Student
  Outcomes and compute cohort attainment.
- :mod:`repro.pedagogy.coursebuilder` — assemble the LAU and RIT
  case-study courses as syllabi of labs.
"""

from repro.pedagogy.autograder import Autograder, GradeReport
from repro.pedagogy.chaoslab import fault_tolerance_lab
from repro.pedagogy.coursebuilder import build_lau_course, build_rit_course
from repro.pedagogy.exercise import Exercise, ExerciseResult
from repro.pedagogy.labs import standard_labs
from repro.pedagogy.outcomes import AttainmentReport, OutcomeAssessment
from repro.pedagogy.verifylab import model_checking_lab

__all__ = [
    "AttainmentReport",
    "Autograder",
    "build_lau_course",
    "build_rit_course",
    "Exercise",
    "ExerciseResult",
    "fault_tolerance_lab",
    "GradeReport",
    "model_checking_lab",
    "OutcomeAssessment",
    "standard_labs",
]

"""The standard lab library: one exercise per substrate area.

Each lab's ``check`` runs the student's submission against the relevant
simulator/detector and scores the *observable behaviour* — a race-free
counter, a cycle-free lock order, a correct π, a coalesced kernel — the
style of grading the LAU course's "experimentally analyzing and tuning
parallel software" description implies.  Reference solutions are included
(and sanity-checked by tests) so the labs are self-validating.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List

import numpy as np

from repro.core.taxonomy import PdcTopic
from repro.gpu import Device, GlobalArray, launch
from repro.mp import SUM, run_spmd
from repro.oskernel import RoundRobin, SRTF, Workloads, simulate
from repro.pedagogy.exercise import Exercise
from repro.smp.atomics import AtomicCounter
from repro.smp.deadlock import LockGraph

__all__ = ["standard_labs"]


# -- Lab 1: atomic counter (races) -------------------------------------------
def _check_counter(make_counter: Callable[[], Any]) -> float:
    """Submission: a zero-arg factory for an object with ``increment()``
    and ``value`` that stays correct under interleaved increments."""
    import threading

    counter = make_counter()
    per_thread, threads = 200, 4

    def worker() -> None:
        for _ in range(per_thread):
            counter.increment()

    ts = [threading.Thread(target=worker) for _ in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    return 1.0 if counter.value == per_thread * threads else 0.0


# -- Lab 2: lock ordering (deadlock) ----------------------------------------
def _check_lock_order(order_fn: Callable[[int, int], tuple]) -> float:
    """Submission: ``order_fn(left, right) -> (first, second)`` giving the
    acquisition order for a philosopher's two forks.  Scored by the lock
    graph staying acyclic over all philosophers."""
    n = 5
    graph = LockGraph()
    for p in range(n):
        first, second = order_fn(p, (p + 1) % n)
        graph.on_acquire(f"fork{first}")
        graph.on_acquire(f"fork{second}")
        graph.on_release(f"fork{second}")
        graph.on_release(f"fork{first}")
    return 1.0 if graph.is_safe() else 0.0


# -- Lab 3: MPI pi (message passing) ------------------------------------------
def _check_mpi_pi(rank_main: Callable[..., float]) -> float:
    """Submission: an SPMD main ``f(comm, n)`` returning π at rank 0 via a
    reduction over rank-strided midpoint slices (the mpi4py cpi example)."""
    results = run_spmd(4, rank_main, 10_000)
    pi = results[0]
    if pi is None:
        return 0.0
    return 1.0 if abs(pi - math.pi) < 1e-6 else 0.0


def _reference_mpi_pi(comm: Any, n: int) -> float:
    rank, size = comm.Get_rank(), comm.Get_size()
    h = 1.0 / n
    local = sum(
        4.0 / (1.0 + (h * (i + 0.5)) ** 2) for i in range(rank, n, size)
    )
    total = comm.reduce(local * h, op=SUM, root=0)
    return total if rank == 0 else None


# -- Lab 4: GPU coalescing ------------------------------------------------------
def _check_gpu_kernel(kernel: Callable[..., Any]) -> float:
    """Submission: a vector-doubling kernel ``k(ctx, data, out)``.  Half
    credit for correctness; full credit only if accesses are coalesced
    (efficiency >= 0.9) — grading the lab's actual objective."""
    device = Device()
    n = 256
    data = GlobalArray.from_host(np.arange(n, dtype=np.float64))
    out = GlobalArray.zeros(n)
    stats = launch(device, kernel, grid=n // 64, block=64)(data, out)
    if not np.allclose(out.to_host(), 2.0 * np.arange(n)):
        return 0.0
    return 1.0 if stats.coalescing_efficiency() >= 0.9 else 0.5


def _reference_gpu_double(ctx: Any, data: GlobalArray, out: GlobalArray):
    i = ctx.global_id()
    if i < out.size:
        out[i] = 2.0 * data[i]
    return
    yield


# -- Lab 5: Amdahl analysis ------------------------------------------------------
def _check_amdahl(answer_fn: Callable[[float, int], float]) -> float:
    """Submission: ``f(parallel_fraction, processors) -> speedup``.
    Scored over a grid against the law."""
    from repro.arch.laws import amdahl_speedup

    grid = [(f, p) for f in (0.5, 0.9, 0.95, 0.99) for p in (2, 8, 64, 1024)]
    good = sum(
        1
        for f, p in grid
        if abs(answer_fn(f, p) - float(amdahl_speedup(f, p))) < 1e-9
    )
    return good / len(grid)


# -- Lab 6: scheduler choice ------------------------------------------------------
def _check_scheduler_claim(choice: str) -> float:
    """Submission: which policy minimizes average waiting time on the
    textbook workload ("SRTF" is provably optimal for this metric)."""
    workload = Workloads.textbook()
    srtf = simulate(workload, SRTF()).avg_waiting
    rr = simulate(workload, RoundRobin(2)).avg_waiting
    assert srtf <= rr  # the premise of the question
    return 1.0 if str(choice).strip().upper() == "SRTF" else 0.0


# -- Lab 7: serializability ---------------------------------------------------------
def _check_serializable_schedule(schedule_text: str) -> float:
    """Submission: a history (textbook notation) over T1/T2 on items x,y
    that interleaves the transactions yet stays conflict-serializable."""
    from repro.db import Schedule, is_conflict_serializable

    schedule = Schedule.parse(schedule_text)
    if schedule.is_serial():
        return 0.3  # correct but dodged the point of the exercise
    return 1.0 if is_conflict_serializable(schedule) else 0.0


# -- Lab 8: client-server protocol -----------------------------------------------------
def _check_kv_protocol(client_fn: Callable[[Any], Any]) -> float:
    """Submission: ``f(client)`` that stores 3 keys and returns the value
    of "b" using the KV client — exercises the request/response protocol."""
    from repro.net import Address, KeyValueClient, KeyValueServer, Network

    network = Network()
    with KeyValueServer(network, Address("kv", 6379)) as _server:
        with KeyValueClient(network, Address("kv", 6379)) as client:
            result = client_fn(client)
            stored = client.keys()
    return 1.0 if result == "beta" and len(stored) >= 3 else 0.0


def _reference_kv(client: Any) -> Any:
    client.put("a", "alpha")
    client.put("b", "beta")
    client.put("c", "gamma")
    return client.get("b")


# -- Lab 9: work-span analysis (CC2020: divide-and-conquer, critical path) ----
def _check_work_span(analyze: Callable[[Any], tuple]) -> float:
    """Submission: ``f(dag) -> (work, span)`` for a TaskDag.  Scored over
    a chain, an independent set, and a fork-join tree — partial credit
    per correct shape."""
    from repro.algorithms.dag import TaskDag

    shapes = [TaskDag.chain(7), TaskDag.fully_parallel(9), TaskDag.fork_join_tree(3)]
    good = 0
    for dag in shapes:
        work, span = analyze(dag)
        if work == dag.work and span == dag.span:
            good += 1
    return good / len(shapes)


def _reference_work_span(dag: Any) -> tuple:
    return (dag.work, dag.span)


# -- Lab 10: bounded buffer (CC2020: properly synchronized queues) -------------
def _check_bounded_buffer(make_buffer: Callable[[int], Any]) -> float:
    """Submission: ``f(capacity)`` returning an object with blocking
    ``put(item)``/``get()``.  Scored by a producer-consumer session: all
    items delivered exactly once, FIFO per producer."""
    import threading

    buffer = make_buffer(3)
    n, producers = 40, 2
    consumed: List[Any] = []
    lock = threading.Lock()

    def produce(base: int) -> None:
        for i in range(n):
            buffer.put((base, i))

    def consume() -> None:
        for _ in range(n):
            item = buffer.get()
            with lock:
                consumed.append(item)

    threads = [
        threading.Thread(target=produce, args=(b,), daemon=True)
        for b in range(producers)
    ] + [threading.Thread(target=consume, daemon=True) for _ in range(producers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=20)
        if t.is_alive():
            return 0.0  # deadlocked or lost wakeups
    expected = {(b, i) for b in range(producers) for i in range(n)}
    if set(consumed) != expected or len(consumed) != len(expected):
        return 0.0
    # FIFO per producer:
    for base in range(producers):
        seq = [i for (b, i) in consumed if b == base]
        if seq != sorted(seq):
            return 0.5
    return 1.0


def _reference_bounded_buffer(capacity: int) -> Any:
    from repro.smp.squeue import SynchronizedQueue

    return SynchronizedQueue(capacity)


def standard_labs() -> List[Exercise]:
    """The ten standard labs, one per substrate area."""
    return [
        Exercise(
            "smp-atomic-counter",
            "Build a thread-safe counter: increment() from 4 threads x 200 "
            "times must yield exactly 800.",
            _check_counter,
            points=10,
            topics=[PdcTopic.ATOMICITY, PdcTopic.THREADS],
            outcome_numbers=(2,),
            reference=AtomicCounter,
            modules=("repro.smp.atomics",),
        ),
        Exercise(
            "smp-lock-order",
            "Give a fork-acquisition order for the dining philosophers that "
            "admits no deadlock (the lock-order graph must be acyclic).",
            _check_lock_order,
            points=10,
            topics=[PdcTopic.SHARED_MEMORY_PROGRAMMING],
            outcome_numbers=(2,),
            reference=lambda left, right: (min(left, right), max(left, right)),
            modules=("repro.smp.deadlock",),
        ),
        Exercise(
            "mp-pi",
            "Compute pi with the midpoint rule, strided over ranks, reduced "
            "to rank 0 (the classic MPI cpi exercise).",
            _check_mpi_pi,
            points=15,
            topics=[PdcTopic.IPC, PdcTopic.SHARED_VS_DISTRIBUTED],
            outcome_numbers=(2,),
            reference=_reference_mpi_pi,
            modules=("repro.mp.communicator", "repro.mp.collectives"),
        ),
        Exercise(
            "gpu-coalesced-double",
            "Write a SIMT kernel doubling a vector with fully coalesced "
            "global accesses (efficiency >= 0.9).",
            _check_gpu_kernel,
            points=15,
            topics=[PdcTopic.SIMD_VECTOR, PdcTopic.MEMORY_CACHING],
            outcome_numbers=(2,),
            reference=_reference_gpu_double,
            modules=("repro.gpu.kernel", "repro.gpu.memory"),
        ),
        Exercise(
            "arch-amdahl",
            "Implement Amdahl's law: speedup(parallel_fraction, processors).",
            _check_amdahl,
            points=10,
            topics=[PdcTopic.PERFORMANCE],
            outcome_numbers=(1, 2),
            reference=lambda f, p: 1.0 / ((1.0 - f) + f / p),
            modules=("repro.arch.laws",),
        ),
        Exercise(
            "os-scheduler-pick",
            "Which policy minimizes average waiting time on the textbook "
            "workload: FCFS, RR, or SRTF?",
            _check_scheduler_claim,
            points=5,
            topics=[PdcTopic.PARALLELISM_CONCURRENCY],
            outcome_numbers=(1,),
            reference="SRTF",
            modules=("repro.oskernel.scheduler", "repro.oskernel.process"),
        ),
        Exercise(
            "db-serializable-interleaving",
            "Write a non-serial yet conflict-serializable history over "
            "T1/T2 on items x and y (textbook notation).",
            _check_serializable_schedule,
            points=10,
            topics=[PdcTopic.TRANSACTIONS],
            outcome_numbers=(1, 2),
            reference="r1(x) w1(x) r2(x) r1(y) w2(x) w1(y) c1 c2",
            modules=("repro.db.serializability", "repro.db.transaction"),
        ),
        Exercise(
            "net-kv-protocol",
            "Using the key-value client, store three keys and return the "
            "value of 'b'.",
            _check_kv_protocol,
            points=10,
            topics=[PdcTopic.CLIENT_SERVER],
            outcome_numbers=(2,),
            reference=_reference_kv,
            modules=("repro.net.clientserver", "repro.net.protocol"),
        ),
        Exercise(
            "algo-work-span",
            "Compute the work (T1) and span (T_inf) of a task DAG; the "
            "critical path is the span's witness.",
            _check_work_span,
            points=10,
            topics=[PdcTopic.PARALLELISM_CONCURRENCY, PdcTopic.PERFORMANCE],
            outcome_numbers=(1, 2),
            reference=_reference_work_span,
            modules=(
                "repro.algorithms.dag",
                "repro.algorithms.dnc",
                "repro.algorithms.sorting",
            ),
        ),
        Exercise(
            "smp-bounded-buffer",
            "Build a bounded blocking queue (capacity-limited put/get) and "
            "survive a multi-producer multi-consumer session.",
            _check_bounded_buffer,
            points=10,
            topics=[PdcTopic.SHARED_MEMORY_PROGRAMMING, PdcTopic.IPC],
            outcome_numbers=(2,),
            reference=_reference_bounded_buffer,
            modules=("repro.smp.squeue", "repro.smp.monitor"),
        ),
    ]

"""ABET Student Outcome assessment from graded exercises.

The LAU case study uses its parallel-programming course "to meet multiple
performance criteria in ABET's Student Outcome 2 … and Student Outcome 3"
(§IV-A).  Accreditation assessment asks: for each outcome, what fraction
of the cohort *attained* it (scored above a threshold on the exercises
mapped to it)?  :class:`OutcomeAssessment` computes exactly that.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Sequence

from repro.core.abet import STUDENT_OUTCOMES, StudentOutcome
from repro.pedagogy.autograder import GradeReport
from repro.pedagogy.exercise import Exercise

__all__ = ["AttainmentReport", "OutcomeAssessment"]


@dataclasses.dataclass
class AttainmentReport:
    """Cohort attainment of one Student Outcome."""

    outcome: StudentOutcome
    students_assessed: int
    students_attained: int
    target_rate: float

    @property
    def rate(self) -> float:
        """Fraction of assessed students attaining the outcome."""
        if self.students_assessed == 0:
            return 0.0
        return self.students_attained / self.students_assessed

    @property
    def met(self) -> bool:
        """Did the cohort meet the program's target rate?"""
        return self.students_assessed > 0 and self.rate >= self.target_rate


class OutcomeAssessment:
    """Aggregates graded exercises into per-outcome attainment.

    ``attainment_threshold`` — a student attains an outcome when their
    mean fraction over the outcome's mapped exercises reaches it.
    ``target_rate`` — the program's continuous-improvement target (70%
    of students attaining is a common choice).
    """

    def __init__(
        self,
        exercises: Sequence[Exercise],
        attainment_threshold: float = 0.6,
        target_rate: float = 0.7,
    ) -> None:
        self.exercises = list(exercises)
        self.attainment_threshold = attainment_threshold
        self.target_rate = target_rate

    def _exercises_for(self, outcome_number: int) -> List[Exercise]:
        return [
            e for e in self.exercises if outcome_number in e.outcome_numbers
        ]

    def assess(
        self, reports: Mapping[str, GradeReport]
    ) -> Dict[int, AttainmentReport]:
        """Compute attainment for every outcome any exercise maps to."""
        numbers = sorted(
            {n for e in self.exercises for n in e.outcome_numbers}
        )
        outcome_by_number = {o.number: o for o in STUDENT_OUTCOMES}
        out: Dict[int, AttainmentReport] = {}
        for number in numbers:
            mapped = self._exercises_for(number)
            mapped_ids = {e.exercise_id for e in mapped}
            attained = 0
            assessed = 0
            for report in reports.values():
                fractions = [
                    r.fraction
                    for r in report.results
                    if r.exercise_id in mapped_ids
                ]
                if not fractions:
                    continue
                assessed += 1
                if sum(fractions) / len(fractions) >= self.attainment_threshold:
                    attained += 1
            out[number] = AttainmentReport(
                outcome=outcome_by_number[number],
                students_assessed=assessed,
                students_attained=attained,
                target_rate=self.target_rate,
            )
        return out

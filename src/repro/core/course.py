"""Courses and their PDC topic coverage.

A :class:`Course` declares which :class:`~repro.core.taxonomy.PdcTopic`\\ s
it covers and at what :class:`Depth`.  Depth is the engine's quantitative
handle: the paper's survey method computes "a weighted sum of all courses
that tackle specific components of the PDC knowledge area" (§III), and
depth supplies the weights (exposure counts less than a dedicated
treatment).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence

from repro.core.knowledge import LearningOutcome
from repro.core.taxonomy import CourseType, PdcTopic

__all__ = ["Depth", "Coverage", "Course"]


class Depth(enum.IntEnum):
    """How deeply a course treats a topic (the survey weights).

    The ordinal values are the weights used in weighted sums: a MASTERY
    treatment counts three times an EXPOSURE mention — a conventional
    choice the ablation bench varies (unweighted vs. weighted).
    """

    EXPOSURE = 1  # a few lectures embedded in the course (paper §II-A)
    WORKING = 2  # assignments exercise the topic
    MASTERY = 3  # projects/labs assess the topic in depth


@dataclasses.dataclass(frozen=True)
class Coverage:
    """One (topic, depth) coverage claim inside a course."""

    topic: PdcTopic
    depth: Depth = Depth.EXPOSURE


@dataclasses.dataclass
class Course:
    """A course in a program's curriculum."""

    code: str
    title: str
    course_type: CourseType
    credits: float = 3.0
    required: bool = True
    coverage: Sequence[Coverage] = ()
    outcomes: Sequence[LearningOutcome] = ()
    year: Optional[int] = None  # curriculum year (1 = freshman), for Newhall audits

    def __post_init__(self) -> None:
        if self.credits <= 0:
            raise ValueError("credits must be positive")
        topics = [c.topic for c in self.coverage]
        if len(set(topics)) != len(topics):
            raise ValueError(f"duplicate topic coverage in {self.code}")

    def pdc_topics(self) -> List[PdcTopic]:
        """Topics this course covers, in declaration order."""
        return [c.topic for c in self.coverage]

    def depth_of(self, topic: PdcTopic) -> Optional[Depth]:
        """Depth for ``topic``, or ``None`` if not covered."""
        for c in self.coverage:
            if c.topic is topic:
                return c.depth
        return None

    def pdc_weight(self) -> int:
        """Sum of depth weights over all covered topics."""
        return sum(int(c.depth) for c in self.coverage)

    @property
    def is_dedicated_pdc(self) -> bool:
        """Is this a dedicated parallel-programming course?"""
        return self.course_type is CourseType.PARALLEL_PROGRAMMING

    def coverage_map(self) -> Dict[PdcTopic, Depth]:
        """Topic → depth mapping."""
        return {c.topic: c.depth for c in self.coverage}

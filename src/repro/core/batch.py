"""Columnar program batches and mergeable survey aggregates.

The object API (:class:`~repro.core.coverage.CoverageMatrix` per program)
is the right unit for *one* accreditation audit; it is the wrong unit for
the ROADMAP's "survey at planetary scale".  This module is the columnar
half of the refactor:

- :class:`ProgramBatch` encodes *many* programs at once as flat NumPy
  arrays — one ``(courses × topics)`` depth tensor plus CSR-style program
  offsets and per-course type/credit/required columns — so every §III
  statistic is a vectorized reduction instead of a Python loop.
- :class:`SurveyAggregate` holds the partial sums behind Fig. 2 (topic
  program counts, weighted topic sums) and Fig. 3 (PDC course counts by
  course type).  Aggregates obey a **merge law**: ``merge`` is
  associative and commutative with :meth:`SurveyAggregate.empty` as the
  identity, so a survey can be aggregated chunk by chunk (or shard by
  shard) and combined in any grouping — the property the streaming
  driver in :mod:`repro.core.pipeline` is built on.

Equivalence invariant (test-enforced): for any program list,
``SurveyAggregate.from_batch(ProgramBatch.from_programs(ps)).to_analysis()``
equals the legacy object-path :class:`~repro.core.survey.SurveyAnalysis`
— exactly for all counts, and exactly in practice for the weighted sums
too, because depth weights are small integers whose float64 sums are
order-independent.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Sequence, TYPE_CHECKING

import numpy as np

from repro.core.program import Program
from repro.core.taxonomy import CourseType, PdcTopic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.survey import SurveyAnalysis

__all__ = ["ProgramBatch", "SurveyAggregate", "batch_programs"]

_TOPICS: List[PdcTopic] = list(PdcTopic)
_TOPIC_POS: Dict[PdcTopic, int] = {t: i for i, t in enumerate(_TOPICS)}
_CTYPES: List[CourseType] = list(CourseType)
_CTYPE_POS: Dict[CourseType, int] = {ct: i for i, ct in enumerate(_CTYPES)}
_DEDICATED_POS = _CTYPE_POS[CourseType.PARALLEL_PROGRAMMING]


@dataclasses.dataclass
class ProgramBatch:
    """A columnar encoding of ``P`` programs with ``C`` total courses.

    ``depth[c, t]`` is course ``c``'s depth weight on topic ``t`` (0 =
    untouched); ``program_offsets`` is the CSR row-pointer array mapping
    program ``p`` to its course rows ``offsets[p]:offsets[p+1]`` (empty
    programs are legal); ``course_type``, ``credits`` and ``required``
    are per-course columns.  Electives stay in the encoding with
    ``required=False`` — aggregation masks them out, mirroring the object
    path's "required courses are accreditation's unit of analysis".
    """

    depth: np.ndarray  # (C, len(PdcTopic)) float64
    program_offsets: np.ndarray  # (P + 1,) int64
    course_type: np.ndarray  # (C,) int16, index into list(CourseType)
    credits: np.ndarray  # (C,) float64
    required: np.ndarray  # (C,) bool

    def __post_init__(self) -> None:
        if self.depth.shape[1] != len(_TOPICS):
            raise ValueError("depth must have one column per PdcTopic")
        if self.program_offsets[0] != 0 or self.program_offsets[-1] != len(
            self.depth
        ):
            raise ValueError("program_offsets must span all course rows")

    @property
    def num_programs(self) -> int:
        """``P``: programs encoded in this batch."""
        return len(self.program_offsets) - 1

    @property
    def num_courses(self) -> int:
        """``C``: total course rows across all programs."""
        return len(self.depth)

    @property
    def nbytes(self) -> int:
        """Bytes held by the batch's arrays (the flat-memory meter)."""
        return (
            self.depth.nbytes
            + self.program_offsets.nbytes
            + self.course_type.nbytes
            + self.credits.nbytes
            + self.required.nbytes
        )

    @classmethod
    def empty(cls) -> "ProgramBatch":
        """The zero-program batch."""
        return cls(
            depth=np.zeros((0, len(_TOPICS))),
            program_offsets=np.zeros(1, dtype=np.int64),
            course_type=np.zeros(0, dtype=np.int16),
            credits=np.zeros(0),
            required=np.zeros(0, dtype=bool),
        )

    @classmethod
    def from_programs(cls, programs: Sequence[Program]) -> "ProgramBatch":
        """Encode object programs columnar — one pass, no per-statistic
        matrix rebuilds."""
        n_courses = sum(len(p.courses) for p in programs)
        depth = np.zeros((n_courses, len(_TOPICS)))
        offsets = np.zeros(len(programs) + 1, dtype=np.int64)
        ctype = np.zeros(n_courses, dtype=np.int16)
        credits = np.zeros(n_courses)
        required = np.zeros(n_courses, dtype=bool)
        row = 0
        for p, program in enumerate(programs):
            for course in program.courses:
                ctype[row] = _CTYPE_POS[course.course_type]
                credits[row] = course.credits
                required[row] = course.required
                for cov in course.coverage:
                    depth[row, _TOPIC_POS[cov.topic]] = float(int(cov.depth))
                row += 1
            offsets[p + 1] = row
        return cls(depth, offsets, ctype, credits, required)

    def _per_program(self, per_course: np.ndarray) -> np.ndarray:
        """Segmented per-program sums of a per-course array (axis 0),
        robust to empty programs (where ``reduceat`` is not)."""
        cum = np.concatenate(
            [np.zeros((1,) + per_course.shape[1:], dtype=np.int64),
             np.cumsum(per_course, axis=0, dtype=np.int64)]
        )
        return cum[self.program_offsets[1:]] - cum[self.program_offsets[:-1]]


def batch_programs(
    programs: Sequence[Program], chunk_size: int
) -> Iterator[ProgramBatch]:
    """Encode ``programs`` as a stream of fixed-size columnar chunks."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    for start in range(0, len(programs), chunk_size):
        yield ProgramBatch.from_programs(programs[start : start + chunk_size])


def _course_type_percentages(counts: np.ndarray) -> Dict[CourseType, float]:
    """Fig. 3 percentages from per-type PDC course counts, reproducing
    the legacy ordering and float arithmetic bit for bit."""
    total = int(counts.sum())
    if total == 0:
        return {}
    present = [(ct, int(counts[i])) for i, ct in enumerate(_CTYPES) if counts[i]]
    return {
        ct: 100.0 * n / total
        for ct, n in sorted(present, key=lambda kv: (-kv[1], kv[0].value))
    }


@dataclasses.dataclass(eq=False)
class SurveyAggregate:
    """Associatively mergeable partial sums of the §III analysis.

    Every field is a plain sum over programs/courses, so
    ``merge(a, merge(b, c)) == merge(merge(a, b), c)`` and
    ``empty()`` is the identity — aggregation order (chunking,
    sharding) cannot change the result.
    """

    num_programs: int
    dedicated_programs: int
    topic_weights: np.ndarray  # (len(PdcTopic),) float64: §III weighted sums
    topic_counts: np.ndarray  # (len(PdcTopic),) int64: programs covering topic
    course_type_counts: np.ndarray  # (len(CourseType),) int64: PDC courses

    @classmethod
    def empty(cls) -> "SurveyAggregate":
        """The merge identity: zero programs, zero sums."""
        return cls(
            num_programs=0,
            dedicated_programs=0,
            topic_weights=np.zeros(len(_TOPICS)),
            topic_counts=np.zeros(len(_TOPICS), dtype=np.int64),
            course_type_counts=np.zeros(len(_CTYPES), dtype=np.int64),
        )

    @classmethod
    def from_batch(cls, batch: ProgramBatch) -> "SurveyAggregate":
        """Single-pass vectorized aggregation of one columnar batch."""
        eff = batch.depth * batch.required[:, None]  # electives masked out
        covered = eff > 0
        per_program = batch._per_program(covered)  # (P, T) covering courses
        pdc_course = batch.required & covered.any(axis=1)
        dedicated = batch.required & (batch.course_type == _DEDICATED_POS)
        return cls(
            num_programs=batch.num_programs,
            dedicated_programs=int(
                (batch._per_program(dedicated[:, None]) > 0).sum()
            ),
            topic_weights=eff.sum(axis=0),
            topic_counts=(per_program > 0).sum(axis=0, dtype=np.int64),
            course_type_counts=np.bincount(
                batch.course_type[pdc_course], minlength=len(_CTYPES)
            ).astype(np.int64),
        )

    @classmethod
    def of_programs(cls, programs: Sequence[Program]) -> "SurveyAggregate":
        """Encode + aggregate in one call (the legacy-adapter entry)."""
        return cls.from_batch(ProgramBatch.from_programs(programs))

    def merge(self, other: "SurveyAggregate") -> "SurveyAggregate":
        """The associative combine: elementwise sums of all partials."""
        return SurveyAggregate(
            num_programs=self.num_programs + other.num_programs,
            dedicated_programs=self.dedicated_programs
            + other.dedicated_programs,
            topic_weights=self.topic_weights + other.topic_weights,
            topic_counts=self.topic_counts + other.topic_counts,
            course_type_counts=self.course_type_counts
            + other.course_type_counts,
        )

    __add__ = merge

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SurveyAggregate):
            return NotImplemented
        return (
            self.num_programs == other.num_programs
            and self.dedicated_programs == other.dedicated_programs
            and np.array_equal(self.topic_weights, other.topic_weights)
            and np.array_equal(self.topic_counts, other.topic_counts)
            and np.array_equal(
                self.course_type_counts, other.course_type_counts
            )
        )

    def to_analysis(self) -> "SurveyAnalysis":
        """Materialize the §III :class:`SurveyAnalysis` view."""
        from repro.core.survey import SurveyAnalysis

        return SurveyAnalysis(
            num_programs=self.num_programs,
            dedicated_course_programs=self.dedicated_programs,
            topic_counts={
                t: int(self.topic_counts[i]) for i, t in enumerate(_TOPICS)
            },
            topic_weights={
                t: float(self.topic_weights[i]) for i, t in enumerate(_TOPICS)
            },
            course_percentages=_course_type_percentages(
                self.course_type_counts
            ),
        )

"""CC2020 competency checking for syllabi.

CC2020 frames curricula in *competencies* rather than topics (paper
§II-A); this module closes the loop between a runnable syllabus
(:mod:`repro.pedagogy.coursebuilder`) and the six named PDC competencies
(:mod:`repro.core.cc2020`): a competency is *evidenced* by a syllabus
when some lab exercises a substrate module the competency names (or a
module in the same subpackage).  The report is the artifact an
accreditation self-study would attach to its CC2020 alignment claim.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.core.cc2020 import CC2020_PDC_COMPETENCIES, Competency
from repro.core.mapping import SUBSTRATE_INDEX
from repro.pedagogy.coursebuilder import Syllabus

__all__ = ["CompetencyEvidence", "CompetencyReport", "check_syllabus"]


@dataclasses.dataclass(frozen=True)
class CompetencyEvidence:
    """How one competency is (or is not) evidenced by a syllabus."""

    competency: Competency
    evidenced: bool
    supporting_labs: List[str]

    def __str__(self) -> str:
        status = "evidenced" if self.evidenced else "NOT evidenced"
        labs = ", ".join(self.supporting_labs) or "none"
        return f"{self.competency.name}: {status} (labs: {labs})"


@dataclasses.dataclass
class CompetencyReport:
    """All six competencies checked against one syllabus."""

    syllabus_title: str
    evidence: List[CompetencyEvidence]

    @property
    def evidenced_count(self) -> int:
        """How many of the six competencies the syllabus evidences."""
        return sum(1 for e in self.evidence if e.evidenced)

    @property
    def complete(self) -> bool:
        """Does the syllabus evidence every CC2020 PDC competency?"""
        return self.evidenced_count == len(self.evidence)

    def missing(self) -> List[str]:
        """Names of unevidenced competencies."""
        return [e.competency.name for e in self.evidence if not e.evidenced]


def _lab_module_footprint(syllabus: Syllabus) -> Dict[str, List[str]]:
    """Lab id -> the substrate modules it declares (preferred) or, for
    labs without declarations, the modules its topics index into."""
    footprint: Dict[str, List[str]] = {}
    for exercise in syllabus.exercises():
        modules: List[str] = list(exercise.modules)
        if not modules:
            for topic in exercise.topics:
                modules.extend(SUBSTRATE_INDEX[topic])
        footprint[exercise.exercise_id] = modules
    return footprint


def _modules_match(competency_module: str, lab_modules: Sequence[str]) -> bool:
    """Exact module match, or one names a package containing the other
    (``repro.smp`` evidences ``repro.smp.racedetect``).  Sibling modules
    do *not* match — a scheduler lab is no evidence for a sorting
    competency just because both live under ``repro``."""
    for lab_module in lab_modules:
        if lab_module == competency_module:
            return True
        if competency_module.startswith(lab_module + "."):
            return True
        if lab_module.startswith(competency_module + "."):
            return True
    return False


def check_syllabus(syllabus: Syllabus) -> CompetencyReport:
    """Check every CC2020 PDC competency against ``syllabus``."""
    footprint = _lab_module_footprint(syllabus)
    evidence: List[CompetencyEvidence] = []
    for competency in CC2020_PDC_COMPETENCIES:
        supporting = [
            lab_id
            for lab_id, modules in footprint.items()
            if any(
                _modules_match(cm, modules)
                for cm in competency.substrate_modules
            )
        ]
        evidence.append(
            CompetencyEvidence(
                competency=competency,
                evidenced=bool(supporting),
                supporting_labs=sorted(supporting),
            )
        )
    return CompetencyReport(
        syllabus_title=syllabus.course_title, evidence=evidence
    )

"""The PDC-exposure compliance engine and approach classifier.

§II-B of the paper describes two viable approaches to satisfying the
PDC requirement — a dedicated required course, or knowledge units
scattered across required courses — and cites Newhall et al.'s four
principles for planning the coverage.  :func:`check_program` delivers the
full judgement: ABET criteria check, approach classification, CDER
concept coverage, and a Newhall audit.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from repro.core.abet import CacCriteria, CriteriaCheck
from repro.core.coverage import CoverageMatrix
from repro.core.program import Program
from repro.core.taxonomy import (
    CderConcept,
    PdcTopic,
    TOPIC_CONCEPTS,
)

__all__ = ["Approach", "NewhallAudit", "ComplianceReport", "check_program"]


class Approach(enum.Enum):
    """The two §II-B coverage approaches (plus the failure mode)."""

    DEDICATED_COURSE = "dedicated required PDC course"
    DISTRIBUTED = "PDC topics distributed across required courses"
    INSUFFICIENT = "insufficient PDC coverage"


@dataclasses.dataclass
class NewhallAudit:
    """Newhall et al.'s four planning principles (paper §II-B), audited.

    1. early exposure; 2. intentional overlap across courses; 3. breadth
    plus depth; 4. topics met in multiple sub-disciplines.
    """

    early_exposure: bool  # some PDC topic in year 1 or 2
    intentional_overlap: bool  # some topic in >= 2 required courses
    breadth_and_depth: bool  # >= half the topics touched, some at mastery
    multiple_subdisciplines: bool  # PDC in >= 3 distinct course types

    @property
    def score(self) -> int:
        """Principles satisfied, 0–4."""
        return sum(
            (
                self.early_exposure,
                self.intentional_overlap,
                self.breadth_and_depth,
                self.multiple_subdisciplines,
            )
        )


@dataclasses.dataclass
class ComplianceReport:
    """The engine's full judgement of one program."""

    program_name: str
    criteria: CriteriaCheck
    approach: Approach
    covered_topics: List[PdcTopic]
    concept_coverage: Dict[CderConcept, bool]
    newhall: NewhallAudit
    total_weight: float

    @property
    def compliant(self) -> bool:
        """Does the program satisfy the ABET CS criteria (incl. PDC)?"""
        return self.criteria.satisfied

    @property
    def concepts_complete(self) -> bool:
        """All three CDER concepts reached (stronger than ABET requires)."""
        return all(self.concept_coverage.values())

    def summary(self) -> str:
        """A one-paragraph verdict for reports."""
        verdict = "COMPLIANT" if self.compliant else "NOT COMPLIANT"
        return (
            f"{self.program_name}: {verdict} via {self.approach.value}; "
            f"{len(self.covered_topics)}/14 Table-I topics in required "
            f"courses (weight {self.total_weight:g}); CDER concepts "
            f"{'all covered' if self.concepts_complete else 'incomplete'}; "
            f"Newhall score {self.newhall.score}/4."
        )


#: Minimum topics in required courses to call distributed coverage real
#: "exposure" rather than incidental mention.
_MIN_TOPICS_FOR_EXPOSURE = 3


def check_program(
    program: Program, matrix: Optional[CoverageMatrix] = None
) -> ComplianceReport:
    """Run the full compliance analysis on ``program``.

    Callers that already built the program's :class:`CoverageMatrix`
    (batch audits, the survey example) pass it via ``matrix`` to skip
    the rebuild.
    """
    criteria = CacCriteria().check(program)
    if matrix is None:
        matrix = CoverageMatrix.of(program)
    elif matrix.program is not program:
        raise ValueError("matrix was built for a different program")
    covered = matrix.covered_topics()

    if program.has_dedicated_pdc_course(required_only=True):
        approach = Approach.DEDICATED_COURSE
    elif len(covered) >= _MIN_TOPICS_FOR_EXPOSURE:
        approach = Approach.DISTRIBUTED
    else:
        approach = Approach.INSUFFICIENT

    concept_coverage = {
        concept: any(concept in TOPIC_CONCEPTS[t] for t in covered)
        for concept in CderConcept
    }

    depths = program.topic_depths(required_only=True)
    early = program.earliest_pdc_year()
    pdc_course_types = {
        c.course_type
        for c in program.required_courses()
        if c.pdc_topics()
    }
    newhall = NewhallAudit(
        early_exposure=early is not None and early <= 2,
        intentional_overlap=any(len(ds) >= 2 for ds in depths.values()),
        breadth_and_depth=(
            len(covered) >= len(PdcTopic) // 2
            and any(max(ds) >= 3 for ds in depths.values())
        ),
        multiple_subdisciplines=len(pdc_course_types) >= 3,
    )

    return ComplianceReport(
        program_name=program.name,
        criteria=criteria,
        approach=approach,
        covered_topics=covered,
        concept_coverage=concept_coverage,
        newhall=newhall,
        total_weight=matrix.total_weight(),
    )

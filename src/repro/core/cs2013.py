"""CS2013's Parallel and Distributed Computing (PD) knowledge area.

The paper (§II-A) quotes CS2013's definition of PDC as encompassing
fundamental systems concepts (concurrency and parallel execution,
consistency in state/memory manipulation, latency), parallel algorithms
(decomposition, architecture, implementation, performance analysis and
tuning), and the message-passing and shared-memory models.  This module
encodes the PD area's knowledge units with their tier hours (tier-1 and
tier-2 units are core; the rest elective) and flags each topic that the
Table I vocabulary can express.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.knowledge import (
    CognitiveLevel,
    KnowledgeArea,
    KnowledgeUnit,
    LearningOutcome,
    TopicSpec,
)
from repro.core.taxonomy import PdcTopic

__all__ = ["PD_AREA", "pd_core_hours", "CS2013_PDC_DEFINITION", "topic_units"]

_K = CognitiveLevel.KNOWLEDGE
_C = CognitiveLevel.COMPREHENSION
_A = CognitiveLevel.APPLICATION

#: The three-clause definition quoted in paper §II-A.
CS2013_PDC_DEFINITION: List[str] = [
    "An understanding of fundamental systems concepts such as concurrency "
    "and parallel execution, consistency in state/memory manipulation, and "
    "latency.",
    "Understanding of parallel algorithms, strategies for problem "
    "decomposition, system architecture, detailed implementation "
    "strategies, and performance analysis and tuning.",
    "Message-passing and shared-memory models of computing.",
]

PD_AREA = KnowledgeArea(
    name="Parallel and Distributed Computing (PD)",
    units=(
        KnowledgeUnit(
            name="Parallelism Fundamentals",
            core=True,
            hours=2.0,  # tier 1
            topics=(
                TopicSpec("Multiple simultaneous computations", _C, pdc_related=True),
                TopicSpec("Parallelism vs. concurrency", _C, pdc_related=True),
                TopicSpec("Programming constructs for creating parallelism", _A, True),
                TopicSpec("Communication and coordination", _C, True),
            ),
            outcomes=(
                LearningOutcome(
                    "Distinguish using computational resources for a faster "
                    "answer from managing efficient access to a shared resource.",
                    _C,
                ),
            ),
        ),
        KnowledgeUnit(
            name="Parallel Decomposition",
            core=True,
            hours=4.0,  # 1 tier-1 + 3 tier-2
            topics=(
                TopicSpec("Need for communication and coordination/synchronization", _C, True),
                TopicSpec("Independence and partitioning", _A, True),
                TopicSpec("Task-based decomposition", _A, True),
                TopicSpec("Data-parallel decomposition", _A, True),
            ),
        ),
        KnowledgeUnit(
            name="Communication and Coordination",
            core=True,
            hours=4.0,  # 1 tier-1 + 3 tier-2
            topics=(
                TopicSpec("Shared memory", _A, True),
                TopicSpec("Message passing", _A, True),
                TopicSpec("Atomicity", _A, True),
                TopicSpec("Consensus", _K, True),
                TopicSpec("Conditional actions and deadlock", _C, True),
            ),
        ),
        KnowledgeUnit(
            name="Parallel Algorithms, Analysis, and Programming",
            core=True,
            hours=3.0,  # tier 2
            topics=(
                TopicSpec("Critical path, work, and span", _C, True),
                TopicSpec("Speed-up and scalability", _C, True),
                TopicSpec("Naturally parallel algorithms", _A, True),
                TopicSpec("Parallel divide-and-conquer", _A, True),
            ),
        ),
        KnowledgeUnit(
            name="Parallel Architecture",
            core=True,
            hours=2.0,  # 1 tier-1 + 1 tier-2
            topics=(
                TopicSpec("Multicore processors", _C, True),
                TopicSpec("Shared vs. distributed memory", _C, True),
                TopicSpec("SIMD, vector processing", _K, True),
                TopicSpec("GPU, co-processing", _K, True),
            ),
        ),
        KnowledgeUnit(
            name="Parallel Performance",
            core=False,
            topics=(
                TopicSpec("Load balancing", _C, True),
                TopicSpec("Data locality and false sharing", _C, True),
                TopicSpec("Performance measurement and tuning", _A, True),
            ),
        ),
        KnowledgeUnit(
            name="Distributed Systems",
            core=False,
            topics=(
                TopicSpec("Faults and partial failure", _C, True),
                TopicSpec("Distributed message sending", _A, True),
                TopicSpec("Distributed system design tradeoffs", _C, True),
                TopicSpec("Core distributed algorithms", _A, True),
            ),
        ),
        KnowledgeUnit(
            name="Cloud Computing",
            core=False,
            topics=(
                TopicSpec("Services and infrastructure models", _K, True),
                TopicSpec("Elasticity and scaling", _C, True),
            ),
        ),
        KnowledgeUnit(
            name="Formal Models and Semantics",
            core=False,
            topics=(
                TopicSpec("Formal models of processes and message passing", _K, True),
                TopicSpec("Consistency models", _C, True),
            ),
        ),
    ),
)


def pd_core_hours() -> float:
    """Total core (tier-1 + tier-2) hours of the PD area (15 in CS2013)."""
    return sum(u.hours or 0.0 for u in PD_AREA.core_units())


#: Which PD knowledge units exercise which Table I topics — the bridge
#: between the guideline and the course-level vocabulary.
topic_units: Dict[PdcTopic, List[str]] = {
    PdcTopic.PARALLELISM_CONCURRENCY: [
        "Parallelism Fundamentals",
        "Parallel Decomposition",
    ],
    PdcTopic.SHARED_MEMORY_PROGRAMMING: ["Communication and Coordination"],
    PdcTopic.ATOMICITY: ["Communication and Coordination"],
    PdcTopic.PERFORMANCE: [
        "Parallel Algorithms, Analysis, and Programming",
        "Parallel Performance",
    ],
    PdcTopic.MULTICORE: ["Parallel Architecture"],
    PdcTopic.SHARED_VS_DISTRIBUTED: ["Parallel Architecture"],
    PdcTopic.SIMD_VECTOR: ["Parallel Architecture"],
    PdcTopic.THREADS: ["Parallelism Fundamentals", "Communication and Coordination"],
    PdcTopic.IPC: ["Communication and Coordination", "Distributed Systems"],
    PdcTopic.CLIENT_SERVER: ["Distributed Systems"],
}

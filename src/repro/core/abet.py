"""ABET criteria: the CAC Computer Science criteria and the EAC criteria.

Fig. 1 of the paper reproduces the CS Program Criteria curriculum
requirement: *at least 40 semester credit hours that must include …
exposure to computer architecture and organization, information
management, networking and communication, operating systems, and parallel
and distributed computing.*  :data:`CAC_CS_CURRICULUM_AREAS` encodes those
five required exposure areas; :class:`CacCriteria` checks a
:class:`~repro.core.program.Program` against the credit-hour floor and
the exposure list (the PDC leg delegates to
:mod:`repro.core.compliance` for topic-level detail).

Student Outcomes 1–6 are encoded because the LAU case study (§IV-A) maps
its parallel-programming course onto Outcomes 2 and 3.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, TYPE_CHECKING

from repro.core.taxonomy import CourseType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.program import Program

__all__ = [
    "ExposureArea",
    "CAC_CS_CURRICULUM_AREAS",
    "StudentOutcome",
    "STUDENT_OUTCOMES",
    "CacCriteria",
    "CriteriaCheck",
    "EAC_COMPLEX_SOFTWARE_CRITERION",
]


class ExposureArea(enum.Enum):
    """The five required exposure areas of the CS Program Criteria (Fig. 1)."""

    ARCHITECTURE = "computer architecture and organization"
    INFORMATION_MANAGEMENT = "information management"
    NETWORKING = "networking and communication"
    OPERATING_SYSTEMS = "operating systems"
    PDC = "parallel and distributed computing"


#: Fig. 1's list, in the criteria's order.
CAC_CS_CURRICULUM_AREAS: List[ExposureArea] = list(ExposureArea)

#: Which course types can evidence each exposure area.  PDC is absent on
#: purpose: its evidence is topic-level, not course-type-level (§II-B —
#: "topics or knowledge areas that ought to be covered somewhere").
AREA_COURSE_TYPES: Dict[ExposureArea, List[CourseType]] = {
    ExposureArea.ARCHITECTURE: [CourseType.ARCHITECTURE],
    ExposureArea.INFORMATION_MANAGEMENT: [CourseType.DATABASE],
    ExposureArea.NETWORKING: [CourseType.NETWORKS, CourseType.PARALLEL_PROGRAMMING],
    ExposureArea.OPERATING_SYSTEMS: [
        CourseType.OPERATING_SYSTEMS,
        CourseType.SYSTEMS_PROGRAMMING,
    ],
}


@dataclasses.dataclass(frozen=True)
class StudentOutcome:
    """One of ABET CAC's Student Outcomes (2019 criteria)."""

    number: int
    text: str


STUDENT_OUTCOMES: List[StudentOutcome] = [
    StudentOutcome(1, "Analyze a complex computing problem and apply principles "
                      "of computing and other relevant disciplines to identify solutions."),
    StudentOutcome(2, "Design, implement, and evaluate a computing-based solution "
                      "to meet a given set of computing requirements in the context "
                      "of the program's discipline."),
    StudentOutcome(3, "Communicate effectively in a variety of professional contexts."),
    StudentOutcome(4, "Recognize professional responsibilities and make informed "
                      "judgments in computing practice based on legal and ethical principles."),
    StudentOutcome(5, "Function effectively as a member or leader of a team engaged "
                      "in activities appropriate to the program's discipline."),
    StudentOutcome(6, "Apply computer science theory and software development "
                      "fundamentals to produce computing-based solutions."),
]

#: EAC criteria for CE/SE don't name PDC but require "complex software"
#: preparation (paper §V); the compliance module uses this as the hook.
EAC_COMPLEX_SOFTWARE_CRITERION = (
    "The curriculum must provide adequate content for each area, consistent "
    "with the student outcomes and program educational objectives, to ensure "
    "that students are prepared to enter the practice of engineering."
)


@dataclasses.dataclass
class CriteriaCheck:
    """Outcome of checking a program against the CAC curriculum criteria."""

    credit_hours_ok: bool
    credit_hours: float
    exposures: Dict[ExposureArea, bool]
    pdc_exposed: bool

    @property
    def satisfied(self) -> bool:
        """All legs hold: hours floor, the four course-type exposures, PDC."""
        return (
            self.credit_hours_ok
            and all(self.exposures.values())
            and self.pdc_exposed
        )

    def missing(self) -> List[str]:
        """Human-readable deficiencies (empty when satisfied)."""
        out: List[str] = []
        if not self.credit_hours_ok:
            out.append(
                f"only {self.credit_hours:g} CS credit hours (need >= 40)"
            )
        for area, ok in self.exposures.items():
            if not ok:
                out.append(f"no required-course exposure to {area.value}")
        if not self.pdc_exposed:
            out.append("no required-course exposure to parallel and distributed computing")
        return out


class CacCriteria:
    """The CS Program Criteria curriculum check (Fig. 1, executable)."""

    MIN_CS_CREDIT_HOURS = 40.0

    def check(self, program: "Program") -> CriteriaCheck:
        """Evaluate ``program``; PDC is judged by topic coverage in
        *required* courses (per §II-B, coverage must reach all students)."""
        required = program.required_courses()
        hours = sum(c.credits for c in required)
        exposures = {
            area: any(c.course_type in types for c in required)
            for area, types in AREA_COURSE_TYPES.items()
        }
        pdc = any(c.pdc_topics() for c in required)
        return CriteriaCheck(
            credit_hours_ok=hours >= self.MIN_CS_CREDIT_HOURS,
            credit_hours=hours,
            exposures=exposures,
            pdc_exposed=pdc,
        )

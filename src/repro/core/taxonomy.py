"""The PDC vocabulary: topics (Table I rows), course types (its columns),
and the CDER concept triad.

Table I of the paper maps fourteen PDC concepts onto five typical course
types; those fourteen concepts are this module's :class:`PdcTopic` enum —
the shared vocabulary every other part of :mod:`repro.core` (courses,
surveys, compliance, reports) speaks.  CDER's triad (*concurrency*,
*parallelism*, *distribution* — paper §II-B, [24]) classifies each topic.
"""

from __future__ import annotations

import enum
from typing import Dict, List

__all__ = ["CderConcept", "PdcTopic", "CourseType", "TOPIC_CONCEPTS"]


class CderConcept(enum.Enum):
    """The three core PDC concepts identified by CDER [24]."""

    CONCURRENCY = "concurrency"
    PARALLELISM = "parallelism"
    DISTRIBUTION = "distribution"


class PdcTopic(enum.Enum):
    """The fourteen PDC concepts of Table I, in the paper's row order."""

    THREADS = "Programming with threads"
    TRANSACTIONS = "Transactions processing"
    PARALLELISM_CONCURRENCY = "Parallelism and concurrency"
    SHARED_MEMORY_PROGRAMMING = "Shared-Memory programming"
    IPC = "Inter-Process Communication (IPC)"
    ATOMICITY = "Atomicity"
    PERFORMANCE = "Performance measurement, speed-up, and scalability"
    MULTICORE = "Multicore processors"
    SHARED_VS_DISTRIBUTED = "Shared vs. distributed memory"
    SIMD_VECTOR = "SIMD and vector processors"
    ILP = "Instruction Level Parallelism"
    FLYNN = "Flynn's taxonomy"
    CLIENT_SERVER = "Client-server programming"
    MEMORY_CACHING = "Memory and caching"

    @property
    def label(self) -> str:
        """The Table I row label."""
        return self.value


class CourseType(enum.Enum):
    """Course categories.

    The first five are Table I's columns; the rest appear in §III's
    enumeration of PDC-capable courses and in the case studies (§IV), and
    are needed to encode real programs and the survey.
    """

    SYSTEMS_PROGRAMMING = "Systems Programming"
    ARCHITECTURE = "Computer Organization/Architecture"
    OPERATING_SYSTEMS = "Operating Systems"
    DATABASE = "Database Systems"
    NETWORKS = "Computer Networks"
    # Beyond Table I's columns:
    PARALLEL_PROGRAMMING = "Parallel Programming (dedicated)"
    ALGORITHMS = "Design and Analysis of Algorithms"
    PROGRAMMING_LANGUAGES = "Programming Languages"
    SOFTWARE_ENGINEERING = "Software Engineering"
    DISTRIBUTED_SYSTEMS = "Distributed Systems"
    INTRO_PROGRAMMING = "Introductory Programming Sequence"

    @property
    def in_table1(self) -> bool:
        """Whether this course type is one of Table I's five columns."""
        return self in _TABLE1_COLUMNS


_TABLE1_COLUMNS = {
    CourseType.SYSTEMS_PROGRAMMING,
    CourseType.ARCHITECTURE,
    CourseType.OPERATING_SYSTEMS,
    CourseType.DATABASE,
    CourseType.NETWORKS,
}


#: CDER concept classification of each Table I topic (paper §II-B).
TOPIC_CONCEPTS: Dict[PdcTopic, List[CderConcept]] = {
    PdcTopic.THREADS: [CderConcept.CONCURRENCY, CderConcept.PARALLELISM],
    PdcTopic.TRANSACTIONS: [CderConcept.CONCURRENCY, CderConcept.DISTRIBUTION],
    PdcTopic.PARALLELISM_CONCURRENCY: [
        CderConcept.CONCURRENCY,
        CderConcept.PARALLELISM,
    ],
    PdcTopic.SHARED_MEMORY_PROGRAMMING: [
        CderConcept.CONCURRENCY,
        CderConcept.PARALLELISM,
    ],
    PdcTopic.IPC: [CderConcept.CONCURRENCY, CderConcept.DISTRIBUTION],
    PdcTopic.ATOMICITY: [CderConcept.CONCURRENCY],
    PdcTopic.PERFORMANCE: [CderConcept.PARALLELISM],
    PdcTopic.MULTICORE: [CderConcept.PARALLELISM],
    PdcTopic.SHARED_VS_DISTRIBUTED: [
        CderConcept.PARALLELISM,
        CderConcept.DISTRIBUTION,
    ],
    PdcTopic.SIMD_VECTOR: [CderConcept.PARALLELISM],
    PdcTopic.ILP: [CderConcept.PARALLELISM],
    PdcTopic.FLYNN: [CderConcept.PARALLELISM],
    PdcTopic.CLIENT_SERVER: [CderConcept.DISTRIBUTION],
    PdcTopic.MEMORY_CACHING: [CderConcept.PARALLELISM],
}


def topics_for_concept(concept: CderConcept) -> List[PdcTopic]:
    """All Table I topics touching one CDER concept."""
    return [t for t, cs in TOPIC_CONCEPTS.items() if concept in cs]

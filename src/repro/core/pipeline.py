"""The streaming survey pipeline: §III at any scale, flat memory.

The paper analyzes 20 programs; the ROADMAP's north star demands the
same analysis at 1M+.  This driver gets there by never holding more
than one chunk of programs in memory:

1. programs are *synthesized directly in columnar form*
   (:func:`synthesize_batch`), one fixed-size
   :class:`~repro.core.batch.ProgramBatch` at a time — the chunk's RNG
   is a :class:`~repro.runtime.rng.RngService` stream named by the
   chunk's span, so any sharding of the same chunk grid draws the same
   programs;
2. each chunk is reduced to a
   :class:`~repro.core.batch.SurveyAggregate` the moment it is built;
3. aggregates are merged associatively — sequentially by
   :func:`stream_survey`, or across a process pool / ``repro.mp``
   rank-threads by :func:`shard_survey`, always in chunk order, so
   sequential and sharded runs produce *identical* aggregates
   (test-enforced).

A :class:`~repro.runtime.RunContext` makes the run observable
(``survey.programs``, ``survey.chunks.merged``,
``survey.batch.peak_bytes``, ``survey.programs_per_sec`` metrics and
per-chunk tracer spans) and deterministic (virtual clock ⇒ stable trace
digests).
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.batch import ProgramBatch, SurveyAggregate, _CTYPE_POS, _TOPIC_POS
from repro.core.mapping import TABLE_I
from repro.core.survey import (
    _DEDICATED_TOPICS,
    _MARKED_P,
    _SKELETON,
    _UNMARKED_P,
)
from repro.core.taxonomy import CourseType, PdcTopic
from repro.runtime import RngService, RunContext
from repro.mp.runtime import run_spmd

__all__ = ["ChunkSpec", "synthesize_batch", "stream_survey", "shard_survey"]

_N_TOPICS = len(PdcTopic)
_N_SLOTS = len(_SKELETON)
_SLOT_TYPES = np.array(
    [_CTYPE_POS[ctype] for ctype, _, _, _, _ in _SKELETON], dtype=np.int16
)
_SLOT_CREDITS = np.array([credits for _, _, _, credits, _ in _SKELETON])
_INTRO_SLOTS = np.array(
    [
        i
        for i, (ctype, _, _, _, _) in enumerate(_SKELETON)
        if ctype is CourseType.INTRO_PROGRAMMING
    ]
)
_INTRO_TOPICS = {PdcTopic.THREADS, PdcTopic.CLIENT_SERVER}
_DEPTH_CHOICES = np.array([1.0, 1.0, 2.0, 2.0, 3.0])
_DEDICATED_TYPE = np.int16(_CTYPE_POS[CourseType.PARALLEL_PROGRAMMING])

#: P[s, t]: probability that skeleton slot ``s`` covers topic ``t`` —
#: the survey generator's Table-I-calibrated incidence model, columnar.
_P_MATRIX = np.zeros((_N_SLOTS, _N_TOPICS))
for _s, (_ctype, _, _, _, _) in enumerate(_SKELETON):
    for _topic, _pos in _TOPIC_POS.items():
        marked = _ctype in TABLE_I[_topic]
        p = _MARKED_P.get(_ctype, 0.6) if marked else _UNMARKED_P
        if _ctype is CourseType.INTRO_PROGRAMMING:
            # Intro courses only ever brush threads/client-server, and
            # only in half the programs (the coin the gate draw flips).
            p = p if _topic in _INTRO_TOPICS else 0.0
        _P_MATRIX[_s, _pos] = p

_DEDICATED_ROW = np.zeros(_N_TOPICS)
for _topic in _DEDICATED_TOPICS:
    _DEDICATED_ROW[_TOPIC_POS[_topic]] = 3.0


@dataclasses.dataclass(frozen=True)
class ChunkSpec:
    """One chunk of the survey grid: programs ``[start, start+count)``
    of an ``n``-program survey with root ``seed``.  Picklable, so it is
    also the unit of work shipped to pool workers."""

    start: int
    count: int
    seed: int
    dedicated_index: int = 0

    @property
    def stream_name(self) -> str:
        """The chunk's RNG stream: a pure function of its span, so the
        same chunk grid draws the same programs under any sharding."""
        return f"survey.programs.{self.start}+{self.count}"


def chunk_grid(n: int, chunk_size: int, seed: int, dedicated_index: int = 0):
    """The fixed chunk partition of an ``n``-program survey."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    if n and not 0 <= dedicated_index < n:
        raise ValueError("dedicated_index out of range")
    return [
        ChunkSpec(start, min(chunk_size, n - start), seed, dedicated_index)
        for start in range(0, n, chunk_size)
    ]


def synthesize_batch(spec: ChunkSpec) -> ProgramBatch:
    """Synthesize one chunk of survey programs directly as a
    :class:`ProgramBatch` — no Program/Course objects, all draws
    vectorized over (programs × course slots × topics)."""
    rng = RngService(spec.seed).fresh_stream(spec.stream_name)
    k = spec.count
    incidence = rng.random((k, _N_SLOTS, _N_TOPICS)) < _P_MATRIX
    gate = rng.random((k, len(_INTRO_SLOTS))) < 0.5
    incidence[:, _INTRO_SLOTS, :] &= gate[:, :, None]
    depth_draw = _DEPTH_CHOICES[rng.integers(0, 5, size=(k, _N_SLOTS, _N_TOPICS))]
    depth = np.where(incidence, depth_draw, 0.0).reshape(k * _N_SLOTS, _N_TOPICS)

    course_type = np.tile(_SLOT_TYPES, k)
    credits = np.tile(_SLOT_CREDITS, k)
    offsets = np.arange(0, k * _N_SLOTS + 1, _N_SLOTS, dtype=np.int64)

    d = spec.dedicated_index - spec.start
    if 0 <= d < k:
        # The survey's single dedicated PDC course, appended to its
        # program's rows (mirrors generate_survey's CS440).
        row = (d + 1) * _N_SLOTS
        depth = np.insert(depth, row, _DEDICATED_ROW, axis=0)
        course_type = np.insert(course_type, row, _DEDICATED_TYPE)
        credits = np.insert(credits, row, 3.0)
        offsets = offsets + (np.arange(k + 1) > d)
    return ProgramBatch(
        depth=depth,
        program_offsets=offsets,
        course_type=course_type,
        credits=credits,
        required=np.ones(len(depth), dtype=bool),
    )


def _aggregate_chunk(spec: ChunkSpec) -> Tuple[int, SurveyAggregate, int]:
    """Worker body: synthesize + reduce one chunk.  Returns the chunk's
    start (for deterministic merge ordering) and the batch's bytes (for
    the flat-memory meter)."""
    batch = synthesize_batch(spec)
    return spec.start, SurveyAggregate.from_batch(batch), batch.nbytes


class _Meter:
    """Shared metric/tracing bookkeeping for both drivers."""

    def __init__(self, context: Optional[RunContext], total: int) -> None:
        self.context = context
        self.total = total
        self.peak_bytes = 0
        self._t0 = context.clock.now() if context else perf_counter()

    def chunk_done(self, spec: ChunkSpec, nbytes: int) -> None:
        self.peak_bytes = max(self.peak_bytes, nbytes)
        if self.context is None:
            return
        reg = self.context.registry
        reg.counter("survey.programs").inc(spec.count)
        reg.counter("survey.chunks.merged").inc()
        reg.gauge("survey.batch.peak_bytes").set(self.peak_bytes)
        self.context.tracer.instant(
            "survey.chunk.merged",
            cat="survey",
            tid="survey.driver",
            args={"start": spec.start, "count": spec.count},
        )

    def finish(self) -> None:
        if self.context is None:
            return
        elapsed = (self.context.clock.now() if self.context else 0.0) - self._t0
        if elapsed > 0:
            self.context.registry.gauge("survey.programs_per_sec").set(
                self.total / elapsed
            )


def stream_survey(
    n: int,
    seed: int = 2021,
    chunk_size: int = 8192,
    dedicated_index: int = 0,
    context: Optional[RunContext] = None,
    on_chunk: Optional[Callable[[int, int], None]] = None,
) -> SurveyAggregate:
    """Sequentially generate + analyze an ``n``-program survey in
    fixed-size chunks.  Memory stays flat at any ``n``: at most one
    chunk's batch is alive.  ``on_chunk(done, total)`` reports progress.
    """
    specs = chunk_grid(n, chunk_size, seed, dedicated_index)
    meter = _Meter(context, n)
    tracer = context.tracer if context else None
    agg = SurveyAggregate.empty()
    done = 0
    if tracer:
        tracer.begin("survey.stream", cat="survey", tid="survey.driver",
                     args={"n": n, "chunk_size": chunk_size})
    for spec in specs:
        if tracer:
            tracer.begin("survey.chunk", cat="survey", tid="survey.driver",
                         args={"start": spec.start})
        batch = synthesize_batch(spec)
        agg = agg.merge(SurveyAggregate.from_batch(batch))
        if tracer:
            tracer.end("survey.chunk", cat="survey", tid="survey.driver")
        meter.chunk_done(spec, batch.nbytes)
        done += spec.count
        if on_chunk is not None:
            on_chunk(done, n)
    if tracer:
        tracer.end("survey.stream", cat="survey", tid="survey.driver")
    meter.finish()
    return agg


def _mp_rank_main(comm, specs: List[ChunkSpec]):
    """SPMD body: each rank reduces its stride of the chunk grid."""
    return [_aggregate_chunk(spec) for spec in specs[comm.rank :: comm.size]]


def shard_survey(
    n: int,
    seed: int = 2021,
    chunk_size: int = 8192,
    workers: int = 4,
    backend: str = "process",
    dedicated_index: int = 0,
    context: Optional[RunContext] = None,
    on_chunk: Optional[Callable[[int, int], None]] = None,
) -> SurveyAggregate:
    """Shard the same chunk grid across workers and merge in chunk
    order — identical aggregates to :func:`stream_survey` by
    construction (same grid ⇒ same per-chunk RNG streams; ordered merge
    ⇒ same combine sequence).

    ``backend="process"`` fans chunks out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`;
    ``backend="mp"`` dogfoods :func:`repro.mp.runtime.run_spmd`,
    giving each rank-thread a stride of the grid.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    specs = chunk_grid(n, chunk_size, seed, dedicated_index)
    meter = _Meter(context, n)
    tracer = context.tracer if context else None
    if tracer:
        tracer.begin("survey.shard", cat="survey", tid="survey.driver",
                     args={"n": n, "workers": workers, "backend": backend})
    if backend == "process":
        with ProcessPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(_aggregate_chunk, specs))
    elif backend == "mp":
        per_rank = run_spmd(workers, _mp_rank_main, specs, context=context)
        parts = [item for rank_items in per_rank for item in rank_items]
    else:
        raise ValueError(f"unknown backend {backend!r}")

    agg = SurveyAggregate.empty()
    done = 0
    by_start = {start: (part, nbytes) for start, part, nbytes in parts}
    for spec in specs:  # merge in grid order, not completion order
        part, nbytes = by_start[spec.start]
        agg = agg.merge(part)
        meter.chunk_done(spec, nbytes)
        done += spec.count
        if on_chunk is not None:
            on_chunk(done, n)
    if tracer:
        tracer.end("survey.shard", cat="survey", tid="survey.driver")
    if context is not None:
        context.registry.gauge("survey.workers").set(workers)
    meter.finish()
    return agg

"""CC2020's draft PDC competencies.

Paper §II-A: "CC2020 reiterates the above knowledge areas and recommends
specific topics including a coverage of a parallel divide-and-conquer
algorithm, critical path, race conditions, processes, deadlocks, and
properly synchronized queues."  Each named topic is encoded as a
competency — knowledge + skill + disposition, CC2020's competency model —
and mapped to the substrate module of this repository that makes it
runnable, which is what turns the competency list into a lab syllabus.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

__all__ = ["Competency", "CC2020_PDC_COMPETENCIES", "competency_lab_index"]


@dataclasses.dataclass(frozen=True)
class Competency:
    """A CC2020-style competency: knowledge, skill, disposition."""

    name: str
    knowledge: str
    skill: str
    disposition: str
    substrate_modules: Sequence[str] = ()


CC2020_PDC_COMPETENCIES: List[Competency] = [
    Competency(
        name="Parallel divide-and-conquer algorithm",
        knowledge="The fork-join pattern; work/span analysis of recursive splits.",
        skill="Implement and analyze a parallel divide-and-conquer sort.",
        disposition="Chooses decomposition before tuning.",
        substrate_modules=(
            "repro.algorithms.dnc",
            "repro.algorithms.sorting",
        ),
    ),
    Competency(
        name="Critical path",
        knowledge="Task DAGs; work, span, parallelism; Brent's bound.",
        skill="Compute the critical path of a task graph and bound T_p.",
        disposition="Reasons about inherent, not incidental, serialization.",
        substrate_modules=("repro.algorithms.dag",),
    ),
    Competency(
        name="Race conditions",
        knowledge="Data races vs. race conditions; lockset analysis.",
        skill="Find a data race with a lockset detector and repair it.",
        disposition="Treats unsynchronized sharing as a defect, not a tweak.",
        substrate_modules=("repro.smp.racedetect", "repro.smp.atomics"),
    ),
    Competency(
        name="Processes",
        knowledge="Process states, scheduling, context switches.",
        skill="Simulate scheduling policies and compare their metrics.",
        disposition="Evaluates policies by measured waiting/turnaround time.",
        substrate_modules=("repro.oskernel.process", "repro.oskernel.scheduler"),
    ),
    Competency(
        name="Deadlocks",
        knowledge="Coffman conditions; wait-for graphs; prevention orders.",
        skill="Detect a deadlock cycle and apply resource ordering.",
        disposition="Designs lock orders up front rather than debugging hangs.",
        substrate_modules=(
            "repro.smp.deadlock",
            "repro.oskernel.syncproblems",
            "repro.db.locking",
        ),
    ),
    Competency(
        name="Properly synchronized queues",
        knowledge="Bounded buffers, condition-variable protocols, close semantics.",
        skill="Build a producer-consumer pipeline on a synchronized queue.",
        disposition="Prefers message-passing structure over ad-hoc sharing.",
        substrate_modules=("repro.smp.squeue", "repro.smp.monitor"),
    ),
]


def competency_lab_index() -> List[dict]:
    """The competency → runnable-module index (used by docs and tests)."""
    return [
        {
            "competency": c.name,
            "modules": list(c.substrate_modules),
        }
        for c in CC2020_PDC_COMPETENCIES
    ]

"""CE2016: computer engineering knowledge areas with PDC core units.

Table II of the paper lists the CE2016 knowledge areas whose *core*
knowledge units address PDC:

==============================  ==========================================
Knowledge Area                  PDC-related Core Knowledge Units
==============================  ==========================================
Computing Algorithms            Parallel algorithms/threading
Architecture and Organization   Multi/Many-core architectures;
                                Distributed system architectures
Systems Resource Management     Concurrent processing support
Software Design                 Event-driven and concurrent programming
==============================  ==========================================

CE2016 defines twelve knowledge areas in total (paper §V); the non-PDC
ones are encoded as empty-of-PDC areas so queries run against the full
area list, exactly as the survey of the real document would.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.knowledge import (
    CognitiveLevel,
    KnowledgeArea,
    KnowledgeUnit,
    TopicSpec,
)

__all__ = ["CE2016_AREAS", "ce_pdc_table", "CE2016_AREA_COUNT"]

_K = CognitiveLevel.KNOWLEDGE
_C = CognitiveLevel.COMPREHENSION
_A = CognitiveLevel.APPLICATION

#: "The computer engineering curriculum guidelines (CE2016) delineate
#: twelve broad knowledge areas" (paper §V).
CE2016_AREA_COUNT = 12

CE2016_AREAS: List[KnowledgeArea] = [
    KnowledgeArea(
        name="Computing Algorithms",
        units=(
            KnowledgeUnit(
                name="Parallel algorithms/threading",
                core=True,
                topics=(
                    TopicSpec("Parallel algorithm strategies", _C, pdc_related=True),
                    TopicSpec("Threading models and thread safety", _A, pdc_related=True),
                ),
            ),
            KnowledgeUnit(
                name="Analysis and design of application-specific algorithms",
                core=True,
                topics=(TopicSpec("Algorithmic design for applications", _A),),
            ),
        ),
    ),
    KnowledgeArea(
        name="Architecture and Organization",
        units=(
            KnowledgeUnit(
                name="Multi/Many-core architectures",
                core=True,
                topics=(
                    TopicSpec("Multicore organization and coherence", _C, True),
                    TopicSpec("Manycore/GPU organization", _K, True),
                ),
            ),
            KnowledgeUnit(
                name="Distributed system architectures",
                core=True,
                topics=(
                    TopicSpec("Cluster and grid organization", _C, True),
                    TopicSpec("Interconnection networks", _K, True),
                ),
            ),
            KnowledgeUnit(
                name="Memory system organization",
                core=True,
                topics=(TopicSpec("Memory hierarchies", _C),),
            ),
        ),
    ),
    KnowledgeArea(
        name="Systems Resource Management",
        units=(
            KnowledgeUnit(
                name="Concurrent processing support",
                core=True,
                topics=(
                    TopicSpec("Processes, threads, and scheduling", _A, True),
                    TopicSpec("Synchronization mechanisms", _A, True),
                ),
            ),
            KnowledgeUnit(
                name="Device and memory management",
                core=True,
                topics=(TopicSpec("Virtual memory", _C),),
            ),
        ),
    ),
    KnowledgeArea(
        name="Software Design",
        units=(
            KnowledgeUnit(
                name="Event-driven and concurrent programming",
                core=True,
                topics=(
                    TopicSpec("Event-driven design", _A, True),
                    TopicSpec("Concurrent programming constructs", _A, True),
                ),
            ),
            KnowledgeUnit(
                name="Software design principles",
                core=True,
                topics=(TopicSpec("Modularity and interfaces", _C),),
            ),
        ),
    ),
    # The remaining eight CE2016 areas carry no PDC core units (Table II
    # lists only the four above); present so area-level queries see all 12.
    KnowledgeArea(name="Circuits and Electronics"),
    KnowledgeArea(name="Digital Design"),
    KnowledgeArea(name="Embedded Systems"),
    KnowledgeArea(name="Computer Networks"),
    KnowledgeArea(name="Information Security"),
    KnowledgeArea(name="Signal Processing"),
    KnowledgeArea(name="Professional Practice"),
    KnowledgeArea(name="Preparation for Engineering Practice"),
]


def ce_pdc_table() -> Dict[str, List[str]]:
    """Regenerate Table II: area → PDC-related core knowledge units."""
    table: Dict[str, List[str]] = {}
    for area in CE2016_AREAS:
        units = [u.name for u in area.pdc_core_units()]
        if units:
            table[area.name] = units
    return table

"""The §III survey: 20 top accredited programs, synthesized and analyzed.

**Substitution note (DESIGN.md):** the paper's authors read 20 real
program catalogs (US News top-100, ABET-accredited) — data that is not
published with the paper.  :func:`generate_survey` synthesizes 20
ABET-plausible programs calibrated to everything §III *does* report:

- exactly **one** of the 20 has a dedicated parallel-programming course,
  "while the remaining programs used multiple courses to cover PDC
  topics";
- per-course topic incidence follows Table I's mapping (a topic is likely
  in a course type its row marks, rare elsewhere), so the most common
  topic is "parallelism and concurrency" (marked in all five columns) and
  the PDC-heaviest course types are OS and architecture;
- every program is accreditation-plausible: ≥ 40 required CS credit
  hours and required courses in all five exposure areas.

The analysis half (:class:`SurveyAnalysis`) is the paper's actual method
and runs unchanged on *real* program encodings (the case studies use it).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.batch import SurveyAggregate
from repro.core.course import Course, Coverage, Depth
from repro.core.mapping import TABLE_I
from repro.core.program import Program
from repro.core.taxonomy import CourseType, PdcTopic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import RunContext

__all__ = ["generate_survey", "SurveyAnalysis", "analyze_survey"]

#: The required-course skeleton every synthetic program shares
#: (course type, base code, title, credits, typical year).
_SKELETON: List[Tuple[CourseType, str, str, float, int]] = [
    (CourseType.INTRO_PROGRAMMING, "CS101", "Programming I", 4.0, 1),
    (CourseType.INTRO_PROGRAMMING, "CS102", "Programming II", 4.0, 1),
    (CourseType.ALGORITHMS, "CS240", "Data Structures", 3.0, 2),
    (CourseType.ALGORITHMS, "CS340", "Design and Analysis of Algorithms", 3.0, 3),
    (CourseType.ARCHITECTURE, "CS220", "Computer Organization", 3.0, 2),
    (CourseType.ARCHITECTURE, "CS320", "Computer Architecture", 3.0, 3),
    (CourseType.SYSTEMS_PROGRAMMING, "CS250", "Systems Programming", 3.0, 2),
    (CourseType.OPERATING_SYSTEMS, "CS350", "Operating Systems", 3.0, 3),
    (CourseType.DATABASE, "CS360", "Database Systems", 3.0, 3),
    (CourseType.NETWORKS, "CS370", "Computer Networks", 3.0, 3),
    (CourseType.PROGRAMMING_LANGUAGES, "CS330", "Programming Languages", 3.0, 3),
    (CourseType.SOFTWARE_ENGINEERING, "CS380", "Software Engineering", 3.0, 3),
    (CourseType.ALGORITHMS, "CS490", "Capstone Project", 4.0, 4),
]

#: Probability that a course of a given type covers a topic: high when
#: Table I marks the cell, low otherwise.  Architecture and OS run hotter
#: (the paper's §III singles them out as the natural PDC carriers).
_MARKED_P = {
    CourseType.ARCHITECTURE: 0.9,
    CourseType.OPERATING_SYSTEMS: 0.9,
    CourseType.SYSTEMS_PROGRAMMING: 0.7,
    CourseType.DATABASE: 0.7,
    CourseType.NETWORKS: 0.7,
}
_UNMARKED_P = 0.015

#: Topics a dedicated parallel-programming course always covers (the LAU
#: §IV-A course description, generalized).
_DEDICATED_TOPICS = [
    PdcTopic.THREADS,
    PdcTopic.PARALLELISM_CONCURRENCY,
    PdcTopic.SHARED_MEMORY_PROGRAMMING,
    PdcTopic.ATOMICITY,
    PdcTopic.PERFORMANCE,
    PdcTopic.MULTICORE,
    PdcTopic.SHARED_VS_DISTRIBUTED,
    PdcTopic.SIMD_VECTOR,
    PdcTopic.IPC,
]


def _coverage_for(
    course_type: CourseType, rng: np.random.Generator
) -> List[Coverage]:
    out: List[Coverage] = []
    for topic, marked_types in TABLE_I.items():
        marked = course_type in marked_types
        p = _MARKED_P.get(course_type, 0.6) if marked else _UNMARKED_P
        if rng.random() < p:
            depth = Depth(int(rng.choice([1, 1, 2, 2, 3])))
            out.append(Coverage(topic, depth))
    return out


def generate_survey(
    n: int = 20,
    seed: int = 2021,
    dedicated_index: int = 7,
    context: Optional["RunContext"] = None,
) -> List[Program]:
    """Synthesize ``n`` accredited programs; program ``dedicated_index``
    carries the survey's single dedicated PDC course.

    With a :class:`~repro.runtime.RunContext`, draws come from the
    context's named ``"survey.programs"`` RNG stream (the PR-2 seed
    discipline: one root seed reproduces a whole lab run, ``seed`` is
    ignored).  Without one, the historical ``np.random.default_rng(seed)``
    behaviour is kept bit for bit — the ``seed=2021`` survey is
    byte-identical to every release before the columnar refactor
    (test-enforced by golden digest).
    """
    if not 0 <= dedicated_index < n:
        raise ValueError("dedicated_index out of range")
    rng = (
        context.rng.stream("survey.programs")
        if context is not None
        else np.random.default_rng(seed)
    )
    programs: List[Program] = []
    for i in range(n):
        courses: List[Course] = []
        for ctype, code, title, credits, year in _SKELETON:
            coverage = (
                _coverage_for(ctype, rng)
                if ctype not in (CourseType.INTRO_PROGRAMMING,)
                or rng.random() < 0.5
                else []
            )
            if ctype is CourseType.INTRO_PROGRAMMING and coverage:
                # Intro courses only ever brush threads/client-server.
                coverage = [
                    c
                    for c in coverage
                    if c.topic in (PdcTopic.THREADS, PdcTopic.CLIENT_SERVER)
                ]
            courses.append(
                Course(
                    code=code,
                    title=title,
                    course_type=ctype,
                    credits=credits,
                    required=True,
                    coverage=coverage,
                    year=year,
                )
            )
        if i == dedicated_index:
            courses.append(
                Course(
                    code="CS440",
                    title="Parallel Programming",
                    course_type=CourseType.PARALLEL_PROGRAMMING,
                    credits=3.0,
                    required=True,
                    coverage=[Coverage(t, Depth.MASTERY) for t in _DEDICATED_TOPICS],
                    year=4,
                )
            )
        programs.append(
            Program(
                name=f"Synthetic University {i + 1:02d} — BS Computer Science",
                institution=f"Synthetic University {i + 1:02d}",
                courses=courses,
                discipline="CS",
                accredited_since=int(rng.integers(1990, 2019)),
            )
        )
    return programs


@dataclasses.dataclass
class SurveyAnalysis:
    """Everything §III reports, computed from a program list."""

    num_programs: int
    dedicated_course_programs: int
    topic_counts: Dict[PdcTopic, int]  # Fig. 2: programs covering each topic
    topic_weights: Dict[PdcTopic, float]  # §III: the weighted sums
    course_percentages: Dict[CourseType, float]  # Fig. 3

    def top_topics(self, k: int = 5) -> List[PdcTopic]:
        """The k most-emphasized topics by the §III weighted sum.

        Program counts saturate at ``num_programs`` for widely-taught
        topics, so the ranking uses the weighted sums (the paper's own
        metric), with program counts as the tie-breaker.
        """
        ranked = sorted(
            self.topic_weights,
            key=lambda t: (-self.topic_weights[t], -self.topic_counts[t], t.name),
        )
        return ranked[:k]

    def top_course_types(self, k: int = 3) -> List[CourseType]:
        """The k course types carrying the most PDC content (Fig. 3)."""
        ranked = sorted(
            self.course_percentages,
            key=lambda ct: (-self.course_percentages[ct], ct.value),
        )
        return ranked[:k]


def analyze_survey(programs: Sequence[Program]) -> SurveyAnalysis:
    """Run the paper's §III analysis over any set of programs.

    A thin adapter over the columnar path: the program list is encoded
    **once** as a :class:`~repro.core.batch.ProgramBatch` and reduced in
    a single vectorized pass (the pre-refactor code rebuilt each
    program's :class:`~repro.core.coverage.CoverageMatrix` three times —
    once per statistic).  Results are identical to the object path
    (test-enforced equivalence invariant).
    """
    return SurveyAggregate.of_programs(programs).to_analysis()

"""Knowledge areas, units, topics, outcomes, and cognitive levels.

The structural vocabulary shared by all four guideline encodings: ACM/IEEE
guidelines decompose a body of knowledge into *knowledge areas*, each a
set of *knowledge units* (core or supplementary/elective), each a list of
*topics* with *learning outcomes* at stated *cognitive levels* (paper §V:
"CE2016 defines … the cognitive skill level at which each topic … is
expected to be attained.  Three cognitive skill levels are defined with
application being the highest level.").
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Sequence

__all__ = [
    "CognitiveLevel",
    "TopicSpec",
    "LearningOutcome",
    "KnowledgeUnit",
    "KnowledgeArea",
]


class CognitiveLevel(enum.IntEnum):
    """The three-level scale used by CE2016/SE2014 (application highest).

    Ordered, so ``level >= CognitiveLevel.APPLICATION`` reads naturally.
    """

    KNOWLEDGE = 1  # remember/recognize
    COMPREHENSION = 2  # explain/classify
    APPLICATION = 3  # use/build


@dataclasses.dataclass(frozen=True)
class TopicSpec:
    """One topic inside a knowledge unit."""

    name: str
    level: CognitiveLevel = CognitiveLevel.COMPREHENSION
    pdc_related: bool = False

    def __str__(self) -> str:
        return f"{self.name} [{self.level.name.lower()}]"


@dataclasses.dataclass(frozen=True)
class LearningOutcome:
    """A measurable outcome attached to a unit or course."""

    text: str
    level: CognitiveLevel = CognitiveLevel.COMPREHENSION


@dataclasses.dataclass(frozen=True)
class KnowledgeUnit:
    """A knowledge unit: named, core or not, with topics and outcomes."""

    name: str
    core: bool = True
    topics: Sequence[TopicSpec] = ()
    outcomes: Sequence[LearningOutcome] = ()
    hours: Optional[float] = None  # tier/core hours where the guideline gives them

    def pdc_topics(self) -> List[TopicSpec]:
        """The PDC-flagged topics of this unit."""
        return [t for t in self.topics if t.pdc_related]

    @property
    def is_pdc_related(self) -> bool:
        """Whether any topic of the unit is PDC-flagged."""
        return any(t.pdc_related for t in self.topics)


@dataclasses.dataclass(frozen=True)
class KnowledgeArea:
    """A knowledge area: a named set of units."""

    name: str
    units: Sequence[KnowledgeUnit] = ()

    def core_units(self) -> List[KnowledgeUnit]:
        """Units marked core."""
        return [u for u in self.units if u.core]

    def pdc_core_units(self) -> List[KnowledgeUnit]:
        """Core units containing PDC-flagged topics (Tables II/III rows)."""
        return [u for u in self.core_units() if u.is_pdc_related]

    def unit(self, name: str) -> KnowledgeUnit:
        """Look up a unit by name."""
        for u in self.units:
            if u.name == name:
                return u
        raise KeyError(f"no unit {name!r} in {self.name}")

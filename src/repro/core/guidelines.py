"""A registry unifying the four guideline encodings.

DESIGN.md's inventory names one encoding module per guideline; this
registry gives tooling (reports, docs, the advisor) a single place to
enumerate them and to answer cross-guideline questions like "how many
PDC-related core units exist across all guidelines the paper cites?".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.core.ce2016 import CE2016_AREAS
from repro.core.cs2013 import PD_AREA
from repro.core.knowledge import KnowledgeArea
from repro.core.se2014 import SEEK_AREAS

__all__ = ["Guideline", "GUIDELINES", "pdc_unit_census"]


@dataclasses.dataclass(frozen=True)
class Guideline:
    """One ACM/IEEE-CS curricular guideline, as encoded in this package."""

    key: str
    title: str
    year: int
    discipline: str
    areas: Sequence[KnowledgeArea]

    def pdc_core_units(self) -> List[str]:
        """Names of all PDC-related core units across the areas."""
        return [
            unit.name
            for area in self.areas
            for unit in area.pdc_core_units()
        ]


GUIDELINES: Dict[str, Guideline] = {
    "cs2013": Guideline(
        key="cs2013",
        title="Computer Science Curricula 2013",
        year=2013,
        discipline="CS",
        areas=[PD_AREA],
    ),
    "ce2016": Guideline(
        key="ce2016",
        title="Computer Engineering Curricula 2016",
        year=2016,
        discipline="CE",
        areas=CE2016_AREAS,
    ),
    "se2014": Guideline(
        key="se2014",
        title="Software Engineering 2014 (SEEK)",
        year=2014,
        discipline="SE",
        areas=SEEK_AREAS,
    ),
}


def pdc_unit_census() -> Dict[str, int]:
    """PDC-related core-unit counts per guideline (the paper's cross-
    discipline point in one dict)."""
    return {
        key: len(g.pdc_core_units()) for key, g in GUIDELINES.items()
    }

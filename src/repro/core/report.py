"""Renderers that regenerate every table and figure of the paper.

All renderers return plain strings (monospace tables / horizontal bar
charts), so benches can ``print`` them and tests can assert on their
content without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.abet import CAC_CS_CURRICULUM_AREAS, CacCriteria
from repro.core.ce2016 import ce_pdc_table
from repro.core.compliance import ComplianceReport
from repro.core.mapping import TABLE_I
from repro.core.se2014 import se_pdc_table
from repro.core.survey import SurveyAnalysis
from repro.core.taxonomy import CourseType, PdcTopic

__all__ = [
    "render_fig1",
    "render_table1",
    "render_fig2",
    "render_fig3",
    "render_table2",
    "render_table3",
    "render_case_studies",
]

_TABLE1_COLUMNS: List[CourseType] = [
    CourseType.SYSTEMS_PROGRAMMING,
    CourseType.ARCHITECTURE,
    CourseType.OPERATING_SYSTEMS,
    CourseType.DATABASE,
    CourseType.NETWORKS,
]


def _bar(value: float, max_value: float, width: int = 40) -> str:
    filled = 0 if max_value <= 0 else round(width * value / max_value)
    return "#" * filled


def render_fig1() -> str:
    """Fig. 1: the CS Program Criteria curriculum requirement."""
    lines = [
        "Fig. 1 — Computer Science Program Criteria (Curriculum)",
        "",
        f"At least {CacCriteria.MIN_CS_CREDIT_HOURS:g} semester credit hours "
        "that must include (among other topics):",
        "",
        "  Exposure to:",
    ]
    for area in CAC_CS_CURRICULUM_AREAS:
        lines.append(f"    - {area.value}")
    return "\n".join(lines)


def render_table1() -> str:
    """Table I: mapping PDC concepts to typical courses."""
    header_labels = ["SysProg", "Arch", "OS", "DB", "Net"]
    name_width = max(len(t.label) for t in PdcTopic) + 2
    lines = [
        "Table I — Mapping different PDC concepts to typical courses",
        "",
        " " * name_width + " | ".join(f"{h:^7}" for h in header_labels),
        "-" * (name_width + 10 * len(header_labels)),
    ]
    for topic in PdcTopic:
        marks = [
            f"{'x':^7}" if col in TABLE_I[topic] else f"{'':^7}"
            for col in _TABLE1_COLUMNS
        ]
        lines.append(f"{topic.label:<{name_width}}" + " | ".join(marks))
    return "\n".join(lines)


def render_fig2(analysis: SurveyAnalysis) -> str:
    """Fig. 2: PDC topics used by surveyed programs (bar chart)."""
    counts = analysis.topic_counts
    weights = analysis.topic_weights
    max_weight = max(weights.values()) if weights else 1.0
    name_width = max(len(t.label) for t in PdcTopic) + 2
    lines = [
        "Fig. 2 — PDC topics used by surveyed programs for ABET accreditation",
        f"({analysis.num_programs} programs; bar = weighted coverage sum, "
        "n = programs covering the topic)",
        "",
    ]
    for topic in sorted(
        PdcTopic, key=lambda t: (-weights[t], -counts[t], t.label)
    ):
        lines.append(
            f"{topic.label:<{name_width}}"
            f"{_bar(weights[topic], max_weight)} "
            f"{weights[topic]:g} (n={counts[topic]})"
        )
    return "\n".join(lines)


def render_fig3(analysis: SurveyAnalysis) -> str:
    """Fig. 3: courses for PDC content by surveyed programs (percentages)."""
    pct = analysis.course_percentages
    max_pct = max(pct.values()) if pct else 1.0
    name_width = max(len(ct.value) for ct in pct) + 2 if pct else 20
    lines = [
        "Fig. 3 — Courses for PDC content by surveyed programs",
        "(bar = % of all PDC-carrying required courses)",
        "",
    ]
    for ct, value in pct.items():
        lines.append(f"{ct.value:<{name_width}}{_bar(value, max_pct)} {value:.1f}%")
    dedicated = analysis.dedicated_course_programs
    lines.append("")
    lines.append(
        f"Programs with a dedicated parallel-programming course: "
        f"{dedicated} of {analysis.num_programs}"
    )
    return "\n".join(lines)


def render_table2() -> str:
    """Table II: PDC in computer engineering knowledge areas (CE2016)."""
    table = ce_pdc_table()
    lines = [
        "Table II — PDC in Computer Engineering knowledge areas [CE2016]",
        "",
        f"{'Knowledge Area':<34}PDC-related Core Knowledge Units",
        "-" * 80,
    ]
    for area, units in table.items():
        first = True
        for unit in units:
            lines.append(f"{area if first else '':<34}{unit}")
            first = False
    return "\n".join(lines)


def render_table3() -> str:
    """Table III: PDC in software engineering knowledge areas (SE2014)."""
    table = se_pdc_table()
    lines = [
        "Table III — PDC in Software Engineering knowledge areas [SE2014]",
        "",
        f"{'Knowledge Area':<26}{'PDC-related Core Topic':<84}Level",
        "-" * 116,
    ]
    for area, topics in table.items():
        first = True
        for topic, level in topics:
            lines.append(
                f"{area if first else '':<26}{topic:<84}{level.lower()}"
            )
            first = False
    return "\n".join(lines)


def render_case_studies(reports: Sequence[ComplianceReport]) -> str:
    """§IV: the three case-study compliance verdicts."""
    lines = ["Case studies — PDC compliance (paper §IV)", ""]
    for report in reports:
        lines.append(report.summary())
        lines.append(
            "    topics: "
            + ", ".join(t.label for t in report.covered_topics)
        )
        lines.append("")
    return "\n".join(lines)

"""The curriculum advisor: from compliance gaps to concrete fixes.

The compliance engine (:mod:`repro.core.compliance`) says *whether* a
program meets the PDC requirement; the advisor says *what to do about
it*, using Table I as the recipe book (paper §II-B: "it is not hard to
integrate different parts of the knowledge area into existing courses").

For each uncovered topic the advisor finds the program's existing
required courses whose type Table I marks for that topic and proposes an
embedding there (with the substrate modules that supply lab material);
topics with no host course trigger a course-addition proposal, and if
the gaps are wide it recommends the dedicated-course approach outright.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.compliance import check_program
from repro.core.mapping import SUBSTRATE_INDEX, TABLE_I
from repro.core.program import Program
from repro.core.taxonomy import CourseType, PdcTopic

__all__ = ["Recommendation", "AdvisorReport", "advise"]


@dataclasses.dataclass(frozen=True)
class Recommendation:
    """One actionable fix."""

    topic: PdcTopic
    action: str  # "embed" or "add-course"
    target_course: Optional[str]  # course code for embeddings
    course_type: Optional[CourseType]  # type for additions
    lab_modules: List[str]

    def __str__(self) -> str:
        where = (
            f"in {self.target_course}"
            if self.target_course
            else f"via a new {self.course_type.value} course"
        )
        return f"{self.action} '{self.topic.label}' {where}"


@dataclasses.dataclass
class AdvisorReport:
    """The advisor's full plan for one program."""

    program_name: str
    already_compliant: bool
    uncovered_topics: List[PdcTopic]
    recommendations: List[Recommendation]
    suggest_dedicated_course: bool

    def summary(self) -> str:
        """A one-line plan description."""
        if self.already_compliant and not self.uncovered_topics:
            return f"{self.program_name}: full Table-I coverage; nothing to do."
        head = (
            "compliant but incomplete"
            if self.already_compliant
            else "NOT compliant"
        )
        plan = (
            "add a dedicated PDC course"
            if self.suggest_dedicated_course
            else f"{len(self.recommendations)} embedding(s)"
        )
        return (
            f"{self.program_name}: {head}; "
            f"{len(self.uncovered_topics)} topic(s) uncovered; plan: {plan}."
        )


#: If more than this many topics are uncovered, scattering them across
#: courses stops being practical and a dedicated course is the honest
#: recommendation (the trade-off §II-B describes).
_DEDICATED_THRESHOLD = 6


def advise(program: Program) -> AdvisorReport:
    """Produce the gap-fixing plan for ``program``."""
    report = check_program(program)
    uncovered = [t for t in PdcTopic if t not in report.covered_topics]

    required_by_type: Dict[CourseType, List[str]] = {}
    for course in program.required_courses():
        required_by_type.setdefault(course.course_type, []).append(course.code)

    recommendations: List[Recommendation] = []
    for topic in uncovered:
        host_code: Optional[str] = None
        host_type: Optional[CourseType] = None
        for course_type in sorted(TABLE_I[topic], key=lambda ct: ct.value):
            codes = required_by_type.get(course_type)
            if codes:
                host_code = codes[0]
                break
            if host_type is None:
                host_type = course_type
        if host_code is not None:
            recommendations.append(
                Recommendation(
                    topic=topic,
                    action="embed",
                    target_course=host_code,
                    course_type=None,
                    lab_modules=list(SUBSTRATE_INDEX[topic]),
                )
            )
        else:
            recommendations.append(
                Recommendation(
                    topic=topic,
                    action="add-course",
                    target_course=None,
                    course_type=host_type,
                    lab_modules=list(SUBSTRATE_INDEX[topic]),
                )
            )

    return AdvisorReport(
        program_name=program.name,
        already_compliant=report.compliant,
        uncovered_topics=uncovered,
        recommendations=recommendations,
        suggest_dedicated_course=len(uncovered) > _DEDICATED_THRESHOLD,
    )

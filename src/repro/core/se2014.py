"""SE2014 (SEEK): software engineering knowledge areas with PDC topics.

Table III of the paper:

================  ==================================================
Knowledge Area    PDC-related Core Topics
================  ==================================================
Computing         Concurrency primitives (e.g., semaphores and
Essentials        monitors); Construction methods for distributed
                  software (e.g., cloud and mobile computing)
================  ==================================================

Paper §V: "SEEK comprises 10 knowledge areas"; "Both topics are
classified as essential to the core and expected to be met at the
application level."  The encoding carries exactly that: both PDC topics
sit in Computing Essentials' construction-technologies unit, essential,
at :attr:`~repro.core.knowledge.CognitiveLevel.APPLICATION`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.knowledge import (
    CognitiveLevel,
    KnowledgeArea,
    KnowledgeUnit,
    TopicSpec,
)

__all__ = ["SEEK_AREAS", "se_pdc_table", "SEEK_AREA_COUNT"]

_A = CognitiveLevel.APPLICATION
_C = CognitiveLevel.COMPREHENSION

SEEK_AREA_COUNT = 10

SEEK_AREAS: List[KnowledgeArea] = [
    KnowledgeArea(
        name="Computing Essentials",
        units=(
            KnowledgeUnit(
                name="Construction technologies",
                core=True,
                topics=(
                    TopicSpec(
                        "Concurrency primitives (e.g., semaphores and monitors)",
                        _A,
                        pdc_related=True,
                    ),
                    TopicSpec(
                        "Construction methods for distributed software "
                        "(e.g., cloud and mobile computing)",
                        _A,
                        pdc_related=True,
                    ),
                    TopicSpec("Error handling and defensive programming", _A),
                ),
            ),
            KnowledgeUnit(
                name="Computer science foundations",
                core=True,
                topics=(TopicSpec("Data structures and algorithms", _A),),
            ),
        ),
    ),
    # The other nine SEEK areas (no PDC-related essential topics in Table III).
    KnowledgeArea(name="Mathematical and Engineering Fundamentals"),
    KnowledgeArea(name="Professional Practice"),
    KnowledgeArea(name="Software Modeling and Analysis"),
    KnowledgeArea(name="Requirements Analysis and Specification"),
    KnowledgeArea(name="Software Design"),
    KnowledgeArea(name="Software Verification and Validation"),
    KnowledgeArea(name="Software Process"),
    KnowledgeArea(name="Software Quality"),
    KnowledgeArea(name="Security"),
]


def se_pdc_table() -> Dict[str, List[Tuple[str, str]]]:
    """Regenerate Table III: area → [(PDC core topic, cognitive level)].

    Levels come out as names (``"APPLICATION"``) so reports can assert
    the paper's "expected to be met at the application level".
    """
    table: Dict[str, List[Tuple[str, str]]] = {}
    for area in SEEK_AREAS:
        rows: List[Tuple[str, str]] = []
        for unit in area.pdc_core_units():
            for topic in unit.pdc_topics():
                rows.append((topic.name, topic.level.name))
        if rows:
            table[area.name] = rows
    return table

"""The three case-study programs of §IV, encoded course by course.

Unlike the synthetic survey, these encodings come straight from the
paper's prose:

- **LAU** (§IV-A): a required dedicated parallel-programming course
  (multicore + OpenMP/Pthreads, then ~60% manycore/CUDA) since 1996, plus
  PDC in OS, computer organization, and database management; the course
  assesses ABET Student Outcomes 2 and 3.
- **AUC** (§IV-B): *no* dedicated required PDC course; coverage spread
  over the fundamentals sequence, computer organization/architecture
  (through Tomasulo), operating systems, software engineering, and
  concepts of programming languages; the distributed-systems course is
  required only for the CE program.
- **RIT** (§IV-C): the single breadth course *Concepts of Parallel and
  Distributed Systems* (threads + networks + security + distributed +
  parallel) since 2013, with earlier thread coverage in the second
  programming course and Mechanics of Programming.
"""

from __future__ import annotations

from repro.core.course import Course, Coverage, Depth
from repro.core.knowledge import CognitiveLevel, LearningOutcome
from repro.core.program import Program
from repro.core.taxonomy import CourseType, PdcTopic

__all__ = ["lau_program", "auc_program", "rit_program", "case_study_programs"]

_E, _W, _M = Depth.EXPOSURE, Depth.WORKING, Depth.MASTERY


def lau_program() -> Program:
    """Lebanese American University — BS Computer Science (§IV-A)."""
    parallel = Course(
        code="CSC447",
        title="Parallel Programming",
        course_type=CourseType.PARALLEL_PROGRAMMING,
        credits=3.0,
        required=True,
        year=3,
        coverage=[
            Coverage(PdcTopic.THREADS, _M),  # Pthreads/OpenMP part 2
            Coverage(PdcTopic.PARALLELISM_CONCURRENCY, _M),
            Coverage(PdcTopic.SHARED_MEMORY_PROGRAMMING, _M),
            Coverage(PdcTopic.ATOMICITY, _W),  # efficient synchronization
            Coverage(PdcTopic.PERFORMANCE, _M),  # profiling and tuning
            Coverage(PdcTopic.MULTICORE, _M),  # architectural trends
            Coverage(PdcTopic.SIMD_VECTOR, _M),  # vectors and SIMD / SIMT
            Coverage(PdcTopic.SHARED_VS_DISTRIBUTED, _W),  # cluster part
            Coverage(PdcTopic.IPC, _W),  # message-passing clusters (MPI)
            Coverage(PdcTopic.MEMORY_CACHING, _W),  # false sharing, GPU memory
        ],
        outcomes=[
            LearningOutcome(
                "Understand the challenges of as well as the motivations for "
                "using parallel programming.",
                CognitiveLevel.COMPREHENSION,
            ),
            LearningOutcome(
                "Demonstrate an ability to analyze the efficiency of a given "
                "parallel algorithm.",
                CognitiveLevel.APPLICATION,
            ),
            LearningOutcome(
                "Demonstrate an ability to design, analyze, and implement "
                "programming applications using multicore and manycore systems.",
                CognitiveLevel.APPLICATION,
            ),
        ],
    )
    return Program(
        name="Lebanese American University — BS Computer Science",
        institution="Lebanese American University",
        discipline="CS",
        accredited_since=1996,
        courses=[
            Course("CSC243", "Introduction to Object Oriented Programming",
                   CourseType.INTRO_PROGRAMMING, 3.0, year=1),
            Course("CSC245", "Objects and Data Abstraction",
                   CourseType.INTRO_PROGRAMMING, 3.0, year=1,
                   coverage=[Coverage(PdcTopic.THREADS, _E)]),
            Course("CSC310", "Algorithms and Data Structures",
                   CourseType.ALGORITHMS, 3.0, year=2),
            Course("CSC320", "Computer Organization",
                   CourseType.ARCHITECTURE, 3.0, year=2,
                   coverage=[
                       Coverage(PdcTopic.PERFORMANCE, _W),
                       Coverage(PdcTopic.MULTICORE, _W),
                       Coverage(PdcTopic.ILP, _E),
                       Coverage(PdcTopic.FLYNN, _E),
                       Coverage(PdcTopic.MEMORY_CACHING, _W),
                       Coverage(PdcTopic.PARALLELISM_CONCURRENCY, _E),
                   ]),
            Course("CSC326", "Operating Systems",
                   CourseType.OPERATING_SYSTEMS, 3.0, year=3,
                   coverage=[
                       Coverage(PdcTopic.THREADS, _W),
                       Coverage(PdcTopic.PARALLELISM_CONCURRENCY, _W),
                       Coverage(PdcTopic.SHARED_MEMORY_PROGRAMMING, _W),
                       Coverage(PdcTopic.IPC, _W),
                       Coverage(PdcTopic.ATOMICITY, _W),
                       Coverage(PdcTopic.SHARED_VS_DISTRIBUTED, _E),
                   ]),
            Course("CSC375", "Database Management Systems",
                   CourseType.DATABASE, 3.0, year=3,
                   coverage=[
                       Coverage(PdcTopic.TRANSACTIONS, _W),
                       Coverage(PdcTopic.PARALLELISM_CONCURRENCY, _E),
                   ]),
            parallel,
            Course("CSC430", "Computer Networks",
                   CourseType.NETWORKS, 3.0, year=4,
                   coverage=[
                       Coverage(PdcTopic.CLIENT_SERVER, _W),
                       Coverage(PdcTopic.IPC, _E),
                   ]),
            Course("CSC490", "Software Engineering",
                   CourseType.SOFTWARE_ENGINEERING, 3.0, year=4),
            Course("CSC498", "Senior Study", CourseType.ALGORITHMS, 3.0, year=4),
            Course("CSC331", "Theory of Computation", CourseType.ALGORITHMS, 3.0, year=3),
            Course("CSC345", "Programming Languages",
                   CourseType.PROGRAMMING_LANGUAGES, 3.0, year=3),
            Course("CSC391", "Systems Programming",
                   CourseType.SYSTEMS_PROGRAMMING, 3.0, year=3,
                   coverage=[Coverage(PdcTopic.THREADS, _E),
                             Coverage(PdcTopic.IPC, _E)]),
            Course("CSC461", "Capstone", CourseType.ALGORITHMS, 4.0, year=4),
        ],
    )


def auc_program() -> Program:
    """The American University in Cairo — BS Computer Science (§IV-B).

    The distributed approach: "The CS program does not require a
    dedicated course that covers PDC topics, yet the knowledge units to
    support this requirement are satisfied across various other courses."
    The distributed-systems course exists but is required only for CE, so
    here it is an elective.
    """
    return Program(
        name="The American University in Cairo — BS Computer Science",
        institution="The American University in Cairo",
        discipline="CS",
        courses=[
            Course("CSCE110", "Programming Fundamentals I",
                   CourseType.INTRO_PROGRAMMING, 3.0, year=1,
                   coverage=[Coverage(PdcTopic.THREADS, _E),
                             Coverage(PdcTopic.CLIENT_SERVER, _E)]),
            Course("CSCE210", "Programming Fundamentals II",
                   CourseType.INTRO_PROGRAMMING, 3.0, year=1,
                   coverage=[Coverage(PdcTopic.THREADS, _E)]),
            Course("CSCE221", "Computer Organization",
                   CourseType.ARCHITECTURE, 3.0, year=2,
                   coverage=[
                       Coverage(PdcTopic.MULTICORE, _W),
                       Coverage(PdcTopic.ILP, _W),  # pipelining, superscalar
                       Coverage(PdcTopic.PARALLELISM_CONCURRENCY, _W),
                       Coverage(PdcTopic.MEMORY_CACHING, _W),
                   ]),
            Course("CSCE321", "Computer Architecture",
                   CourseType.ARCHITECTURE, 3.0, year=3,
                   coverage=[
                       Coverage(PdcTopic.ILP, _M),  # Tomasulo, speculative & not
                       Coverage(PdcTopic.MULTICORE, _W),
                       Coverage(PdcTopic.PERFORMANCE, _W),
                       Coverage(PdcTopic.SIMD_VECTOR, _E),  # VLIW/vector units
                       Coverage(PdcTopic.FLYNN, _E),
                   ]),
            Course("CSCE345", "Operating Systems",
                   CourseType.OPERATING_SYSTEMS, 3.0, year=3,
                   coverage=[
                       Coverage(PdcTopic.THREADS, _M),  # "substantial depth"
                       Coverage(PdcTopic.PARALLELISM_CONCURRENCY, _M),
                       Coverage(PdcTopic.PERFORMANCE, _W),  # speedup
                       Coverage(PdcTopic.ATOMICITY, _M),  # mutual exclusion
                       Coverage(PdcTopic.SHARED_MEMORY_PROGRAMMING, _W),
                       Coverage(PdcTopic.IPC, _W),
                       Coverage(PdcTopic.MULTICORE, _W),  # multiproc scheduling
                   ]),
            Course("CSCE343", "Software Engineering",
                   CourseType.SOFTWARE_ENGINEERING, 3.0, year=3,
                   coverage=[
                       Coverage(PdcTopic.CLIENT_SERVER, _W),  # distributed components
                       Coverage(PdcTopic.PARALLELISM_CONCURRENCY, _E),
                   ]),
            Course("CSCE326", "Concepts of Programming Languages",
                   CourseType.PROGRAMMING_LANGUAGES, 3.0, year=3,
                   coverage=[
                       Coverage(PdcTopic.THREADS, _W),  # language thread support
                       Coverage(PdcTopic.CLIENT_SERVER, _E),  # networking support
                       Coverage(PdcTopic.PARALLELISM_CONCURRENCY, _E),
                   ]),
            Course("CSCE230", "Databases",
                   CourseType.DATABASE, 3.0, year=2,
                   coverage=[Coverage(PdcTopic.TRANSACTIONS, _W)]),
            Course("CSCE380", "Algorithms", CourseType.ALGORITHMS, 3.0, year=3),
            Course("CSCE490", "Senior Project I", CourseType.ALGORITHMS, 3.0, year=4),
            Course("CSCE491", "Senior Project II", CourseType.ALGORITHMS, 3.0, year=4),
            Course("CSCE201", "Discrete Structures", CourseType.ALGORITHMS, 3.0, year=1),
            Course("CSCE332", "Theory of Computation", CourseType.ALGORITHMS, 3.0, year=3),
            Course("CSCE232", "Networks", CourseType.NETWORKS, 3.0, year=3,
                   coverage=[Coverage(PdcTopic.CLIENT_SERVER, _W),
                             Coverage(PdcTopic.IPC, _E)]),
            Course("CSCE425", "Fundamentals of Distributed Computing",
                   CourseType.DISTRIBUTED_SYSTEMS, 3.0, required=False, year=4,
                   coverage=[
                       Coverage(PdcTopic.IPC, _M),
                       Coverage(PdcTopic.CLIENT_SERVER, _M),
                       Coverage(PdcTopic.SHARED_VS_DISTRIBUTED, _M),
                       Coverage(PdcTopic.PARALLELISM_CONCURRENCY, _W),
                   ]),
        ],
    )


def rit_program() -> Program:
    """Rochester Institute of Technology — BS Computer Science (§IV-C)."""
    cpds = Course(
        code="CSCI251",
        title="Concepts of Parallel and Distributed Systems",
        course_type=CourseType.PARALLEL_PROGRAMMING,
        credits=3.0,
        required=True,
        year=2,
        coverage=[
            Coverage(PdcTopic.THREADS, _M),  # multithreaded computing
            Coverage(PdcTopic.PARALLELISM_CONCURRENCY, _M),
            Coverage(PdcTopic.CLIENT_SERVER, _M),  # networked computers
            Coverage(PdcTopic.IPC, _W),  # sockets, datagrams
            Coverage(PdcTopic.SHARED_VS_DISTRIBUTED, _W),  # architectures
            Coverage(PdcTopic.MULTICORE, _W),
            Coverage(PdcTopic.ATOMICITY, _W),  # synchronization, deadlock
            Coverage(PdcTopic.PERFORMANCE, _E),
        ],
        outcomes=[
            LearningOutcome("Explain the concepts of processes, threads, and scheduling.",
                            CognitiveLevel.COMPREHENSION),
            LearningOutcome("Develop multithreaded programs.", CognitiveLevel.APPLICATION),
            LearningOutcome(
                "Explain the concepts of computer networking, the layered "
                "network architecture, network security, and network "
                "communication with connections and datagrams.",
                CognitiveLevel.COMPREHENSION),
            LearningOutcome("Develop network application programs.",
                            CognitiveLevel.APPLICATION),
            LearningOutcome(
                "Explain the concepts of distributed system architectures "
                "and middleware.", CognitiveLevel.COMPREHENSION),
            LearningOutcome("Explain the concepts of parallel computer architectures.",
                            CognitiveLevel.COMPREHENSION),
        ],
    )
    return Program(
        name="Rochester Institute of Technology — BS Computer Science",
        institution="Rochester Institute of Technology",
        discipline="CS",
        accredited_since=2013,
        courses=[
            Course("CSCI141", "Computer Science I", CourseType.INTRO_PROGRAMMING,
                   4.0, year=1),
            Course("CSCI142", "Computer Science II", CourseType.INTRO_PROGRAMMING,
                   4.0, year=1,
                   coverage=[Coverage(PdcTopic.THREADS, _W)]),  # Java threads in depth
            Course("CSCI243", "Mechanics of Programming",
                   CourseType.SYSTEMS_PROGRAMMING, 3.0, year=2,
                   coverage=[
                       Coverage(PdcTopic.THREADS, _M),  # pthreads in depth
                       Coverage(PdcTopic.SHARED_MEMORY_PROGRAMMING, _W),
                       Coverage(PdcTopic.MEMORY_CACHING, _W),
                   ]),
            Course("CSCI250", "Concepts of Computer Systems",
                   CourseType.ARCHITECTURE, 3.0, year=2,
                   coverage=[
                       Coverage(PdcTopic.ILP, _W),  # pipelining
                       Coverage(PdcTopic.MEMORY_CACHING, _W),
                       Coverage(PdcTopic.PARALLELISM_CONCURRENCY, _E),
                   ]),
            cpds,
            Course("CSCI261", "Analysis of Algorithms", CourseType.ALGORITHMS,
                   3.0, year=3),
            Course("CSCI262", "Introduction to Computer Science Theory",
                   CourseType.ALGORITHMS, 3.0, year=3),
            Course("CSCI320", "Principles of Data Management",
                   CourseType.DATABASE, 3.0, year=3,
                   coverage=[Coverage(PdcTopic.TRANSACTIONS, _W)]),
            Course("CSCI331", "Intro to Artificial Intelligence",
                   CourseType.ALGORITHMS, 3.0, year=3),
            Course("CSCI344", "Programming Language Concepts",
                   CourseType.PROGRAMMING_LANGUAGES, 3.0, year=3),
            Course("CSCI462", "Intro to Cryptography", CourseType.ALGORITHMS,
                   3.0, year=4),
            Course("SWEN261", "Intro to Software Engineering",
                   CourseType.SOFTWARE_ENGINEERING, 3.0, year=2),
            Course("CSCI498", "Senior Capstone", CourseType.ALGORITHMS, 4.0, year=4),
            # Post-2010 change: OS and networking became advanced electives.
            Course("CSCI452", "Operating Systems", CourseType.OPERATING_SYSTEMS,
                   3.0, required=False, year=4,
                   coverage=[
                       Coverage(PdcTopic.THREADS, _M),
                       Coverage(PdcTopic.ATOMICITY, _M),
                       Coverage(PdcTopic.IPC, _W),
                       Coverage(PdcTopic.SHARED_MEMORY_PROGRAMMING, _W),
                   ]),
            Course("CSCI351", "Data Communications and Networks",
                   CourseType.NETWORKS, 3.0, required=False, year=4,
                   coverage=[Coverage(PdcTopic.CLIENT_SERVER, _M),
                             Coverage(PdcTopic.IPC, _W)]),
        ],
    )


def case_study_programs() -> list[Program]:
    """The three §IV programs, in the paper's order."""
    return [lau_program(), auc_program(), rit_program()]

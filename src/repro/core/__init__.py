"""The curriculum & accreditation engine — the paper's contribution.

Everything §II–§V of the paper describes, as executable models:

- :mod:`repro.core.taxonomy` — the PDC topic vocabulary (Table I's rows),
  the CDER concept triad, course types (Table I's columns), and cognitive
  skill levels.
- :mod:`repro.core.knowledge` — knowledge areas/units/topics/outcomes.
- :mod:`repro.core.cs2013`, :mod:`repro.core.cc2020`,
  :mod:`repro.core.ce2016`, :mod:`repro.core.se2014` — machine-readable
  encodings of the four curricular guidelines the paper builds on.
- :mod:`repro.core.abet` — the CAC Computer Science criteria (Fig. 1's
  curriculum requirement, Student Outcomes 1–6) and the EAC criteria.
- :mod:`repro.core.course`, :mod:`repro.core.program` — course and
  program models.
- :mod:`repro.core.mapping` — Table I (concepts × courses), each cell
  backed by a runnable substrate module of this repository.
- :mod:`repro.core.coverage` — incidence matrices and the weighted-sum
  analysis of §III.
- :mod:`repro.core.batch` — the columnar encoding
  (:class:`~repro.core.batch.ProgramBatch`) and mergeable partial sums
  (:class:`~repro.core.batch.SurveyAggregate`) the §III analysis runs on.
- :mod:`repro.core.pipeline` — the streaming, sharded survey driver that
  runs the same analysis on 1M+ synthetic programs with flat memory.
- :mod:`repro.core.survey` — the 20-program survey: a calibrated
  synthetic generator plus the Fig. 2 / Fig. 3 analyzers.
- :mod:`repro.core.casestudies` — LAU, AUC, and RIT encoded from §IV.
- :mod:`repro.core.compliance` — the PDC-exposure compliance engine and
  the dedicated-vs-distributed approach classifier.
- :mod:`repro.core.report` — renderers that regenerate every table and
  figure.
"""

from repro.core.abet import (
    CAC_CS_CURRICULUM_AREAS,
    CacCriteria,
    StudentOutcome,
)
from repro.core.advisor import AdvisorReport, advise
from repro.core.batch import ProgramBatch, SurveyAggregate, batch_programs
from repro.core.casestudies import auc_program, lau_program, rit_program
from repro.core.compliance import Approach, ComplianceReport, check_program
from repro.core.course import Course, Coverage, Depth
from repro.core.coverage import CoverageMatrix, weighted_topic_scores
from repro.core.knowledge import (
    CognitiveLevel,
    KnowledgeArea,
    KnowledgeUnit,
    LearningOutcome,
    TopicSpec,
)
from repro.core.mapping import TABLE_I, substrate_for
from repro.core.pipeline import ChunkSpec, shard_survey, stream_survey, synthesize_batch
from repro.core.program import Program
from repro.core.survey import SurveyAnalysis, analyze_survey, generate_survey
from repro.core.taxonomy import CderConcept, CourseType, PdcTopic

__all__ = [
    "advise",
    "AdvisorReport",
    "analyze_survey",
    "Approach",
    "auc_program",
    "batch_programs",
    "ChunkSpec",
    "CAC_CS_CURRICULUM_AREAS",
    "CacCriteria",
    "CderConcept",
    "check_program",
    "CognitiveLevel",
    "ComplianceReport",
    "Course",
    "CourseType",
    "Coverage",
    "CoverageMatrix",
    "Depth",
    "generate_survey",
    "KnowledgeArea",
    "KnowledgeUnit",
    "lau_program",
    "LearningOutcome",
    "PdcTopic",
    "Program",
    "ProgramBatch",
    "rit_program",
    "shard_survey",
    "stream_survey",
    "StudentOutcome",
    "substrate_for",
    "SurveyAggregate",
    "SurveyAnalysis",
    "synthesize_batch",
    "TABLE_I",
    "TopicSpec",
    "weighted_topic_scores",
]

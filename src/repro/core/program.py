"""Degree programs: a named, accreditable collection of courses."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.course import Course, Depth
from repro.core.taxonomy import CourseType, PdcTopic

__all__ = ["Program"]


@dataclasses.dataclass
class Program:
    """A degree program.

    ``discipline`` distinguishes CS (CAC criteria) from CE/SE (EAC); the
    case studies instantiate one of each flavour.
    """

    name: str
    institution: str
    courses: Sequence[Course] = ()
    discipline: str = "CS"
    accredited_since: Optional[int] = None

    def __post_init__(self) -> None:
        codes = [c.code for c in self.courses]
        if len(set(codes)) != len(codes):
            raise ValueError("duplicate course codes in program")

    def required_courses(self) -> List[Course]:
        """Courses every graduate must take — where accreditation looks
        (paper §II-B: coverage must reach *all* graduating students)."""
        return [c for c in self.courses if c.required]

    def elective_courses(self) -> List[Course]:
        """The electives (context, not compliance evidence)."""
        return [c for c in self.courses if not c.required]

    def course(self, code: str) -> Course:
        """Look up a course by code."""
        for c in self.courses:
            if c.code == code:
                return c
        raise KeyError(f"no course {code!r} in {self.name}")

    def courses_of_type(self, course_type: CourseType) -> List[Course]:
        """All courses of one type."""
        return [c for c in self.courses if c.course_type is course_type]

    def has_dedicated_pdc_course(self, required_only: bool = True) -> bool:
        """Does the program include a dedicated parallel-programming course?"""
        pool = self.required_courses() if required_only else list(self.courses)
        return any(c.is_dedicated_pdc for c in pool)

    def topic_depths(self, required_only: bool = True) -> Dict[PdcTopic, List[Depth]]:
        """Every (course, topic) depth claim, grouped by topic."""
        pool = self.required_courses() if required_only else list(self.courses)
        out: Dict[PdcTopic, List[Depth]] = {}
        for course in pool:
            for topic, depth in course.coverage_map().items():
                out.setdefault(topic, []).append(depth)
        return out

    def covered_topics(self, required_only: bool = True) -> List[PdcTopic]:
        """Topics covered by at least one (required) course."""
        return sorted(self.topic_depths(required_only), key=lambda t: t.name)

    def earliest_pdc_year(self) -> Optional[int]:
        """First curriculum year touching any PDC topic (Newhall principle 1)."""
        years = [
            c.year
            for c in self.required_courses()
            if c.year is not None and c.pdc_topics()
        ]
        return min(years) if years else None

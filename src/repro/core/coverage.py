"""Coverage matrices and the §III weighted-sum analysis.

The paper's survey method: "The collected data was studied with a focus
on required courses that included PDC components … A weighted sum of all
courses that tackle specific components of the PDC knowledge area was
computed."  :class:`CoverageMatrix` builds the topics × courses incidence
matrix of one program (NumPy, so all aggregate statistics are one
vectorized reduction), and the module-level functions aggregate across
many programs — the computation behind Figs. 2 and 3.

Since the columnar refactor, the aggregate functions are thin adapters
over :mod:`repro.core.batch`: each encodes the program list **once** as
a :class:`~repro.core.batch.ProgramBatch` and reduces it in a single
vectorized pass (the old code rebuilt every program's matrix per
statistic).  The equivalence with the per-program object math is
test-enforced; :class:`CoverageMatrix` remains the object API for
single-program audits (compliance, advisor, examples).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

from repro.core.batch import ProgramBatch, SurveyAggregate, _course_type_percentages
from repro.core.program import Program
from repro.core.taxonomy import CourseType, PdcTopic

__all__ = [
    "CoverageMatrix",
    "weighted_topic_scores",
    "topic_program_counts",
    "course_type_percentages",
]

_TOPICS = list(PdcTopic)
_TOPIC_POS = {t: i for i, t in enumerate(_TOPICS)}


@dataclasses.dataclass
class CoverageMatrix:
    """The (14 topics) × (n courses) depth matrix of one program.

    ``matrix[i, j]`` is the :class:`~repro.core.course.Depth` weight with
    which course ``j`` treats topic ``i`` (0 = untouched).  Only required
    courses enter the matrix — accreditation's unit of analysis.
    """

    program: Program
    matrix: np.ndarray
    course_codes: List[str]
    course_types: List[CourseType]

    @classmethod
    def of(cls, program: Program) -> "CoverageMatrix":
        """Build the matrix for ``program``'s required courses."""
        courses = program.required_courses()
        matrix = np.zeros((len(_TOPICS), len(courses)), dtype=float)
        for j, course in enumerate(courses):
            for topic, depth in course.coverage_map().items():
                matrix[_TOPIC_POS[topic], j] = float(int(depth))
        return cls(
            program=program,
            matrix=matrix,
            course_codes=[c.code for c in courses],
            course_types=[c.course_type for c in courses],
        )

    # -- per-program statistics (all vectorized) ---------------------------
    def topic_weights(self) -> Dict[PdcTopic, float]:
        """§III's weighted sum per topic: sum of depths across courses."""
        sums = self.matrix.sum(axis=1)
        return {t: float(sums[i]) for i, t in enumerate(_TOPICS)}

    def topic_course_counts(self) -> Dict[PdcTopic, int]:
        """Unweighted variant (the ablation): courses touching each topic."""
        counts = (self.matrix > 0).sum(axis=1)
        return {t: int(counts[i]) for i, t in enumerate(_TOPICS)}

    def covered_topics(self) -> List[PdcTopic]:
        """Topics with nonzero coverage."""
        mask = self.matrix.sum(axis=1) > 0
        return [t for i, t in enumerate(_TOPICS) if mask[i]]

    def pdc_courses(self) -> List[str]:
        """Codes of courses carrying any PDC coverage."""
        mask = self.matrix.sum(axis=0) > 0
        return [c for c, m in zip(self.course_codes, mask) if m]

    def total_weight(self) -> float:
        """The program's total PDC weight (its overall emphasis score)."""
        return float(self.matrix.sum())


def weighted_topic_scores(
    programs: Sequence[Program], weighted: bool = True
) -> Dict[PdcTopic, float]:
    """Aggregate topic scores across programs (the Fig. 2 computation).

    With ``weighted=True``, depth weights contribute (the paper's
    method); with ``False``, each covering course counts 1 (the
    ablation).  Scores are summed over programs — one columnar encode,
    one vectorized reduction.
    """
    batch = ProgramBatch.from_programs(programs)
    eff = batch.depth * batch.required[:, None]
    totals = eff.sum(axis=0) if weighted else (eff > 0).sum(axis=0)
    return {t: float(totals[i]) for i, t in enumerate(_TOPICS)}


def topic_program_counts(programs: Sequence[Program]) -> Dict[PdcTopic, int]:
    """How many programs cover each topic at all (Fig. 2's bar heights)."""
    counts = SurveyAggregate.of_programs(programs).topic_counts
    return {t: int(counts[i]) for i, t in enumerate(_TOPICS)}


def course_type_percentages(programs: Sequence[Program]) -> Dict[CourseType, float]:
    """Fig. 3's series: of all PDC-carrying required courses across the
    surveyed programs, what percentage is of each course type?"""
    return _course_type_percentages(
        SurveyAggregate.of_programs(programs).course_type_counts
    )

"""Table I: PDC concepts × typical courses — every cell backed by code.

:data:`TABLE_I` reproduces the paper's mapping verbatim (14 topics × 5
course types, the × marks).  :data:`SUBSTRATE_INDEX` goes one step beyond
the paper: each topic names the modules of this repository that implement
it, so the mapping is not just a curriculum-planning table but an index
into runnable teaching material.  ``tests/core/test_mapping.py`` imports
every listed module — the "every cell is backed by a runnable substrate"
guarantee in DESIGN.md.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Set

from repro.core.taxonomy import CourseType, PdcTopic

__all__ = ["TABLE_I", "SUBSTRATE_INDEX", "substrate_for", "verify_substrates"]

_SYS = CourseType.SYSTEMS_PROGRAMMING
_ARCH = CourseType.ARCHITECTURE
_OS = CourseType.OPERATING_SYSTEMS
_DB = CourseType.DATABASE
_NET = CourseType.NETWORKS

#: The paper's Table I, row by row.  A topic maps to the set of course
#: types marked × in its row.
TABLE_I: Dict[PdcTopic, Set[CourseType]] = {
    PdcTopic.THREADS: {_SYS, _OS, _NET},
    PdcTopic.TRANSACTIONS: {_DB},
    PdcTopic.PARALLELISM_CONCURRENCY: {_SYS, _ARCH, _OS, _DB, _NET},
    PdcTopic.SHARED_MEMORY_PROGRAMMING: {_SYS, _OS},
    PdcTopic.IPC: {_SYS, _OS, _NET},
    PdcTopic.ATOMICITY: {_SYS, _OS},
    PdcTopic.PERFORMANCE: {_ARCH},
    PdcTopic.MULTICORE: {_ARCH},
    PdcTopic.SHARED_VS_DISTRIBUTED: {_SYS, _ARCH, _OS},
    PdcTopic.SIMD_VECTOR: {_ARCH},
    PdcTopic.ILP: {_ARCH},
    PdcTopic.FLYNN: {_ARCH},
    PdcTopic.CLIENT_SERVER: {_SYS, _NET},
    PdcTopic.MEMORY_CACHING: {_SYS, _ARCH, _OS},
}

#: Topic → substrate modules in this repository that implement it.
SUBSTRATE_INDEX: Dict[PdcTopic, List[str]] = {
    PdcTopic.THREADS: [
        "repro.smp.pool",
        "repro.smp.locks",
        "repro.oskernel.syncproblems",
    ],
    PdcTopic.TRANSACTIONS: [
        "repro.db.transaction",
        "repro.db.locking",
        "repro.db.engine",
        "repro.db.serializability",
    ],
    PdcTopic.PARALLELISM_CONCURRENCY: [
        "repro.smp",
        "repro.mp",
        "repro.algorithms.dag",
    ],
    PdcTopic.SHARED_MEMORY_PROGRAMMING: [
        "repro.smp.monitor",
        "repro.smp.squeue",
        "repro.smp.racedetect",
        "repro.smp.falseshare",
    ],
    PdcTopic.IPC: [
        "repro.mp.communicator",
        "repro.net.sockets",
        "repro.smp.squeue",
    ],
    PdcTopic.ATOMICITY: ["repro.smp.atomics"],
    PdcTopic.PERFORMANCE: ["repro.arch.laws"],
    PdcTopic.MULTICORE: ["repro.arch.coherence", "repro.oskernel.smp"],
    PdcTopic.SHARED_VS_DISTRIBUTED: [
        "repro.mp",
        "repro.smp",
        "repro.dist.clocks",
    ],
    PdcTopic.SIMD_VECTOR: ["repro.arch.vector", "repro.gpu"],
    PdcTopic.ILP: ["repro.arch.pipeline", "repro.arch.tomasulo"],
    PdcTopic.FLYNN: ["repro.arch.flynn"],
    PdcTopic.CLIENT_SERVER: [
        "repro.net.clientserver",
        "repro.dist.middleware",
    ],
    PdcTopic.MEMORY_CACHING: ["repro.arch.cache", "repro.arch.coherence"],
}


def substrate_for(topic: PdcTopic) -> List[str]:
    """The runnable modules implementing ``topic``."""
    return list(SUBSTRATE_INDEX[topic])


def verify_substrates() -> Dict[PdcTopic, List[str]]:
    """Import every indexed module; returns the verified index.

    Raises ``ImportError`` if any Table I cell points at a module that
    does not exist — the invariant the test suite locks in.
    """
    for topic, modules in SUBSTRATE_INDEX.items():
        for module in modules:
            importlib.import_module(module)
    return {t: list(m) for t, m in SUBSTRATE_INDEX.items()}

"""Bench for Table I — the PDC-concept x course mapping.

Regenerates the table and verifies every cell is backed by an importable
substrate module of this repository.  Paper-vs-measured: 14 topics, 5
course types, 29 x-marks, identical cell placement.
"""

from repro.core.mapping import TABLE_I, verify_substrates
from repro.core.report import render_table1
from repro.core.taxonomy import PdcTopic


def test_bench_table1_regeneration(benchmark):
    text = benchmark(render_table1)
    print()
    print(text)
    assert sum(len(cols) for cols in TABLE_I.values()) == 29
    assert len(TABLE_I) == len(PdcTopic) == 14


def test_bench_table1_substrate_verification(benchmark):
    verified = benchmark(verify_substrates)
    total_modules = sum(len(m) for m in verified.values())
    print(f"\n  every Table-I topic maps to runnable code: "
          f"{total_modules} module references across {len(verified)} topics")
    assert total_modules >= 14

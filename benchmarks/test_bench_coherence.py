"""Supporting bench: coherence-protocol and false-sharing ablations.

Table I's architecture column covers "multiprocessor caches and cache
coherence"; the LAU course covers false sharing.  Two ablations:

- MESI vs MSI bus transactions on a private read-modify-write workload
  (MESI's E state removes the upgrade broadcasts);
- adjacent vs padded per-core counters (false sharing) on the cache-line
  model.
"""

from repro.arch.coherence import CoherentSystem, Protocol, private_rw_workload
from repro.smp.falseshare import false_sharing_demo


def test_bench_mesi_vs_msi_ablation(benchmark):
    cores, repeats = 8, 50
    workload = private_rw_workload(cores, repeats)

    def run():
        msi = CoherentSystem(cores, Protocol.MSI)
        mesi = CoherentSystem(cores, Protocol.MESI)
        msi.run_trace(workload)
        mesi.run_trace(workload)
        return msi.stats, mesi.stats

    msi, mesi = benchmark(run)
    print(f"\n  private r/w workload, {cores} cores x {repeats} rounds")
    print(f"  MSI:  {msi.total_transactions} bus transactions "
          f"({msi.bus_upgr} upgrades)")
    print(f"  MESI: {mesi.total_transactions} bus transactions "
          f"({mesi.bus_upgr} upgrades)")
    assert mesi.bus_upgr == 0
    assert msi.bus_upgr == cores
    assert mesi.total_transactions < msi.total_transactions


def test_bench_false_sharing_ablation(benchmark):
    result = benchmark(false_sharing_demo, 8, 200, 8)
    print(f"\n  shared layout: {result['shared_misses']} coherence misses, "
          f"{result['shared_invalidations']} invalidations")
    print(f"  padded layout: {result['padded_misses']} coherence misses, "
          f"{result['padded_invalidations']} invalidations")
    assert result["padded_misses"] == 8  # cold misses only
    assert result["shared_misses"] > 100 * result["padded_misses"]

"""Supporting bench: scheduling and concurrency-control ablations.

Covers the OS column's "scheduling on single and multiprocessor systems"
(AUC §IV-B) and the database column's deadlock handling:

- single-CPU policy comparison on a common workload;
- round-robin quantum sweep (response vs context switches);
- priority aging sweep (the starvation fix);
- SMP work stealing on/off under skew;
- deadlock-policy abort counts on a contended transaction mix.
"""

import numpy as np

from repro.db import DeadlockPolicy, Op, Transaction, TransactionEngine
from repro.oskernel import (
    FCFS,
    MLFQ,
    PriorityScheduler,
    RoundRobin,
    SJF,
    SRTF,
    Workloads,
    simulate,
)
from repro.oskernel.smp import SmpPolicy, simulate_smp, skewed_tasks


def test_bench_policy_comparison(benchmark):
    workload = Workloads.random(30, seed=11)
    policies = [FCFS(), SJF(), SRTF(), RoundRobin(4), PriorityScheduler(), MLFQ()]

    def run():
        return {type(p).__name__: simulate(workload, p) for p in policies}

    results = benchmark(run)
    print("\n  policy              wait    turn    resp   switches")
    for name, m in results.items():
        print(f"  {name:<18s} {m.avg_waiting:>6.2f} {m.avg_turnaround:>7.2f} "
              f"{m.avg_response:>7.2f} {m.context_switches:>7d}")
    waits = {n: m.avg_waiting for n, m in results.items()}
    assert waits["SRTF"] == min(waits.values())


def test_bench_rr_quantum_sweep(benchmark):
    workload = Workloads.random(25, seed=12)
    quanta = (1, 2, 4, 8, 16)

    def sweep():
        return {q: simulate(workload, RoundRobin(q)) for q in quanta}

    results = benchmark(sweep)
    print("\n  quantum  avg response  context switches")
    for q, m in results.items():
        print(f"  {q:<8d} {m.avg_response:>12.2f} {m.context_switches:>14d}")
    assert results[1].context_switches > results[16].context_switches
    assert results[1].avg_response <= results[16].avg_response


def test_bench_priority_aging_sweep(benchmark):
    workload = Workloads.starvation_prone(20)

    def victim_wait(metrics):
        return next(p for p in metrics.processes if p.pid == 999).waiting

    def sweep():
        return {
            rate: victim_wait(simulate(workload, PriorityScheduler(aging_every=rate)))
            for rate in (None, 5, 3, 2, 1)
        }

    waits = benchmark(sweep)
    print("\n  aging rate -> starvation victim's waiting time")
    for rate, wait in waits.items():
        print(f"    {str(rate):<6s} {wait}")
    assert waits[1] < waits[None]


def test_bench_work_stealing_ablation(benchmark):
    tasks = skewed_tasks(300, seed=13, skew=3.0)

    def run():
        return {
            policy: simulate_smp(tasks, 8, policy)
            for policy in SmpPolicy
        }

    results = benchmark(run)
    print("\n  SMP policy      makespan  imbalance  steals")
    for policy, r in results.items():
        print(f"  {policy.value:<14s} {r.makespan:>8.1f} {r.imbalance:>10.3f} "
              f"{r.steals:>7d}")
    assert (
        results[SmpPolicy.WORK_STEALING].makespan
        <= results[SmpPolicy.PARTITIONED].makespan
    )


def test_bench_deadlock_policy_ablation(benchmark):
    rng = np.random.default_rng(14)
    txns = []
    for i in range(1, 9):
        items = rng.choice(["a", "b", "c", "d"], size=4)
        ops = [
            Op.read(i, str(it)) if j % 2 == 0 else Op.write(i, str(it))
            for j, it in enumerate(items)
        ]
        txns.append(Transaction(i, ops))

    def run():
        return {
            policy: TransactionEngine(txns, policy=policy).run()
            for policy in DeadlockPolicy
        }

    reports = benchmark(run)
    print("\n  deadlock policy  aborts  turns  committed")
    for policy, report in reports.items():
        print(f"  {policy.value:<15s} {report.aborts:>6d} {report.turns:>6d} "
              f"{len(report.committed):>9d}")
        assert len(report.committed) == 8


def test_bench_multiprogramming_curve(benchmark):
    """The classic lecture figure: CPU utilization vs degree of
    multiprogramming for I/O-bound jobs (cpu 2, io 8 -> saturates at 5)."""
    from repro.oskernel.iosim import multiprogramming_curve

    curve = benchmark(
        multiprogramming_curve, [1, 2, 3, 4, 5, 6, 8], RoundRobin, 2, 8, 5
    )
    print("\n  degree  CPU utilization")
    for degree, utilization in curve.items():
        bar = "#" * round(40 * utilization)
        print(f"  {degree:<7d} {utilization:5.2f}  {bar}")
    assert curve[1] < 0.3
    assert curve[5] > 0.95
    values = [curve[d] for d in (1, 2, 3, 4, 5)]
    assert values == sorted(values)

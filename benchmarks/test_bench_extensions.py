"""Ablation benches for the extension features.

- GPU concurrent streams (LAU §IV-A: "using concurrent streams"):
  serialized vs. streamed pipeline makespan.
- Two-phase commit: message complexity and the crash-blocking window.
- MPI-IO: contiguous vs. strided collective writes.
"""

import numpy as np

from repro.dist.commit import Coordinator, Participant
from repro.gpu.streams import pipeline_demo
from repro.mp import run_spmd
from repro.mp.io import MpiFile, SimFile


def test_bench_stream_overlap_ablation(benchmark):
    def sweep():
        return {
            streams: pipeline_demo(chunks=8, num_streams=streams)
            for streams in (1, 2, 4, 8)
        }

    results = benchmark(sweep)
    print("\n  streams  serial-makespan  streamed-makespan")
    for streams, (serial, streamed) in results.items():
        print(f"  {streams:<8d} {serial:<16.1f} {streamed:.1f}")
    serial, one = results[1]
    assert one == serial  # one stream: no overlap possible
    assert results[8][1] < serial / 2  # deep pipelining


def test_bench_two_phase_commit(benchmark):
    def run():
        out = {}
        for n in (2, 4, 8):
            parts = [Participant(f"p{i}") for i in range(n)]
            out[n] = Coordinator(parts).run()
        return out

    outcomes = benchmark(run)
    print("\n  participants  messages  (3n expected)")
    for n, outcome in outcomes.items():
        print(f"  {n:<13d} {outcome.messages:<9d} {3 * n}")
        assert outcome.committed
        assert outcome.messages == 3 * n


def test_bench_mpi_io_patterns(benchmark):
    def run():
        contiguous = SimFile()

        def write_contiguous(comm):
            fh = MpiFile(comm, contiguous)
            buf = np.full(64, comm.Get_rank(), dtype=np.int32)
            fh.Write_at_all(comm.Get_rank() * buf.nbytes, buf)

        run_spmd(4, write_contiguous)

        strided = SimFile()

        def write_strided(comm):
            fh = MpiFile(comm, strided)
            buf = np.full(64, comm.Get_rank(), dtype=np.int32)
            fh.Set_view(displacement_bytes=4 * comm.Get_rank())
            fh.Write_all(buf)

        run_spmd(4, write_strided)
        return contiguous, strided

    contiguous, strided = benchmark(run)
    print(f"\n  contiguous Write_at_all: {contiguous.write_calls} write calls, "
          f"{contiguous.size} bytes")
    print(f"  strided Write_all:       {strided.write_calls} write calls, "
          f"{strided.size} bytes")
    assert contiguous.size == strided.size == 4 * 64 * 4
    # Strided views decompose into per-block writes — the I/O-request
    # amplification collective buffering exists to fix.
    assert strided.write_calls > contiguous.write_calls

"""Supporting bench: the speedup/scalability laws the courses teach.

The survey's architecture courses teach "Amdahl's law and its implication
…, speedup and scalability" (paper §III).  Regenerates the Amdahl vs
Gustafson curve data and checks the shapes: Amdahl saturates below 1/(1-f),
Gustafson stays linear, efficiency decays monotonically.
"""

import numpy as np

from repro.arch.laws import amdahl_limit, speedup_sweep


def test_bench_speedup_sweep(benchmark):
    sweep = benchmark(speedup_sweep, 0.95, 4096)
    p = sweep["processors"]
    amdahl = sweep["amdahl"]
    gustafson = sweep["gustafson"]
    rows = [1, 8, 64, 512, 4096]
    print("\n  p      Amdahl(f=.95)  Gustafson(f=.95)  efficiency")
    for r in rows:
        i = r - 1
        print(
            f"  {r:<6d} {amdahl[i]:>13.2f} {gustafson[i]:>17.2f} "
            f"{sweep['amdahl_efficiency'][i]:>11.3f}"
        )
    limit = float(amdahl_limit(0.95))
    print(f"  Amdahl limit: {limit:g}")
    assert np.all(amdahl < limit)
    assert amdahl[-1] > 0.9 * limit  # saturation reached
    assert gustafson[-1] > 100 * amdahl[-1]  # the scaled-speedup contrast
    assert np.all(np.diff(sweep["amdahl_efficiency"]) <= 1e-12)


def test_bench_karp_flatt_diagnosis(benchmark):
    """Karp-Flatt over measured speedups recovers a flat serial fraction
    for an Amdahl-faithful program (no parallel overhead)."""
    from repro.arch.laws import amdahl_speedup, karp_flatt

    p = np.array([2, 4, 8, 16, 32, 64], dtype=float)

    def diagnose():
        observed = amdahl_speedup(0.9, p)
        return karp_flatt(observed, p)

    fractions = benchmark(diagnose)
    print(f"\n  Karp-Flatt serial fraction across p: {np.round(fractions, 6)}")
    assert np.allclose(fractions, 0.1)

"""Bench for Fig. 2 — PDC topics used by the surveyed programs.

Runs the §III weighted-sum analysis over the 20-program synthetic survey
(paper data substitution per DESIGN.md).  Paper-vs-measured shape:
"Parallelism and concurrency" leads (it is marked in all five Table-I
columns); every topic is covered by at least one program.
"""

from repro.core.report import render_fig2
from repro.core.survey import analyze_survey, generate_survey
from repro.core.taxonomy import PdcTopic


def test_bench_fig2_topic_analysis(benchmark):
    programs = generate_survey(seed=2021)
    analysis = benchmark(analyze_survey, programs)
    print()
    print(render_fig2(analysis))
    assert analysis.top_topics(1) == [PdcTopic.PARALLELISM_CONCURRENCY]
    assert all(c > 0 for c in analysis.topic_counts.values())


def test_bench_fig2_weighted_vs_unweighted_ablation(benchmark):
    """Ablation: does the depth weighting change the topic ranking?"""
    from repro.core.coverage import weighted_topic_scores

    programs = generate_survey(seed=2021)

    def both():
        return (
            weighted_topic_scores(programs, weighted=True),
            weighted_topic_scores(programs, weighted=False),
        )

    weighted, unweighted = benchmark(both)
    rank_w = sorted(PdcTopic, key=lambda t: -weighted[t])
    rank_u = sorted(PdcTopic, key=lambda t: -unweighted[t])
    agreements = sum(1 for a, b in zip(rank_w[:5], rank_u[:5]) if a == b)
    print(f"\n  top-5 rank agreement (weighted vs unweighted): {agreements}/5")
    print(f"  weighted top-3:   {[t.name for t in rank_w[:3]]}")
    print(f"  unweighted top-3: {[t.name for t in rank_u[:3]]}")
    # The headline finding is robust to the weighting choice:
    assert rank_w[0] is PdcTopic.PARALLELISM_CONCURRENCY
    assert rank_u[0] is PdcTopic.PARALLELISM_CONCURRENCY

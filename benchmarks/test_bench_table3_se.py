"""Bench for Table III — PDC in SE2014 (SEEK) knowledge areas.

Paper-vs-measured: exact reproduction — one knowledge area (Computing
Essentials), two PDC-related essential topics, both at the application
cognitive level, out of SEEK's ten areas.
"""

from repro.core.report import render_table3
from repro.core.se2014 import SEEK_AREAS, se_pdc_table


def test_bench_table3_regeneration(benchmark):
    table = benchmark(se_pdc_table)
    print()
    print(render_table3())
    assert len(SEEK_AREAS) == 10
    assert list(table) == ["Computing Essentials"]
    topics = table["Computing Essentials"]
    assert len(topics) == 2
    assert all(level == "APPLICATION" for _t, level in topics)

"""Bench for §IV — the three case-study compliance analyses.

Paper-vs-measured: LAU compliant via a dedicated course, AUC compliant
via the distributed approach, RIT compliant via a dedicated (breadth)
course; all three cover all three CDER concepts.
"""

from repro.core.casestudies import case_study_programs
from repro.core.compliance import Approach, check_program
from repro.core.report import render_case_studies


def test_bench_case_study_compliance(benchmark):
    programs = case_study_programs()

    def run():
        return [check_program(p) for p in programs]

    reports = benchmark(run)
    print()
    print(render_case_studies(reports))
    lau, auc, rit = reports
    assert lau.compliant and lau.approach is Approach.DEDICATED_COURSE
    assert auc.compliant and auc.approach is Approach.DISTRIBUTED
    assert rit.compliant and rit.approach is Approach.DEDICATED_COURSE
    assert all(r.concepts_complete for r in reports)
    assert all(r.newhall.score >= 3 for r in reports)

"""Supporting bench: cost of the fault-injection layer.

Two claims the design makes, measured:

- *No plan, no cost*: with no ``FaultPlan`` attached, the datagram path's
  fault hook is a single ``is None`` test — an inactive (empty) plan adds
  only the query overhead, and neither should move throughput materially.
- The :class:`~repro.faults.policies.Retry` wrapper around an RPC stub
  is cheap when calls succeed (its cost is one ``try`` per call, not a
  sleep).
"""

from repro.dist.middleware import RpcServer, rpc_proxy
from repro.faults import FaultPlan, Retry
from repro.net.simnet import Address, Network

_BURST = 200


class _Echo:
    def ping(self, i):
        return i


def _datagram_burst(net):
    box = net.bind_datagram(Address("box", 1))
    src = Address("tx", 1)
    for i in range(_BURST):
        net.send_datagram(src, Address("box", 1), i)
    while box.try_get() is not None:
        pass
    net.unbind_datagram(Address("box", 1))


def test_bench_datagrams_no_plan(benchmark):
    net = Network()
    benchmark(lambda: _datagram_burst(net))
    assert net.fault_plan is None


def test_bench_datagrams_inactive_plan(benchmark):
    # An attached-but-empty plan: the hook runs, every query misses.
    net = Network()
    net.attach_fault_plan(FaultPlan())
    benchmark(lambda: _datagram_burst(net))
    assert len(net.fault_plan) == 0


def test_bench_rpc_plain(benchmark):
    net = Network()
    with RpcServer(net, Address("srv", 80), _Echo()):
        stub = rpc_proxy(net, Address("srv", 80), timeout=10.0)

        def burst():
            return sum(stub.ping(i) for i in range(50))

        assert benchmark(burst) == sum(range(50))


def test_bench_rpc_retry_wrapped(benchmark):
    # Fault-free path through the Retry wrapper: the resilience tax when
    # nothing goes wrong should be noise, not a slowdown.
    net = Network()
    with RpcServer(net, Address("srv", 80), _Echo()):
        stub = rpc_proxy(net, Address("srv", 80), timeout=10.0)
        ping = Retry(attempts=3, base_delay=0.01)(stub.ping)

        def burst():
            return sum(ping(i) for i in range(50))

        assert benchmark(burst) == sum(range(50))

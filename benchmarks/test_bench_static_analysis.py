"""Benches: PDC-Lint throughput over the repo's own source tree.

The analyzer runs on every student submission (and in CI over all of
``src/repro``), so its speed is a pedagogy-latency number: files/second
here is the turnaround an autograded lab sees.  The corpus bench isolates
the per-module cost — parse, CFG, lockset dataflow, all rules — on the
seeded fixture programs.
"""

import os

from repro.analysis import analyze_paths, analyze_source
from repro.smp.fixtures import all_fixtures

SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def test_bench_selflint_throughput(benchmark):
    result = benchmark(analyze_paths, [os.path.normpath(SRC)])
    if benchmark.stats is not None:  # absent under --benchmark-disable
        stats = benchmark.stats.stats
        files_per_s = result.files / stats.mean
        print(f"\n  self-lint: {result.files} files in "
              f"{stats.mean * 1e3:.1f} ms mean = {files_per_s:.0f} files/s "
              f"({len(result.findings)} findings, "
              f"{result.suppressed} suppressed)")
    assert result.files > 50
    assert result.findings == []
    assert result.exit_code == 0


def test_bench_fixture_corpus(benchmark):
    fixtures = all_fixtures()

    def run():
        return [
            {f.rule for f in analyze_source(fix.source, path=fix.name)}
            for fix in fixtures
        ]

    found = benchmark(run)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        stats = benchmark.stats.stats
        per_module_us = stats.mean / len(fixtures) * 1e6
        print(f"\n  corpus: {len(fixtures)} fixture modules, "
              f"{per_module_us:.0f} us/module mean")
    for fix, rules in zip(fixtures, found):
        assert rules == set(fix.expect_rules)

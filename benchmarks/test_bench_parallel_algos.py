"""Supporting bench: parallel algorithms vs their serial baselines.

CS2013's PD area requires parallel-algorithm analysis; these benches
regenerate the standard comparisons: fork-join sort vs serial sort,
step/work trade-off of the two parallel scans, loop-order cache behaviour
of matrix multiply, and Brent's bound on greedy schedules.
"""

import numpy as np
import pytest

from repro.algorithms.dag import TaskDag, brent_bound, greedy_schedule
from repro.algorithms.matrix import matmul_loop_orders
from repro.algorithms.scan import blelloch_scan, hillis_steele_scan
from repro.algorithms.sorting import parallel_mergesort, serial_mergesort

_DATA = list(np.random.default_rng(42).integers(0, 1_000_000, 4000))


def test_bench_serial_mergesort_baseline(benchmark):
    result = benchmark(serial_mergesort, _DATA)
    assert result == sorted(_DATA)


def test_bench_parallel_mergesort(benchmark):
    result, stats = benchmark(parallel_mergesort, _DATA, 2, 64)
    print(f"\n  forked tasks: {stats.forked_tasks}, "
          f"sequential leaf tasks: {stats.sequential_tasks}")
    assert result == sorted(_DATA)


def test_bench_scan_work_step_tradeoff(benchmark):
    """Hillis-Steele: fewer steps; Blelloch: less work — the lecture table."""
    x = np.ones(1 << 14)

    def both():
        _, hs = hillis_steele_scan(x)
        _, bl = blelloch_scan(x)
        return hs, bl

    hs, bl = benchmark(both)
    print(f"\n  n = {x.size}")
    print(f"  Hillis-Steele: steps={hs.steps:>3d}  work={hs.work}")
    print(f"  Blelloch:      steps={bl.steps:>3d}  work={bl.work}")
    assert hs.steps == 14
    assert bl.steps == 28
    assert bl.work < hs.work / 5  # Θ(n) vs Θ(n log n)


def test_bench_matmul_loop_order_ablation(benchmark):
    rates = benchmark(matmul_loop_orders, 16)
    print("\n  loop order -> simulated cache miss rate")
    for order, rate in sorted(rates.items(), key=lambda kv: kv[1]):
        print(f"    {order}: {rate:.3f}")
    assert rates["ikj"] < rates["ijk"] < 1.0


def test_bench_brent_bound_on_fork_join_tree(benchmark):
    dag = TaskDag.fork_join_tree(6)  # 2^7 - 1 + join tasks

    def schedule_all():
        return {p: greedy_schedule(dag, p).makespan for p in (1, 2, 4, 8, 16)}

    makespans = benchmark(schedule_all)
    print(f"\n  work={dag.work:g} span={dag.span:g} "
          f"parallelism={dag.parallelism:.1f}")
    print("  p      T_p     Brent bound")
    for p, tp in makespans.items():
        bound = brent_bound(dag.work, dag.span, p)
        print(f"  {p:<6d} {tp:<7g} {bound:g}")
        assert tp <= bound + 1e-9
    assert makespans[1] == dag.work
    assert makespans[16] >= dag.span

"""Supporting bench: cost of the sanitizer layer.

Two claims the design makes, measured:

- *No sanitizer, no cost*: the hook bus the ``smp`` primitives call on
  every acquire/release is a truthiness test when nothing is installed —
  the reason the hooks can stay in the production primitives (the TSan
  ship-it-in-the-compiler argument, in miniature).
- Instrumented whole-program runs are cheap enough for an autograder
  loop: one corpus twin instruments, executes, and reports in one
  benchmark round.
"""

from repro.sanitizers import Sanitizer, run_fixture
from repro.smp.fixtures import fixture
from repro.smp.locks import InstrumentedLock
from repro.smp.racedetect import LocksetRaceDetector, SharedVariable

_ROUNDS = 200


def _lock_burst():
    lock = InstrumentedLock("bench")
    for _ in range(_ROUNDS):
        lock.acquire()
        lock.release()
    return lock.acquisitions


def test_bench_lock_loop_hooks_inactive(benchmark):
    # Baseline: the hook bus is installed-empty — each event is a loop
    # over zero runtimes.
    assert benchmark(_lock_burst) == _ROUNDS


def test_bench_lock_loop_under_fasttrack(benchmark):
    san = Sanitizer()
    with san.activate():
        assert benchmark(_lock_burst) == _ROUNDS
    assert san.findings() == []


def test_bench_shared_variable_under_fasttrack(benchmark):
    san = Sanitizer()

    def burst():
        detector = LocksetRaceDetector()
        cell = SharedVariable("cell", 0, detector)
        for _ in range(_ROUNDS):
            cell.write(cell.read() + 1)
        return cell.read()

    with san.activate():
        assert benchmark(burst) == _ROUNDS
    # Single-threaded: every access is the same-epoch O(1) fast path.
    assert san.findings() == []


def test_bench_corpus_twin_end_to_end(benchmark):
    fix = fixture("racy_counter_twin")
    run = benchmark(lambda: run_fixture(fix))
    assert "PDC301" in run.rules

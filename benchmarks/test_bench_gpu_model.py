"""Supporting bench: the SIMT model's coalescing and divergence ablations.

The LAU course's manycore part (paper §IV-A) grades memory-access
patterns; these benches regenerate the coalesced-vs-strided transaction
table and the tile-size sweep for the shared-memory matmul.
"""

import numpy as np

from repro.gpu import Device, GlobalArray, launch
from repro.gpu.libdevice import device_matmul, vector_add, vector_add_strided


def test_bench_coalescing_ablation(benchmark):
    n = 1024

    def run():
        dev = Device()
        a = GlobalArray.from_host(np.ones(n))
        b = GlobalArray.from_host(np.ones(n))
        out = GlobalArray.zeros(n)
        coalesced = launch(dev, vector_add, grid=n // 64, block=64)(a, b, out)
        strided = launch(dev, vector_add_strided, grid=n // 64, block=64)(
            a, b, out, 33
        )
        return coalesced, strided

    coalesced, strided = benchmark(run)
    print(f"\n  coalesced: {coalesced.transactions} transactions "
          f"(efficiency {coalesced.coalescing_efficiency():.2f})")
    print(f"  strided:   {strided.transactions} transactions "
          f"(efficiency {strided.coalescing_efficiency():.2f})")
    assert coalesced.coalescing_efficiency() > 0.95
    assert strided.transactions > 5 * coalesced.transactions


def test_bench_tile_size_ablation(benchmark):
    rng = np.random.default_rng(0)
    a = rng.random((16, 16))
    b = rng.random((16, 16))

    def sweep():
        loads = {}
        for tile in (2, 4, 8):
            _c, stats = device_matmul(Device(), a, b, tile=tile)
            loads[tile] = stats.global_loads
        return loads

    loads = benchmark(sweep)
    print("\n  tile size -> global loads (bigger tiles reuse more)")
    for tile, n_loads in loads.items():
        print(f"    {tile}x{tile}: {n_loads}")
    assert loads[8] < loads[4] < loads[2]


def test_bench_divergence_ablation(benchmark):
    def uniform(ctx, out):
        if ctx.branch(ctx.block_idx.x == 0):
            out[ctx.global_id()] = 1.0
        return
        yield

    def divergent(ctx, out):
        if ctx.branch(ctx.thread_idx.x % 2 == 0):
            out[ctx.global_id()] = 1.0
        return
        yield

    def run():
        dev = Device()
        out = GlobalArray.zeros(256)
        u = launch(dev, uniform, grid=4, block=64)(out)
        d = launch(dev, divergent, grid=4, block=64)(out)
        return u, d

    u, d = benchmark(run)
    print(f"\n  uniform branch:   divergence rate {u.divergence_rate():.2f}")
    print(f"  divergent branch: divergence rate {d.divergence_rate():.2f}")
    assert u.divergence_rate() == 0.0
    assert d.divergence_rate() == 1.0

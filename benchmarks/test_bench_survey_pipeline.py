"""Bench for the §III survey pipeline, end to end.

Generate 20 programs -> build coverage matrices -> weighted-sum analysis
-> compliance checks.  Paper-vs-measured: 20/20 programs accreditable,
1/20 via a dedicated course, 19/20 via the distributed approach.
"""

from repro.core.compliance import Approach, check_program
from repro.core.survey import analyze_survey, generate_survey


def test_bench_survey_end_to_end(benchmark):
    def pipeline():
        programs = generate_survey(seed=2021)
        analysis = analyze_survey(programs)
        reports = [check_program(p) for p in programs]
        return analysis, reports

    analysis, reports = benchmark(pipeline)
    approaches = [r.approach for r in reports]
    dedicated = approaches.count(Approach.DEDICATED_COURSE)
    distributed = approaches.count(Approach.DISTRIBUTED)
    print(f"\n  programs: {analysis.num_programs}")
    print(f"  compliant: {sum(1 for r in reports if r.compliant)}/20")
    print(f"  dedicated-course approach:  {dedicated}")
    print(f"  distributed approach:       {distributed}")
    mean_newhall = sum(r.newhall.score for r in reports) / len(reports)
    print(f"  mean Newhall score: {mean_newhall:.2f}/4")
    assert all(r.compliant for r in reports)
    assert dedicated == 1 and distributed == 19

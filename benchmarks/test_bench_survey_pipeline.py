"""Bench for the §III survey pipeline, object path and at scale.

Two parts:

- the seed-survey end-to-end bench (generate 20 programs -> analysis ->
  compliance), unchanged since the seed;
- the scale sweep: n ∈ {1k, 10k, 100k} through the columnar streaming
  driver, sequential vs sharded, against the pre-refactor object path
  (reimplemented here as the baseline).  Emits ``BENCH_survey.json`` at
  the repo root — the perf trajectory later PRs must move.

Sweep knobs (env): ``SURVEY_BENCH_SIZES`` (comma-separated n values),
``SURVEY_BENCH_BASELINE_N`` (object-path sample size; its programs/sec
rate is what the speedup is measured against).
"""

import json
import os
import resource
import time

import numpy as np

from repro.core.compliance import Approach, check_program
from repro.core.coverage import CoverageMatrix
from repro.core.pipeline import shard_survey, stream_survey
from repro.core.survey import analyze_survey, generate_survey
from repro.core.taxonomy import PdcTopic

_BENCH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_survey.json"
)


def test_bench_survey_end_to_end(benchmark):
    def pipeline():
        programs = generate_survey(seed=2021)
        analysis = analyze_survey(programs)
        reports = [check_program(p) for p in programs]
        return analysis, reports

    analysis, reports = benchmark(pipeline)
    approaches = [r.approach for r in reports]
    dedicated = approaches.count(Approach.DEDICATED_COURSE)
    distributed = approaches.count(Approach.DISTRIBUTED)
    print(f"\n  programs: {analysis.num_programs}")
    print(f"  compliant: {sum(1 for r in reports if r.compliant)}/20")
    print(f"  dedicated-course approach:  {dedicated}")
    print(f"  distributed approach:       {distributed}")
    mean_newhall = sum(r.newhall.score for r in reports) / len(reports)
    print(f"  mean Newhall score: {mean_newhall:.2f}/4")
    assert all(r.compliant for r in reports)
    assert dedicated == 1 and distributed == 19


# -- the scale sweep ----------------------------------------------------------

def _object_path_analysis(programs):
    """The pre-refactor §III analysis: three CoverageMatrix rebuilds per
    program — kept verbatim as the speedup baseline."""
    topics = list(PdcTopic)
    totals = np.zeros(len(topics))
    for program in programs:
        totals += CoverageMatrix.of(program).matrix.sum(axis=1)
    counts = np.zeros(len(topics), dtype=int)
    for program in programs:
        cm = CoverageMatrix.of(program)
        counts += (cm.matrix.sum(axis=1) > 0).astype(int)
    type_counts = {}
    total = 0
    for program in programs:
        for course in program.required_courses():
            if course.pdc_topics():
                type_counts[course.course_type] = (
                    type_counts.get(course.course_type, 0) + 1
                )
                total += 1
    return totals, counts, type_counts, total


def _rss_kb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def test_bench_survey_scale_sweep():
    """Sweep the streaming pipeline and emit BENCH_survey.json."""
    sizes = [
        int(s)
        for s in os.environ.get(
            "SURVEY_BENCH_SIZES", "1000,10000,100000"
        ).split(",")
    ]
    baseline_n = int(os.environ.get("SURVEY_BENCH_BASELINE_N", "1000"))
    seed, chunk_size, workers = 2021, 8192, 4

    t0 = time.perf_counter()
    baseline_programs = generate_survey(n=baseline_n, seed=seed,
                                        dedicated_index=0)
    _object_path_analysis(baseline_programs)
    baseline_wall = time.perf_counter() - t0
    baseline_rate = baseline_n / baseline_wall
    del baseline_programs

    runs = []
    for n in sizes:
        for mode in ("sequential", "sharded"):
            rss_before = _rss_kb()
            t0 = time.perf_counter()
            if mode == "sequential":
                agg = stream_survey(n, seed=seed, chunk_size=chunk_size)
            else:
                agg = shard_survey(n, seed=seed, chunk_size=chunk_size,
                                   workers=workers)
            wall = time.perf_counter() - t0
            assert agg.num_programs == n and agg.dedicated_programs == 1
            runs.append({
                "n": n,
                "mode": mode,
                "workers": workers if mode == "sharded" else 1,
                "chunk_size": chunk_size,
                "wall_seconds": round(wall, 4),
                "programs_per_sec": round(n / wall, 1),
                "peak_rss_kb": _rss_kb(),
                "rss_growth_kb": _rss_kb() - rss_before,
            })
            print(f"\n  n={n:>7} {mode:<10} {n / wall:>12,.0f} programs/sec "
                  f"({wall:.3f}s, rss {_rss_kb() // 1024} MB)")

    # Memory stays flat whatever the chunk count: the peak RSS of the
    # largest run must not grow with (n / chunk_size).
    n_mem = max(sizes)
    memory = []
    for cs in (2048, 8192, 32768):
        rss_before = _rss_kb()
        stream_survey(n_mem, seed=seed, chunk_size=cs)
        memory.append({
            "n": n_mem,
            "chunk_size": cs,
            "chunks": -(-n_mem // cs),
            "peak_rss_kb": _rss_kb(),
            "rss_growth_kb": _rss_kb() - rss_before,
        })

    seq_rates = {r["n"]: r["programs_per_sec"] for r in runs
                 if r["mode"] == "sequential"}
    speedup = seq_rates[max(sizes)] / baseline_rate
    payload = {
        "benchmark": "survey_pipeline",
        "seed": seed,
        "baseline": {
            "path": "object (pre-refactor: 3x CoverageMatrix per program)",
            "n": baseline_n,
            "wall_seconds": round(baseline_wall, 4),
            "programs_per_sec": round(baseline_rate, 1),
        },
        "runs": runs,
        "memory_flat": memory,
        "speedup_vs_object_path": round(speedup, 1),
    }
    with open(_BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\n  object-path baseline: {baseline_rate:,.0f} programs/sec")
    print(f"  columnar speedup at n={max(sizes)}: {speedup:.1f}x")
    assert speedup >= 5.0, payload

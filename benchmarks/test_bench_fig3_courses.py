"""Bench for Fig. 3 — which course types carry the PDC content.

Paper-vs-measured shape: architecture/OS-family courses lead; exactly one
of the 20 programs has a dedicated parallel-programming course.
"""

from repro.core.report import render_fig3
from repro.core.survey import analyze_survey, generate_survey
from repro.core.taxonomy import CourseType


def test_bench_fig3_course_percentages(benchmark):
    programs = generate_survey(seed=2021)
    analysis = benchmark(analyze_survey, programs)
    print()
    print(render_fig3(analysis))
    pct = analysis.course_percentages
    assert abs(sum(pct.values()) - 100.0) < 1e-9
    assert analysis.dedicated_course_programs == 1
    assert analysis.top_course_types(1) == [CourseType.ARCHITECTURE]
    # Systems courses (arch + OS + sysprog) carry the majority of PDC:
    systems_share = sum(
        pct.get(ct, 0.0)
        for ct in (
            CourseType.ARCHITECTURE,
            CourseType.OPERATING_SYSTEMS,
            CourseType.SYSTEMS_PROGRAMMING,
        )
    )
    print(f"\n  systems-course share of PDC coverage: {systems_share:.1f}%")
    assert systems_share > 40.0

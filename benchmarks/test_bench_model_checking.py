"""Benches: exhaustive interleaving checks and the Go-Back-N window sweep.

- The interleaving explorer *proves* the racy counter loses updates and
  Peterson's algorithm doesn't — over every schedule, the strongest form
  of the CC2020 "race conditions" lesson.
- The Go-Back-N sweep regenerates the window-size trade-off curve
  (rounds fall, redundant transmissions rise under loss).
"""

from repro.net.gbn import window_sweep
from repro.smp.interleave import explore, peterson_program, racy_counter_program


def test_bench_exhaustive_race_and_peterson(benchmark):
    def run():
        a, b = racy_counter_program(increments=2)
        racy = explore(a, b, {"counter": 0})
        p0, p1 = peterson_program()
        peterson = explore(
            p0, p1, {"flag0": 0, "flag1": 0, "turn": 0, "counter": 0}
        )
        return racy, peterson

    racy, peterson = benchmark(run)
    print(f"\n  racy counter (2 increments/thread): possible finals "
          f"{sorted(racy.final_values('counter'))} — updates CAN be lost")
    print(f"  Peterson: mutual exclusion held over all interleavings = "
          f"{peterson.mutual_exclusion_held}; counter always "
          f"{sorted(peterson.final_values('counter'))}")
    assert min(racy.final_values("counter")) < 4
    assert peterson.mutual_exclusion_held
    assert peterson.final_values("counter") == {2}


def test_bench_gbn_window_sweep(benchmark):
    sweep = benchmark(window_sweep, 100, [1, 2, 4, 8, 16], 0.1, 0)
    print("\n  window  rounds  transmissions  efficiency  timeouts")
    for w in (1, 2, 4, 8, 16):
        r = sweep[w]
        print(f"  {w:<7d} {r.rounds:<7d} {r.transmissions:<14d} "
              f"{r.efficiency:<11.2f} {r.timeouts}")
    assert sweep[16].rounds < sweep[1].rounds
    assert sweep[16].transmissions > sweep[1].transmissions

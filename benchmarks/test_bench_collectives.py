"""Supporting bench: MPI collective algorithm ablation (linear vs tree).

The cluster-programming unit's analysis exercise: the root of a linear
broadcast sends p-1 messages itself; a binomial tree spreads them so the
root sends only ceil(log2 p).
"""

import math

from repro.mp import SUM, run_spmd
from repro.mp.runtime import World


def _root_sends(size: int, algorithm: str) -> int:
    world = World(size)

    def main(comm):
        comm.bcast("x" if comm.Get_rank() == 0 else None, root=0,
                   algorithm=algorithm)

    run_spmd(size, main, world=world)
    return world.messages_from(0)


def test_bench_broadcast_algorithm_ablation(benchmark):
    sizes = (2, 4, 8, 16)

    def sweep():
        return {
            size: (_root_sends(size, "linear"), _root_sends(size, "tree"))
            for size in sizes
        }

    results = benchmark(sweep)
    print("\n  p      root sends (linear)   root sends (tree)")
    for size, (linear, tree) in results.items():
        print(f"  {size:<6d} {linear:<21d} {tree}")
        assert linear == size - 1
        assert tree == math.ceil(math.log2(size))


def test_bench_allreduce_scaling(benchmark):
    def run():
        totals = {}
        for size in (2, 4, 8):
            world = World(size)
            run_spmd(size, lambda comm: comm.allreduce(1, op=SUM), world=world)
            totals[size] = world.message_count
        return totals

    totals = benchmark(run)
    print("\n  p -> total messages for one allreduce (tree reduce + bcast)")
    for size, count in totals.items():
        print(f"    {size}: {count}")
        assert count == 2 * (size - 1)  # (p-1) up the tree, (p-1) down

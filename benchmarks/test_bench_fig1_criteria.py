"""Bench for Fig. 1 — the CAC CS curriculum criteria, rendered and applied.

Regenerates the criteria text and benchmarks the criteria engine over the
three case-study programs.  Paper-vs-measured: all five exposure areas
present; all three case studies satisfy the criteria.
"""

from repro.core.abet import CacCriteria
from repro.core.casestudies import case_study_programs
from repro.core.report import render_fig1


def test_bench_fig1_criteria_check(benchmark):
    programs = case_study_programs()
    criteria = CacCriteria()

    def run():
        return [criteria.check(p) for p in programs]

    checks = benchmark(run)

    text = render_fig1()
    print()
    print(text)
    print()
    for program, check in zip(programs, checks):
        print(f"  {program.institution}: satisfied={check.satisfied} "
              f"({check.credit_hours:g} credit hours)")
    assert "parallel and distributed computing" in text
    assert all(c.satisfied for c in checks)

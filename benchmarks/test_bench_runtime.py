"""Supporting bench: overhead and determinism of the runtime substrate.

The observability layer must be cheap enough to leave on in every lab:
this bench measures the instrumented-vs-bare cost of a representative
mp + net workload, and re-checks (under the benchmark harness, i.e. many
repetitions) that same-seed runs export byte-identical traces.
"""

from repro.mp.runtime import run_spmd
from repro.net.simnet import Address, Network
from repro.net.sockets import DatagramSocket
from repro.runtime import RunContext


def _ring(comm):
    right = (comm.rank + 1) % comm.size
    comm.send({"from": comm.rank}, dest=right)
    return comm.recv()["from"]


def _datagram_burst(network, count=50):
    box = DatagramSocket(network, Address("box", 1))
    tx = DatagramSocket(network, Address("tx", 1))
    for i in range(count):
        tx.sendto(i, Address("box", 1))
    box.close()
    tx.close()


def _instrumented_lab(seed: int) -> RunContext:
    ctx = RunContext.deterministic(seed=seed, label="bench")
    network = Network(drop_rate=0.2, context=ctx)
    run_spmd(4, _ring, context=ctx)
    _datagram_burst(network)
    return ctx


def test_bench_bare_lab(benchmark):
    def bare():
        network = Network(drop_rate=0.2, seed=9)
        results = run_spmd(4, _ring)
        _datagram_burst(network)
        return results

    assert sorted(benchmark(bare)) == [0, 1, 2, 3]


def test_bench_instrumented_lab(benchmark):
    ctx = benchmark(lambda: _instrumented_lab(seed=9))
    snap = ctx.snapshot()
    assert snap["mp.messages"] == 4
    assert snap["net.messages"] + snap["net.dropped"] == 50
    assert len(ctx.tracer) > 0


def test_bench_trace_export_determinism(benchmark):
    def digests():
        return (
            _instrumented_lab(seed=3).tracer.digest(),
            _instrumented_lab(seed=3).tracer.digest(),
        )

    a, b = benchmark(digests)
    assert a == b


def test_bench_metric_hot_path(benchmark):
    ctx = RunContext.deterministic()
    counter = ctx.registry.counter("bench.hot")

    def spin():
        for _ in range(10_000):
            counter.inc()

    benchmark(spin)
    assert counter.value > 0

"""Bench for Table II — PDC in CE2016 knowledge areas.

Paper-vs-measured: exact reproduction — four knowledge areas, five
PDC-related core knowledge units, out of CE2016's twelve areas.
"""

from repro.core.ce2016 import CE2016_AREAS, ce_pdc_table
from repro.core.report import render_table2


def test_bench_table2_regeneration(benchmark):
    table = benchmark(ce_pdc_table)
    print()
    print(render_table2())
    assert len(CE2016_AREAS) == 12
    assert len(table) == 4
    assert sum(len(units) for units in table.values()) == 5
    assert table["Architecture and Organization"] == [
        "Multi/Many-core architectures",
        "Distributed system architectures",
    ]

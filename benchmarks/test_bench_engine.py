"""Benches: the analysis engine at monorepo scale — 1k files, three modes.

The engine's pitch is that incremental + parallel analysis makes the
monorepo case affordable without changing a single verdict.  These
benches put a number on each half of that pitch over a synthetic
1000-file tree: the sequential cold run is the baseline, ``jobs=4``
measures the process-pool fan-out, and the warm-cache run measures a
no-op re-analysis (100% hit rate) — the steady state a CI self-lint or
``--watch`` session lives in.
"""

import os

import pytest

from repro.analysis.engine import AnalysisEngine, FindingsCache, LintPass
from repro.smp.fixtures import fixture

N_FILES = 1000
N_RACY = 100  # every 10th file carries the racy twin


@pytest.fixture(scope="module")
def synthetic_tree(tmp_path_factory):
    """1000 distinct modules: 900 clean twins, 100 racy ones."""
    clean = fixture("locked_counter_twin").source
    racy = fixture("racy_counter_twin").source
    root = tmp_path_factory.mktemp("engine-bench") / "tree"
    root.mkdir()
    for i in range(N_FILES):
        source = racy if i % 10 == 0 else clean
        (root / f"mod_{i:04d}.py").write_text(
            source.replace("counter", f"counter_{i}")
        )
    return str(root)


def _report_rate(benchmark, label, report, extra=""):
    if benchmark.stats is not None:  # absent under --benchmark-disable
        mean = benchmark.stats.stats.mean
        print(f"\n  {label}: {report.files} files in {mean * 1e3:.0f} ms "
              f"mean = {report.files / mean:.0f} files/s{extra}")


def _check(report):
    assert report.files == N_FILES
    assert len(report.findings) == N_RACY
    assert report.errors == []


def test_bench_engine_sequential_cold(benchmark, synthetic_tree):
    """The baseline: one process, no cache — the pre-engine cost."""
    report = benchmark.pedantic(
        lambda: AnalysisEngine(LintPass()).run_paths([synthetic_tree]),
        rounds=3, iterations=1,
    )
    _report_rate(benchmark, "sequential cold", report)
    _check(report)


def test_bench_engine_parallel_cold(benchmark, synthetic_tree):
    """Process-pool fan-out: same verdicts, ``jobs=4`` wall clock."""
    report = benchmark.pedantic(
        lambda: AnalysisEngine(LintPass(), jobs=4).run_paths(
            [synthetic_tree]
        ),
        rounds=3, iterations=1,
    )
    _report_rate(benchmark, "parallel jobs=4", report)
    _check(report)


def test_bench_engine_warm_cache(benchmark, synthetic_tree, tmp_path_factory):
    """The steady state: every file hits the cache, nothing re-analyzes."""
    cache = FindingsCache(str(tmp_path_factory.mktemp("cache")))
    AnalysisEngine(LintPass(), cache=cache).run_paths([synthetic_tree])

    def warm():
        engine = AnalysisEngine(LintPass(), cache=cache)
        return engine, engine.run_paths([synthetic_tree])

    engine, report = benchmark.pedantic(warm, rounds=3, iterations=1)
    stats = engine.stats()
    hits = stats["engine.cache.hits"]
    _report_rate(benchmark, "warm cache", report,
                 extra=f" ({hits}/{report.files} hits)")
    _check(report)
    assert stats["engine.files.analyzed"] == 0
    assert hits == N_FILES

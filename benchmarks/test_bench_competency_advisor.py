"""Benches for the CC2020 competency check and the curriculum advisor.

Paper-vs-measured: CC2020's six named PDC topics (§II-A) are all
evidenced by the RIT breadth syllabus; the LAU dedicated course evidences
five (processes live in LAU's OS course, which §IV-A notes).  The advisor
reproduces §II-B's finding that a bare curriculum can reach compliance by
embedding topics into existing Table-I host courses.
"""

from repro.core.advisor import advise
from repro.core.competency import check_syllabus
from repro.core.course import Course
from repro.core.program import Program
from repro.core.taxonomy import CourseType
from repro.pedagogy import build_lau_course, build_rit_course


def test_bench_cc2020_competency_check(benchmark):
    lau = build_lau_course()
    rit = build_rit_course()

    def run():
        return check_syllabus(lau), check_syllabus(rit)

    lau_report, rit_report = benchmark(run)
    print("\n  CC2020 PDC competencies evidenced per syllabus:")
    for report in (lau_report, rit_report):
        print(f"  {report.syllabus_title}: "
              f"{report.evidenced_count}/{len(report.evidence)}"
              + (f" (missing: {', '.join(report.missing())})"
                 if report.missing() else ""))
    assert rit_report.complete
    assert lau_report.missing() == ["Processes"]


def test_bench_advisor_gap_analysis(benchmark):
    bare = Program(
        "Bare U", "B",
        courses=[
            Course("ARCH", "Arch", CourseType.ARCHITECTURE, 10.0),
            Course("OS", "OS", CourseType.OPERATING_SYSTEMS, 10.0),
            Course("DB", "DB", CourseType.DATABASE, 10.0),
            Course("NET", "Net", CourseType.NETWORKS, 10.0),
        ],
    )
    plan = benchmark(advise, bare)
    print(f"\n  {plan.summary()}")
    embed = sum(1 for r in plan.recommendations if r.action == "embed")
    print(f"  embeddings proposed: {embed}/14 topics "
          f"(dedicated course suggested: {plan.suggest_dedicated_course})")
    assert len(plan.uncovered_topics) == 14
    assert embed == 14  # the four host courses cover every Table-I row

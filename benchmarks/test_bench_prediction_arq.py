"""Ablation benches: branch predictors and ARQ protocol comparison.

- Predictor quality on the canonical loop trace, folded into effective
  CPI with the pipeline's measured 2-cycle flush penalty.
- Go-Back-N vs Selective Repeat efficiency as loss grows — GBN's
  collapse is the reason selective repeat (and TCP SACK) exists.
"""

from repro.arch.branchpred import (
    AlwaysNotTaken,
    AlwaysTaken,
    OneBitPredictor,
    TwoBitPredictor,
    TwoLevelPredictor,
    effective_cpi,
    evaluate,
    loop_trace,
)
from repro.net.gbn import protocol_comparison


def test_bench_branch_predictor_ablation(benchmark):
    trace = loop_trace(iterations=8, trips=100)

    def run():
        return [
            evaluate(p, trace)
            for p in (
                AlwaysNotTaken(),
                AlwaysTaken(),
                OneBitPredictor(),
                TwoBitPredictor(),
                TwoLevelPredictor(4),
            )
        ]

    reports = benchmark(run)
    print("\n  predictor         accuracy   effective CPI (20% branches, "
          "2-cycle penalty)")
    accuracies = {}
    for report in reports:
        cpi = effective_cpi(report.accuracy)
        accuracies[report.name] = report.accuracy
        print(f"  {report.name:<17s} {report.accuracy:>7.3f}   {cpi:.3f}")
    assert accuracies["two-bit"] > accuracies["one-bit"]
    assert accuracies["one-bit"] > accuracies["always-not-taken"]
    assert accuracies["two-level"] >= accuracies["two-bit"] - 0.02


def test_bench_gbn_vs_selective_repeat(benchmark):
    comparison = benchmark(protocol_comparison, 200, 8, [0.0, 0.1, 0.2, 0.3], 0)
    print("\n  loss   GBN efficiency   SR efficiency")
    for loss, row in comparison.items():
        gbn = row["go-back-n"].efficiency
        sr = row["selective-repeat"].efficiency
        print(f"  {loss:<6.2f} {gbn:<16.2f} {sr:.2f}")
        assert sr >= gbn - 1e-9
        if loss > 0:
            assert sr >= (1 - loss) - 0.12  # SR tracks the channel rate
    assert comparison[0.3]["go-back-n"].efficiency < 0.5


def test_bench_bank_conflict_padding_ablation(benchmark):
    """The tile[32][33] lesson: one pad word turns a 32-way shared-memory
    bank conflict into a conflict-free access."""
    from repro.gpu.banks import (
        bank_conflicts,
        matrix_column_access,
        padded_matrix_column_access,
    )

    def run():
        unpadded = [
            bank_conflicts(matrix_column_access(c)).serialized_cycles
            for c in range(32)
        ]
        padded = [
            bank_conflicts(padded_matrix_column_access(c)).serialized_cycles
            for c in range(32)
        ]
        return unpadded, padded

    unpadded, padded = benchmark(run)
    print(f"\n  column walk of a 32x32 tile: {unpadded[0]}-cycle serialization "
          f"per warp access")
    print(f"  with one pad word per row:   {padded[0]} cycle (conflict-free)")
    assert all(c == 32 for c in unpadded)
    assert all(c == 1 for c in padded)


def test_bench_clock_sync(benchmark):
    """Berkeley collapses the fleet's spread; Cristian's residual obeys
    the rtt/2 bound."""
    from repro.dist.clocksync import DriftingClock, berkeley_sync, cristian_sync

    def run():
        clocks = [
            DriftingClock(f"n{i}", offset=float(o))
            for i, o in enumerate((0, 15, -11, 4, 30))
        ]
        berkeley = berkeley_sync(clocks, true_time=1000.0)
        client = DriftingClock("client", offset=50.0)
        server = DriftingClock("server")
        residual, bound = cristian_sync(client, server, 1000.0, rtt=0.5)
        return berkeley, residual, bound

    berkeley, residual, bound = benchmark(run)
    print(f"\n  Berkeley: spread {berkeley.spread_before:.1f} -> "
          f"{berkeley.spread_after:.2g}")
    print(f"  Cristian: residual {residual:.3f} <= bound {bound:.3f}")
    assert berkeley.spread_after < 1e-6
    assert residual <= bound + 1e-9

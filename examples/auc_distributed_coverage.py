#!/usr/bin/env python
"""AUC's distributed-coverage approach (paper §IV-B), demonstrated.

No dedicated PDC course: each required course contributes its slice.
This script walks those courses, running the matching substrate demo for
each contribution the paper lists, then verifies the program satisfies
the ABET PDC requirement through the compliance engine.

Run:  python examples/auc_distributed_coverage.py
"""


def architecture_course() -> None:
    """§IV-B(2): pipelining, ILP, superscalar, Tomasulo (both kinds)."""
    print("\n--- CSCE321 Computer Architecture: dynamic scheduling ---")
    from repro.arch.tomasulo import TInstr, TOp, TomasuloCPU

    program = [
        TInstr(TOp.LOAD, rd=1, addr=0),
        TInstr(TOp.BNEZ, rs=4, target=5),  # r4 = 0 -> not taken
        TInstr(TOp.MUL, rd=2, rs=1, rt=1),
        TInstr(TOp.ADD, rd=3, rs=2, rt=1),
        TInstr(TOp.SUB, rd=5, rs=3, rt=1),
    ]
    stall = TomasuloCPU(program, memory={0: 3.0}).run()
    spec = TomasuloCPU(program, speculative=True, memory={0: 3.0}).run()
    print(f"  non-speculative Tomasulo: {stall.cycles} cycles "
          f"({stall.branch_stall_cycles} branch-stall cycles)")
    print(f"  speculative (ROB):        {spec.cycles} cycles "
          f"({spec.mispredictions} mispredictions)")

    from repro.arch.pipeline import Instr, Op, Pipeline, PipelineConfig

    raw = [
        Instr(Op.ADDI, rd=1, rs1=0, imm=5),
        Instr(Op.ADD, rd=2, rs1=1, rs2=1),
        Instr(Op.ADD, rd=3, rs1=2, rs2=2),
    ]
    with_fw = Pipeline(raw).run()
    without = Pipeline(raw, PipelineConfig(forwarding=False)).run()
    print(f"  5-stage pipeline RAW chain: {with_fw.cycles} cycles with "
          f"forwarding, {without.cycles} without")


def operating_systems_course() -> None:
    """§IV-B(3): threading, speedup, mutual exclusion, scheduling."""
    print("\n--- CSCE345 Operating Systems: scheduling at depth ---")
    from repro.oskernel import MLFQ, RoundRobin, SRTF, Workloads, simulate
    from repro.oskernel.smp import SmpPolicy, simulate_smp, skewed_tasks

    workload = Workloads.random(15, seed=9)
    for sched in (SRTF(), RoundRobin(3), MLFQ()):
        m = simulate(workload, sched)
        print(f"  {sched.name:<5s} wait={m.avg_waiting:6.2f} "
              f"resp={m.avg_response:5.2f}")
    tasks = skewed_tasks(100, seed=2, skew=3.0)
    single = sum(tasks)
    smp = simulate_smp(tasks, 4, SmpPolicy.WORK_STEALING)
    print(f"  multiprocessor: 1 CPU takes {single:.0f}, 4 CPUs with work "
          f"stealing take {smp.makespan:.0f} "
          f"(speedup {smp.speedup:.2f}, {smp.steals} steals)")


def software_engineering_and_pl_courses() -> None:
    """§IV-B(4,5): distributed components; language support for threads."""
    print("\n--- CSCE343/326: distributed components & language support ---")
    from repro.dist.mapreduce import word_count
    from repro.smp import parallel_map

    docs = [
        "concurrency is not parallelism",
        "parallelism is about doing lots of things at once",
        "concurrency is about dealing with lots of things at once",
    ]
    counts = word_count(docs)
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:4]
    print(f"  mapreduce word count (a distributed component): {top}")
    lengths = parallel_map(len, docs, num_threads=3)
    print(f"  language-level threading (parallel map): {lengths}")


def database_course() -> None:
    """Databases: transaction scheduling, locks, and deadlocks."""
    print("\n--- CSCE230 Databases: concurrent transactions ---")
    from repro.db import (
        DeadlockPolicy,
        Op,
        Transaction,
        TransactionEngine,
        is_conflict_serializable,
    )
    from repro.db.engine import committed_projection

    t1 = Transaction(1, [Op.read(1, "x"), Op.write(1, "y")])
    t2 = Transaction(2, [Op.read(2, "y"), Op.write(2, "x")])
    for policy in DeadlockPolicy:
        report = TransactionEngine([t1, t2], policy=policy).run()
        ok = is_conflict_serializable(committed_projection(report.history))
        print(f"  {policy.value:<12s} aborts={report.aborts} "
              f"serializable={ok}")


def compliance_verdict() -> None:
    print("\n--- The compliance engine's verdict (paper §IV-B) ---")
    from repro.core import check_program
    from repro.core.casestudies import auc_program

    report = check_program(auc_program())
    print(f"  {report.summary()}")
    print(f"  approach: {report.approach.value}")
    print("  covered topics:", ", ".join(t.label for t in report.covered_topics))
    assert report.compliant


if __name__ == "__main__":
    print("AUC BS Computer Science — distributed PDC coverage (§IV-B)")
    architecture_course()
    operating_systems_course()
    software_engineering_and_pl_courses()
    database_course()
    compliance_verdict()

#!/usr/bin/env python
"""Teach LAU's dedicated parallel-programming course (paper §IV-A).

Walks the course's three parts with live substrate demos, then grades a
small cohort through the syllabus's labs and computes ABET Student
Outcome attainment — the full dedicated-course workflow.

Run:  python examples/lau_parallel_course.py
"""

import numpy as np

from repro.pedagogy import Autograder, OutcomeAssessment, build_lau_course


def part1_foundations() -> None:
    """Part 1: history and driving forces — performance laws."""
    from repro.arch.laws import amdahl_limit, speedup_sweep

    print("\n--- Part 1: why parallelism (performance laws) ---")
    sweep = speedup_sweep(0.9, 256)
    for p in (1, 4, 16, 64, 256):
        i = p - 1
        print(f"  p={p:<4d} Amdahl={sweep['amdahl'][i]:6.2f}  "
              f"Gustafson={sweep['gustafson'][i]:7.2f}")
    print(f"  Amdahl ceiling at f=0.9: {float(amdahl_limit(0.9)):.0f}x")


def part2_multicore() -> None:
    """Part 2: multicore programming — worksharing, races, false sharing."""
    from repro.smp import Schedule, parallel_reduce
    from repro.smp.falseshare import false_sharing_demo

    print("\n--- Part 2: multicore (OpenMP-style) ---")
    total = parallel_reduce(
        1_000_000 // 100,  # keep the demo snappy
        lambda i: i,
        lambda a, b: a + b,
        0,
        num_threads=4,
        schedule=Schedule.GUIDED,
        chunk=16,
    )
    print(f"  parallel_reduce over 10k iterations: {total}")
    fs = false_sharing_demo(num_cores=4, increments=200)
    print(f"  false sharing: adjacent counters cost "
          f"{fs['shared_misses']} coherence misses; padded cost "
          f"{fs['padded_misses']}")


def part3_manycore_and_clusters() -> None:
    """Part 3 (~60% of the course): SIMT kernels, then MPI clusters."""
    from repro.gpu import Device
    from repro.gpu.libdevice import device_matmul, device_reduce_sum
    from repro.mp import SUM, run_spmd

    print("\n--- Part 3: manycore (SIMT) and clusters (MPI) ---")
    dev = Device()
    total, stats = device_reduce_sum(dev, np.ones(4096), block=128)
    print(f"  GPU tree reduction of 4096 ones: {total:.0f} "
          f"(syncthreads barriers: {stats.syncthreads})")
    rng = np.random.default_rng(0)
    a, b = rng.random((16, 16)), rng.random((16, 16))
    c, mm_stats = device_matmul(dev, a, b, tile=8)
    print(f"  tiled matmul correct: {np.allclose(c, a @ b)}; "
          f"shared memory used: {mm_stats.shared_bytes_peak} bytes")

    def cpi(comm, n=50_000):
        rank, size = comm.Get_rank(), comm.Get_size()
        h = 1.0 / n
        local = sum(
            4.0 / (1.0 + (h * (i + 0.5)) ** 2) for i in range(rank, n, size)
        )
        return comm.allreduce(local * h, op=SUM)

    pi = run_spmd(4, cpi)[0]
    print(f"  MPI cpi on 4 ranks: {pi:.8f}")


def grade_cohort() -> None:
    """Labs, milestone grading, and ABET outcome attainment (§IV-A)."""
    print("\n--- Assessment: labs, grades, Student Outcome attainment ---")
    syllabus = build_lau_course()
    print(f"  course: {syllabus.course_title}")
    for unit in syllabus.units:
        print(f"    {unit.title}  ({unit.weight:.0%}; labs: "
              f"{', '.join(unit.lab_ids)})")

    grader = Autograder(syllabus.exercises())
    assert grader.sanity_check() == []  # references all pass

    perfect = {e.exercise_id: e.reference for e in syllabus.exercises()}
    # "maya" nails multicore but skips the cluster milestone;
    # "omar" submits a broken counter.
    maya = dict(perfect)
    maya.pop("mp-pi")

    class BrokenCounter:
        value = 0

        def increment(self):
            self.value = self.value  # loses every update

    omar = dict(perfect)
    omar["smp-atomic-counter"] = BrokenCounter

    reports = grader.grade_cohort({"lina": perfect, "maya": maya, "omar": omar})
    for name, report in reports.items():
        print(f"  {name:<6s} {report.percentage:5.1f}%  {report.letter}")

    assessment = OutcomeAssessment(syllabus.exercises(), target_rate=0.7)
    print("  ABET Student Outcome attainment:")
    for number, attainment in assessment.assess(reports).items():
        status = "met" if attainment.met else "below target"
        print(f"    SO{number}: {attainment.rate:.0%} of cohort "
              f"({status}, target {attainment.target_rate:.0%})")


if __name__ == "__main__":
    print("CSC447 Parallel Programming — LAU case study (paper §IV-A)")
    part1_foundations()
    part2_multicore()
    part3_manycore_and_clusters()
    grade_cohort()

#!/usr/bin/env python
"""Election under a partition: the fault-injection subsystem in action.

A five-node cluster suffers a scripted partition — a 3-node majority
side and a 2-node minority side — plus a leader crash, bursty datagram
loss, and a slow node, all declared in one :class:`repro.faults.FaultPlan`
and scheduled on the run's virtual clock.  The lab walks the timeline:

1. **healthy** — the full cluster elects node 4;
2. **partitioned** — each side elects its own leader (split brain),
   cross-partition datagrams die, a stub call across the cut raises
   ``Unavailable``, and a ``Retry`` policy earns its keep;
3. **healed** — the partition lifts at its scripted ``stop``, the
   cluster re-elects a single leader, and traffic flows again.

Every fault decision draws from seeded RNG streams, so the whole chaos
run is deterministic: the script re-runs itself and proves the exported
trace digests are byte-identical.

Run:  python examples/chaos_lab.py [--seed N] [--out DIR]
"""

import argparse

from repro.dist.election import ring_election
from repro.faults import (
    Crash,
    FaultPlan,
    MessageLoss,
    Partition,
    Retry,
    SlowNode,
    Unavailable,
)
from repro.net.simnet import Address, Network
from repro.runtime import RunContext

MAJORITY = ("0", "1", "2")
MINORITY = ("3", "4")


def build_plan() -> FaultPlan:
    """The instructor's failure script, one declarative object."""
    return FaultPlan(
        Partition(groups=(MAJORITY, MINORITY), start=1.0, stop=3.0),
        Crash(node="4", start=1.0, restart_at=3.0),
        MessageLoss(rate=0.25, burst=2, start=1.0, stop=3.0),
        SlowNode(node="3", penalty=0.05, start=1.0, stop=3.0),
    )


def run_lab(seed: int, verbose: bool = False) -> RunContext:
    ctx = RunContext.deterministic(seed=seed, label="chaos-lab")
    net = Network(context=ctx)
    plan = net.attach_fault_plan(build_plan())
    ids = [0, 1, 2, 3, 4]
    boxes = {h: net.bind_datagram(Address(h, 1)) for h in MAJORITY + MINORITY}

    def say(msg):
        if verbose:
            print(msg)

    def heartbeat_all(source="0"):
        delivered = 0
        for host in MAJORITY + MINORITY:
            if host != source and net.send_datagram(
                Address(source, 9), Address(host, 1), "hb"
            ):
                delivered += 1
        return delivered

    # -- t=0: healthy cluster -------------------------------------------------
    with ctx.tracer.span("phase.healthy", cat="lab"):
        healthy = ring_election(ids, initiator=0)
        say(f"t={plan.now():.1f}  healthy leader: {healthy.leader} "
            f"({healthy.messages} messages)")
        say(f"       heartbeats delivered: {heartbeat_all()}/4")

    # -- t=1..3: partition + leader crash -------------------------------------
    ctx.clock.sleep(1.0)
    with ctx.tracer.span("phase.partitioned", cat="lab"):
        crashed = {int(n) for n in plan.crashed_nodes()}
        left = ring_election([0, 1, 2], initiator=0)
        right = ring_election([3, 4], initiator=3,
                              crashed={c for c in crashed if c in (3, 4)})
        say(f"t={plan.now():.1f}  partitioned; node 4 crashed")
        say(f"       majority side elects {left.leader}, "
            f"minority side elects {right.leader}  (split brain)")
        say(f"       heartbeats delivered: {heartbeat_all()}/4")

        # A retry policy pushes a datagram through the bursty loss that
        # still afflicts the majority side's own links.
        def send_once():
            if not net.send_datagram(Address("0", 9), Address("1", 1), "vote"):
                raise Unavailable("datagram lost")

        Retry(attempts=10, base_delay=0.01, context=ctx)(send_once)()
        retries = ctx.registry.counter("faults.retries").value
        say(f"       intra-side message delivered after "
            f"{retries} retries")

    # -- t=3: heal ------------------------------------------------------------
    ctx.clock.sleep(2.0)
    with ctx.tracer.span("phase.healed", cat="lab"):
        assert not plan.partitioned("0", "4")
        merged = ring_election(ids, initiator=0,
                               crashed={int(n) for n in plan.crashed_nodes()})
        say(f"t={plan.now():.1f}  healed; node 4 restarted; "
            f"single leader again: {merged.leader}")
        say(f"       heartbeats delivered: {heartbeat_all()}/4")

    for box in boxes.values():
        while box.try_get() is not None:
            pass
    return ctx


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--out", default=None,
                        help="directory to write trace.json / metrics.json")
    opts = parser.parse_args()

    print("chaos lab: election under partition, crash, and bursty loss\n")
    ctx = run_lab(opts.seed, verbose=True)

    snapshot = ctx.snapshot()
    print("\n  fault accounting:")
    for name in sorted(k for k in snapshot if k.startswith("faults.")):
        print(f"    {name:<28s} {snapshot[name]}")

    digest = ctx.tracer.digest()
    rerun = run_lab(opts.seed).tracer.digest()
    print(f"\n  trace events: {len(ctx.tracer)}  digest: {digest[:16]}…")
    print(f"  re-run same seed, digests equal: {rerun == digest}")

    if opts.out:
        paths = ctx.save(opts.out)
        print("\n  wrote:")
        for kind, path in paths.items():
            print(f"    {kind:<12s} {path}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Design an ABET-accreditable CS curriculum interactively (in code).

The downstream-adopter workflow the paper enables: start from a bare
program, watch the compliance engine name the gaps, fix them step by
step (the distributed approach first, then the dedicated-course upgrade),
and audit against Newhall's four principles (§II-B).

Run:  python examples/curriculum_designer.py
"""

from repro.core import check_program
from repro.core.course import Course, Coverage, Depth
from repro.core.mapping import TABLE_I, substrate_for
from repro.core.program import Program
from repro.core.taxonomy import CourseType, PdcTopic


def bare_program() -> Program:
    """A 40-credit skeleton with no PDC coverage anywhere."""
    return Program(
        "New University — BS Computer Science",
        "New University",
        courses=[
            Course("CS1", "Programming I", CourseType.INTRO_PROGRAMMING, 4.0, year=1),
            Course("CS2", "Programming II", CourseType.INTRO_PROGRAMMING, 4.0, year=1),
            Course("DS", "Data Structures", CourseType.ALGORITHMS, 3.0, year=2),
            Course("ALGO", "Algorithms", CourseType.ALGORITHMS, 3.0, year=3),
            Course("ARCH", "Computer Organization", CourseType.ARCHITECTURE, 3.0, year=2),
            Course("OS", "Operating Systems", CourseType.OPERATING_SYSTEMS, 3.0, year=3),
            Course("DB", "Databases", CourseType.DATABASE, 3.0, year=3),
            Course("NET", "Networks", CourseType.NETWORKS, 3.0, year=3),
            Course("PL", "Programming Languages", CourseType.PROGRAMMING_LANGUAGES, 3.0, year=3),
            Course("SE", "Software Engineering", CourseType.SOFTWARE_ENGINEERING, 3.0, year=3),
            Course("THY", "Theory of Computation", CourseType.ALGORITHMS, 3.0, year=3),
            Course("CAP1", "Capstone I", CourseType.ALGORITHMS, 4.0, year=4),
            Course("CAP2", "Capstone II", CourseType.ALGORITHMS, 4.0, year=4),
        ],
    )


def add_distributed_coverage(program: Program) -> Program:
    """Fix the PDC gap the cheap way: embed topics per Table I's mapping."""
    embeddings = {
        "ARCH": [
            Coverage(PdcTopic.PERFORMANCE, Depth.WORKING),
            Coverage(PdcTopic.MULTICORE, Depth.WORKING),
            Coverage(PdcTopic.ILP, Depth.EXPOSURE),
            Coverage(PdcTopic.FLYNN, Depth.EXPOSURE),
            Coverage(PdcTopic.SIMD_VECTOR, Depth.EXPOSURE),
            Coverage(PdcTopic.MEMORY_CACHING, Depth.WORKING),
            Coverage(PdcTopic.PARALLELISM_CONCURRENCY, Depth.EXPOSURE),
        ],
        "OS": [
            Coverage(PdcTopic.THREADS, Depth.WORKING),
            Coverage(PdcTopic.PARALLELISM_CONCURRENCY, Depth.WORKING),
            Coverage(PdcTopic.SHARED_MEMORY_PROGRAMMING, Depth.WORKING),
            Coverage(PdcTopic.IPC, Depth.WORKING),
            Coverage(PdcTopic.ATOMICITY, Depth.WORKING),
            Coverage(PdcTopic.SHARED_VS_DISTRIBUTED, Depth.EXPOSURE),
        ],
        "DB": [Coverage(PdcTopic.TRANSACTIONS, Depth.WORKING)],
        "NET": [
            Coverage(PdcTopic.CLIENT_SERVER, Depth.WORKING),
            Coverage(PdcTopic.THREADS, Depth.EXPOSURE),
        ],
        "CS2": [Coverage(PdcTopic.THREADS, Depth.EXPOSURE)],
    }
    courses = []
    for course in program.courses:
        if course.code in embeddings:
            courses.append(
                Course(
                    course.code, course.title, course.course_type,
                    course.credits, course.required,
                    coverage=embeddings[course.code], year=course.year,
                )
            )
        else:
            courses.append(course)
    return Program(program.name, program.institution, courses=courses)


def add_dedicated_course(program: Program) -> Program:
    """The stronger fix: a required dedicated parallel-programming course."""
    dedicated = Course(
        "PAR", "Parallel Programming", CourseType.PARALLEL_PROGRAMMING, 3.0,
        year=3,
        coverage=[
            Coverage(PdcTopic.THREADS, Depth.MASTERY),
            Coverage(PdcTopic.PARALLELISM_CONCURRENCY, Depth.MASTERY),
            Coverage(PdcTopic.SHARED_MEMORY_PROGRAMMING, Depth.MASTERY),
            Coverage(PdcTopic.PERFORMANCE, Depth.MASTERY),
            Coverage(PdcTopic.SIMD_VECTOR, Depth.WORKING),
            Coverage(PdcTopic.IPC, Depth.WORKING),
            Coverage(PdcTopic.SHARED_VS_DISTRIBUTED, Depth.WORKING),
        ],
    )
    return Program(
        program.name, program.institution,
        courses=list(program.courses) + [dedicated],
    )


def show(report) -> None:
    print(f"  {report.summary()}")
    missing = report.criteria.missing()
    if missing:
        for item in missing:
            print(f"    gap: {item}")


def main() -> None:
    print("Step 1 — the bare skeleton:")
    program = bare_program()
    report = check_program(program)
    show(report)
    assert not report.compliant

    print("\nStep 2 — embed PDC topics across existing courses "
          "(the distributed approach, Table I as the recipe):")
    program = add_distributed_coverage(program)
    report = check_program(program)
    show(report)
    assert report.compliant

    print("\nStep 3 — add a dedicated parallel-programming course "
          "(beyond the criteria, toward CS2013's full PD core):")
    program = add_dedicated_course(program)
    report = check_program(program)
    show(report)
    assert report.newhall.score == 4

    print("\nStep 4 — lab material for each covered topic "
          "(the substrate index):")
    for topic in report.covered_topics[:6]:
        modules = ", ".join(substrate_for(topic))
        print(f"  {topic.label:<45s} -> {modules}")
    print("  ...")

    print("\nDesign summary: the same journey the paper's survey observed — "
          "most programs stop at step 2; one in twenty takes step 3.")
    uncovered = [t for t in PdcTopic if t not in report.covered_topics]
    print(f"Topics still uncovered: "
          f"{[t.label for t in uncovered] or 'none'}")
    print(f"Table I marks satisfied: "
          f"{sum(len(TABLE_I[t]) for t in report.covered_topics)}/29")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Verifying concurrency claims instead of demonstrating them.

Three levels of assurance, escalating — the arc a rigorous PDC course
follows once students stop trusting "it worked when I ran it":

1. dynamic analysis — the lockset race detector flags unsynchronized
   sharing on a *single* run;
2. static analysis — the lock-order graph proves an ABBA deadlock is
   possible without ever provoking it;
3. exhaustive checking — the interleaving explorer walks *every*
   schedule: the racy counter provably loses updates, Peterson's
   algorithm provably never violates mutual exclusion.

Plus the protocol analogue: the Go-Back-N window sweep, where the
simulator quantifies a trade-off no single run exhibits.

Run:  python examples/concurrency_verification.py
"""

import threading


def level1_dynamic() -> None:
    print("\n--- Level 1: dynamic race detection (one run suffices) ---")
    from repro.smp.racedetect import LocksetRaceDetector, SharedVariable

    detector = LocksetRaceDetector()
    balance = SharedVariable("balance", 100, detector)

    def unsynchronized_withdraw():
        balance.write(balance.read() - 10)

    t = threading.Thread(target=unsynchronized_withdraw)
    t.start(); t.join()
    unsynchronized_withdraw()
    print(f"  lockset verdict on 'balance': "
          f"{'RACE' if 'balance' in detector.racy_variables else 'clean'}")

    safe_detector = LocksetRaceDetector()
    safe = SharedVariable("balance", 100, safe_detector)

    def locked_withdraw():
        with safe_detector.held("m"):
            safe.write(safe.read() - 10)

    t = threading.Thread(target=locked_withdraw)
    t.start(); t.join()
    locked_withdraw()
    print(f"  with a consistent lock: "
          f"{'RACE' if safe_detector.reports else 'clean'} "
          f"(candidate lockset {set(safe_detector.candidate_lockset('balance'))})")


def level2_static() -> None:
    print("\n--- Level 2: static deadlock potential (no deadlock needed) ---")
    from repro.smp.deadlock import LockGraph

    graph = LockGraph()
    # Thread A's order...
    graph.on_acquire("accounts"); graph.on_acquire("audit-log")
    graph.on_release("audit-log"); graph.on_release("accounts")
    # ...and thread B's opposite order, observed on a different run:
    graph.on_acquire("audit-log"); graph.on_acquire("accounts")
    graph.on_release("accounts"); graph.on_release("audit-log")
    print(f"  lock-order cycles: {graph.order_violations()}")
    print(f"  a consistent global order exists: {graph.suggest_order() is not None}")


def level3_exhaustive() -> None:
    print("\n--- Level 3: exhaustive interleaving checking ---")
    from repro.smp.interleave import explore, peterson_program, racy_counter_program

    a, b = racy_counter_program(increments=2)
    racy = explore(a, b, {"counter": 0})
    print(f"  counter += 1 twice per thread, unsynchronized: possible "
          f"final values {sorted(racy.final_values('counter'))} "
          f"(lost updates PROVEN, not sampled)")

    p0, p1 = peterson_program()
    peterson = explore(p0, p1, {"flag0": 0, "flag1": 0, "turn": 0, "counter": 0})
    print(f"  Peterson's algorithm: mutual exclusion over ALL schedules = "
          f"{peterson.mutual_exclusion_held}; counter always "
          f"{sorted(peterson.final_values('counter'))}; deadlocks = "
          f"{peterson.deadlocked_schedules}")


def protocol_quantification() -> None:
    print("\n--- Protocols: quantifying the Go-Back-N window trade-off ---")
    from repro.net.gbn import window_sweep

    sweep = window_sweep(num_packets=100, loss_rate=0.1, seed=0)
    print("  window  rounds(~time)  transmissions  efficiency")
    for w in (1, 2, 4, 8, 16):
        r = sweep[w]
        print(f"  {w:<7d} {r.rounds:<14d} {r.transmissions:<14d} "
              f"{r.efficiency:.2f}")
    print("  bigger windows buy latency with redundant retransmissions —")
    print("  the curve selective-repeat exists to flatten.")


if __name__ == "__main__":
    print("Concurrency verification: detect, prove-possible, prove-always")
    level1_dynamic()
    level2_static()
    level3_exhaustive()
    protocol_quantification()

#!/usr/bin/env python
"""§III at planetary scale: the streaming survey pipeline at n=100,000.

The paper surveys 20 programs; this example pushes the identical
analysis through the columnar streaming driver at 100k (or any ``--n``),
regenerating the Fig. 2 / Fig. 3 shapes with flat memory, run-wide
metrics, and a deterministic trace.

Everything on **stdout** is digest-stable for a fixed seed + chunk grid:
the run uses a virtual-clock :class:`~repro.runtime.RunContext`, so two
runs print byte-identical figures, metrics, trace digests, and analysis
digests (progress goes to stderr, which is allowed to show wall-clock
rates).  Sharded runs print the same analysis digest as sequential runs
— the merge-law guarantee, live.

Run:  python examples/survey_at_scale.py [--n 100000] [--workers 4]
"""

import argparse
import hashlib
import json
import sys
import time

from repro.core.pipeline import shard_survey, stream_survey
from repro.core.report import render_fig2, render_fig3
from repro.runtime import RunContext


def analysis_digest(analysis) -> str:
    """A content digest of the SurveyAnalysis, stable across sharding."""
    blob = json.dumps(
        {
            "num_programs": analysis.num_programs,
            "dedicated": analysis.dedicated_course_programs,
            "topic_counts": {t.name: c for t, c in analysis.topic_counts.items()},
            "topic_weights": {t.name: w for t, w in analysis.topic_weights.items()},
            "course_percentages": {
                ct.name: p for ct, p in analysis.course_percentages.items()
            },
        },
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--chunk-size", type=int, default=8192)
    parser.add_argument("--workers", type=int, default=1,
                        help="1 = sequential stream; >1 = sharded")
    parser.add_argument("--backend", choices=["process", "mp"],
                        default="process")
    args = parser.parse_args()

    context = RunContext.deterministic(seed=args.seed, label="survey-at-scale")
    t0 = time.perf_counter()

    def progress(done: int, total: int) -> None:
        rate = done / max(time.perf_counter() - t0, 1e-9)
        print(f"\r  {done:>9,}/{total:,} programs "
              f"({100.0 * done / total:5.1f}%)  {rate:>10,.0f}/sec",
              end="", file=sys.stderr, flush=True)

    if args.workers > 1:
        aggregate = shard_survey(
            args.n, seed=args.seed, chunk_size=args.chunk_size,
            workers=args.workers, backend=args.backend, context=context,
            on_chunk=progress,
        )
    else:
        aggregate = stream_survey(
            args.n, seed=args.seed, chunk_size=args.chunk_size,
            context=context, on_chunk=progress,
        )
    wall = time.perf_counter() - t0
    print(file=sys.stderr)
    print(f"  done in {wall:.2f}s ({args.n / wall:,.0f} programs/sec)",
          file=sys.stderr)

    analysis = aggregate.to_analysis()
    print(f"Survey at scale: n={analysis.num_programs:,} synthetic programs "
          f"(seed {args.seed})")
    print(f"Dedicated-PDC-course programs: "
          f"{analysis.dedicated_course_programs}")
    print()
    print(render_fig2(analysis))
    print()
    print(render_fig3(analysis))
    print()
    print("Pipeline metrics:")
    for name, value in sorted(context.snapshot("survey").items()):
        print(f"  {name:<28s} {value:,.0f}")
    print()
    print(f"trace digest:    {context.tracer.digest()}")
    print(f"analysis digest: {analysis_digest(analysis)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Teach RIT's 'Concepts of Parallel and Distributed Systems' (§IV-C).

The breadth design: five units, each a live demo from the substrate —
multithreading, networked computers (client-server, protocol design,
datagrams), network security, distributed systems/middleware, and
parallel architectures.

Run:  python examples/rit_cpds_course.py
"""

import threading


def unit_multithreading() -> None:
    print("\n--- Unit 1: multithreaded computing ---")
    from repro.oskernel.syncproblems import DiningPhilosophers, ReadersWriters

    naive = DiningPhilosophers(5).analyze_naive()
    print(f"  naive philosophers: deadlock possible = {naive.deadlock_possible} "
          f"(cycle of {len(naive.cycles[0])} forks)")
    run = DiningPhilosophers(5).run_ordered(meals_each=10)
    print(f"  ordered protocol: everyone ate "
          f"{sorted(set(run.meals.values()))[0]} meals, no deadlock")
    concurrency = ReadersWriters().demonstrate_reader_concurrency(4)
    print(f"  readers-writers: {concurrency} readers inside the lock at once")


def unit_networking() -> None:
    print("\n--- Unit 2: networked computers ---")
    from repro.net import Address, KeyValueClient, KeyValueServer, Network
    from repro.net.protocol import LayeredStack, stop_and_wait_recv, stop_and_wait_send
    from repro.net.sockets import DatagramSocket

    stack = LayeredStack()
    frame = stack.encapsulate({"GET": "/grades"}, src="client", dst="server")
    print("  layered encapsulation:")
    for line in stack.trace(frame):
        print(f"    {line}")

    network = Network()
    with KeyValueServer(network, Address("kv", 6379)):
        with KeyValueClient(network, Address("kv", 6379)) as client:
            client.put("course", "CSCI251")
            print(f"  client-server request/response: course -> "
                  f"{client.get('course')!r}")

    lossy = Network(drop_rate=0.25, seed=3)
    tx_sock = DatagramSocket(lossy, Address("tx", 1))
    rx_sock = DatagramSocket(lossy, Address("rx", 1))
    result = {}
    t = threading.Thread(
        target=lambda: result.update(msgs=stop_and_wait_recv(rx_sock, 8))
    )
    t.start()
    sent = stop_and_wait_send(tx_sock, Address("rx", 1), list(range(8)))
    t.join()
    print(f"  stop-and-wait over a 25%-loss link: delivered "
          f"{result['msgs']} in {sent} transmissions "
          f"({lossy.stats.dropped} datagrams lost)")


def unit_security() -> None:
    print("\n--- Unit 3: network security (survey depth) ---")
    from repro.net import Network
    from repro.net.security import (
        caesar_break,
        caesar_encrypt,
        dh_exchange_over_network,
        mac_sign,
        mac_verify,
    )

    ciphertext = caesar_encrypt(
        "meet at the data center after the final exam", 11
    )
    key, plaintext = caesar_break(ciphertext)
    print(f"  Caesar broken by frequency analysis: key={key}, "
          f"plaintext={plaintext[:24]!r}...")
    s1, s2 = dh_exchange_over_network(Network(), 987654321, 123456789)
    print(f"  Diffie-Hellman over the simnet: secrets agree = {s1 == s2}")
    tag = mac_sign(s1, "final grades attached")
    print(f"  MAC verifies = {mac_verify(s2, 'final grades attached', tag)}, "
          f"tamper detected = {not mac_verify(s2, 'ALL As attached', tag)}")


def unit_distributed() -> None:
    print("\n--- Unit 4: distributed systems and middleware ---")
    from repro.dist import NameService, RpcServer, rpc_proxy
    from repro.dist.election import bully_election, ring_election
    from repro.net import Address, Network

    ring = ring_election(list(range(8)), initiator=2, crashed={7})
    bully = bully_election(list(range(8)), initiator=2, crashed={7})
    print(f"  leader election with node 7 crashed: ring -> {ring.leader} "
          f"({ring.messages} msgs), bully -> {bully.leader} "
          f"({bully.messages} msgs)")

    class GradeBook:
        def __init__(self):
            self._grades = {}

        def record(self, student, grade):
            self._grades[student] = grade
            return True

        def lookup(self, student):
            return self._grades.get(student)

    network = Network()
    ns = NameService()
    with RpcServer(network, Address("grades", 9000), GradeBook()):
        ns.register("gradebook", "grades", 9000)
        host, port = ns.lookup("gradebook")
        stub = rpc_proxy(network, Address(host, port))
        stub.record("ada", "A")
        print(f"  distributed object via name service: ada -> "
              f"{stub.lookup('ada')!r}")


def unit_parallel_architectures() -> None:
    print("\n--- Unit 5: parallel computing architectures ---")
    from repro.arch.flynn import gallery_table
    from repro.arch.laws import amdahl_speedup

    for row in gallery_table():
        print(f"  {row['machine']:<22s} {row['class']:<5s} {row['subclass']}")
    print(f"  Amdahl check: f=0.8, p=16 -> "
          f"{float(amdahl_speedup(0.8, 16)):.2f}x")


if __name__ == "__main__":
    print("CSCI251 Concepts of Parallel and Distributed Systems — RIT (§IV-C)")
    unit_multithreading()
    unit_networking()
    unit_security()
    unit_distributed()
    unit_parallel_architectures()

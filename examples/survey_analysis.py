#!/usr/bin/env python
"""Reproduce §III end to end: the 20-program survey analysis.

Generates the calibrated synthetic survey (see DESIGN.md's substitution
note), runs the paper's weighted-sum method, regenerates Figs. 2 and 3,
and then pushes further than the paper: per-program compliance margins,
CDER concept coverage, and the weighted-vs-unweighted ranking ablation.

Run:  python examples/survey_analysis.py
"""

from repro.core import check_program, generate_survey
from repro.core.coverage import CoverageMatrix, weighted_topic_scores
from repro.core.report import render_fig2, render_fig3
from repro.core.survey import analyze_survey
from repro.core.taxonomy import CderConcept, PdcTopic


def main() -> None:
    programs = generate_survey(seed=2021)
    analysis = analyze_survey(programs)

    print(render_fig2(analysis))
    print()
    print(render_fig3(analysis))

    # -- beyond the paper: per-program detail --------------------------------
    print()
    print("Per-program PDC emphasis (total depth-weighted coverage):")
    rows = []
    for program in programs:
        matrix = CoverageMatrix.of(program)
        report = check_program(program, matrix=matrix)
        rows.append((matrix.total_weight(), program, report))
    for weight, program, report in sorted(rows, reverse=True, key=lambda r: r[0]):
        star = "*" if program.has_dedicated_pdc_course() else " "
        print(f"  {star} {program.institution:<28s} weight={weight:5.1f}  "
              f"topics={len(report.covered_topics):2d}/14  "
              f"newhall={report.newhall.score}/4")
    print("  (* = dedicated parallel-programming course)")

    print()
    print("CDER concept coverage across the survey:")
    reports = [report for _, _, report in rows]
    for concept in CderConcept:
        covering = sum(1 for r in reports if r.concept_coverage[concept])
        print(f"  {concept.value:<13s} covered by {covering}/20 programs")

    print()
    print("Ablation — does depth weighting change the topic ranking?")
    weighted = weighted_topic_scores(programs, weighted=True)
    unweighted = weighted_topic_scores(programs, weighted=False)
    rank_w = sorted(PdcTopic, key=lambda t: -weighted[t])[:5]
    rank_u = sorted(PdcTopic, key=lambda t: -unweighted[t])[:5]
    print(f"  weighted top-5:   {[t.name for t in rank_w]}")
    print(f"  unweighted top-5: {[t.name for t in rank_u]}")


if __name__ == "__main__":
    main()

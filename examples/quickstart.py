#!/usr/bin/env python
"""Quickstart: the two halves of PDC-Ed in five minutes.

1.  The curriculum engine — regenerate the paper's headline analysis:
    Table I's concept-course mapping, the 20-program survey (Figs. 2-3),
    and the three case-study compliance verdicts.
2.  The teaching substrate — run one representative artifact from each
    course column of Table I.

Run:  python examples/quickstart.py
"""

import numpy as np


def curriculum_engine_tour() -> None:
    from repro.core import check_program, generate_survey
    from repro.core.casestudies import case_study_programs
    from repro.core.report import render_fig2, render_fig3, render_table1
    from repro.core.survey import analyze_survey

    print("=" * 72)
    print("PART 1 — the curriculum & accreditation engine")
    print("=" * 72)

    print()
    print(render_table1())

    analysis = analyze_survey(generate_survey(seed=2021))
    print()
    print(render_fig2(analysis))
    print()
    print(render_fig3(analysis))

    print()
    print("Case studies (paper §IV):")
    for program in case_study_programs():
        print(" ", check_program(program).summary())


def substrate_tour() -> None:
    print()
    print("=" * 72)
    print("PART 2 — the PDC teaching substrate (one demo per Table-I column)")
    print("=" * 72)

    # Systems programming column: threads + a data race caught statically.
    from repro.smp.racedetect import LocksetRaceDetector, SharedVariable
    import threading

    detector = LocksetRaceDetector()
    counter = SharedVariable("counter", 0, detector)

    def racy():
        counter.write(counter.read() + 1)

    t = threading.Thread(target=racy)
    t.start(); t.join()
    racy()
    print(f"\n[systems programming] lockset race detector flags: "
          f"{sorted(detector.racy_variables)}")

    # Architecture column: Amdahl's law + MESI coherence.
    from repro.arch.coherence import CoherentSystem, Protocol, private_rw_workload
    from repro.arch.laws import amdahl_speedup

    print(f"[architecture] Amdahl speedup, f=0.95, p=64: "
          f"{float(amdahl_speedup(0.95, 64)):.2f} (limit 20)")
    mesi = CoherentSystem(4, Protocol.MESI)
    mesi.run_trace(private_rw_workload(4, 5))
    print(f"[architecture] MESI on private data: "
          f"{mesi.stats.bus_upgr} upgrade broadcasts (MSI would need 4)")

    # Operating systems column: scheduler comparison.
    from repro.oskernel import SRTF, FCFS, Workloads, simulate

    workload = Workloads.textbook()
    print(f"[operating systems] avg waiting on the textbook workload: "
          f"FCFS={simulate(workload, FCFS()).avg_waiting:.1f}, "
          f"SRTF={simulate(workload, SRTF()).avg_waiting:.1f}")

    # Database column: a deadlock detected, a victim retried, and the
    # committed history proven serializable.
    from repro.db import Op, Transaction, TransactionEngine, is_conflict_serializable
    from repro.db.engine import committed_projection

    t1 = Transaction(1, [Op.read(1, "x"), Op.write(1, "y")])
    t2 = Transaction(2, [Op.read(2, "y"), Op.write(2, "x")])
    report = TransactionEngine([t1, t2]).run()
    print(f"[database] history: {report.history} "
          f"(deadlocks={report.deadlocks}, serializable="
          f"{is_conflict_serializable(committed_projection(report.history))})")

    # Networks column: client-server key-value store over the simnet.
    from repro.net import Address, KeyValueClient, KeyValueServer, Network

    network = Network()
    with KeyValueServer(network, Address("kv", 6379)):
        with KeyValueClient(network, Address("kv", 6379)) as client:
            client.put("paper", "EduPar 2021")
            print(f"[networks] kv roundtrip: paper -> {client.get('paper')!r}")

    # And the dedicated-course material: MPI pi + a GPU reduction.
    from repro.mp import SUM, run_spmd

    def mpi_pi(comm, n=100_000):
        rank, size = comm.Get_rank(), comm.Get_size()
        h = 1.0 / n
        local = sum(4.0 / (1.0 + (h * (i + 0.5)) ** 2) for i in range(rank, n, size))
        return comm.allreduce(local * h, op=SUM)

    pi = run_spmd(4, mpi_pi)[0]
    print(f"[message passing] pi over 4 ranks: {pi:.10f}")

    from repro.gpu import Device
    from repro.gpu.libdevice import device_reduce_sum

    dev = Device()
    total, stats = device_reduce_sum(dev, np.arange(10_000.0))
    print(f"[manycore/SIMT] device reduction: {total:.0f} "
          f"({stats.transactions} memory transactions, "
          f"coalescing {stats.coalescing_efficiency():.0%})")


if __name__ == "__main__":
    curriculum_engine_tour()
    substrate_tour()
    print("\nQuickstart complete.")

#!/usr/bin/env python
"""One lab, one timeline: the deterministic runtime substrate in action.

Every simulation subsystem — the SPMD ranks, the network fabric, the GPU
device, the OS scheduler, the RPC middleware, the cache model — accepts
the same :class:`repro.runtime.RunContext`.  Give them one and they share
a seed-derived RNG, a virtual clock, a metric registry, and a tracer, so
an entire multi-subsystem lab becomes:

- **reproducible** — same root seed, byte-identical exported trace;
- **observable** — one ``snapshot()`` reads every counter that used to
  live in six bespoke stats classes;
- **inspectable** — the exported ``trace.json`` loads straight into any
  Chrome-trace viewer (``chrome://tracing``, Perfetto).

Run:  python examples/instrumented_lab.py [--out DIR]
"""

import argparse
import threading

from repro.arch.cache import Cache, CacheConfig
from repro.dist.middleware import NameService, RpcServer, rpc_proxy
from repro.gpu import Device, GlobalArray, launch
from repro.mp.runtime import run_spmd
from repro.net.simnet import Address, Network
from repro.net.sockets import DatagramSocket
from repro.oskernel.process import Process
from repro.oskernel.scheduler import RoundRobin, simulate
from repro.runtime import RunContext


class Scoreboard:
    """The lab's RPC-exported object: a thread-safe result collector."""

    def __init__(self):
        self._scores = {}
        self._lock = threading.Lock()

    def post(self, name, value):
        with self._lock:
            self._scores[name] = value
        return True

    def tally(self):
        with self._lock:
            return dict(self._scores)


def ring_allsum(comm):
    """Each rank contributes its rank; the ring circulates the sum."""
    total = comm.rank
    right, left = (comm.rank + 1) % comm.size, (comm.rank - 1) % comm.size
    token = comm.rank
    for _ in range(comm.size - 1):
        comm.send(token, dest=right)
        token = comm.recv(source=left)
        total += token
    return total


def saxpy(ctx, out):
    i = ctx.global_id()
    out[i] = 2.0 * float(i) + 1.0


def run_lab(seed: int) -> RunContext:
    ctx = RunContext.deterministic(seed=seed, label="instrumented-lab")

    # 1. Message passing: a ring all-reduce on 4 rank-threads.
    sums = run_spmd(4, ring_allsum, context=ctx)
    assert sums == [6, 6, 6, 6]

    # 2. Networking + middleware: results posted over RPC, found by name.
    network = Network(drop_rate=0.3, context=ctx)
    names = NameService(context=ctx)
    names.register("scoreboard", "server", 7000)
    with RpcServer(network, Address("server", 7000), Scoreboard(),
                   context=ctx):
        host, port = names.lookup("scoreboard")
        client = rpc_proxy(network, Address(host, port))
        client.post("ring.sum", sums[0])
        tally = client.tally()
        client._close()
    assert tally["ring.sum"] == 6

    # ...and a lossy datagram burst whose drops come from the seeded
    # stream (same seed, same third datagram lost — forever).
    box = DatagramSocket(network, Address("box", 1))
    tx = DatagramSocket(network, Address("tx", 1))
    for i in range(20):
        tx.sendto({"n": i}, Address("box", 1))
    box.close()
    tx.close()

    # 3. GPU: a coalesced saxpy on the simulated device.
    device = Device(context=ctx)
    out = GlobalArray.zeros(128)
    launch(device, saxpy, grid=4, block=32)(out)

    # 4. OS scheduling: every Gantt slice lands on the same timeline.
    simulate([Process(1, 0, 6), Process(2, 1, 4), Process(3, 2, 2)],
             RoundRobin(quantum=2), context=ctx)

    # 5. Architecture: the cache model feeds the same registry.
    cache = Cache(CacheConfig(), context=ctx)
    for address in (0, 64, 128, 0, 64, 4096):
        cache.access(address)

    return ctx


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="directory to write trace.json / trace.jsonl "
                             "/ metrics.json into")
    parser.add_argument("--seed", type=int, default=2021)
    opts = parser.parse_args()

    ctx = run_lab(opts.seed)

    print("instrumented lab: one registry, every subsystem\n")
    snapshot = ctx.snapshot()
    for prefix in ("mp", "net", "dist", "gpu", "sched", "arch"):
        for name in sorted(k for k in snapshot if k.split(".")[0] == prefix):
            value = snapshot[name]
            if isinstance(value, dict):  # histogram summary
                value = (f"count={value['count']} mean={value['mean']:.2f} "
                         f"max={value['max']:.0f}")
            print(f"  {name:<36s} {value}")

    print(f"\n  trace events: {len(ctx.tracer)}  "
          f"digest: {ctx.tracer.digest()[:16]}…")
    rerun = run_lab(opts.seed)
    print(f"  re-run same seed, digests equal: "
          f"{rerun.tracer.digest() == ctx.tracer.digest()}")

    if opts.out:
        paths = ctx.save(opts.out)
        print("\n  wrote:")
        for kind, path in paths.items():
            print(f"    {kind:<12s} {path}")
        print("  (load trace.json in chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The distributed-computing course's lab session (AUC CSCE425, §IV-B(6)).

"Topics ranging from modeling and specification to consistency and
inter-process communication, load balancing, process migration, and
distributed challenges" — each gets a live, deterministic demo:

1. modeling: logical clocks and causality;
2. coordination: election, then distributed mutual exclusion;
3. consistency: linearizability vs sequential vs eventual;
4. load balancing and process migration;
5. distributed challenges: global snapshots and atomic commitment.

Run:  python examples/distributed_systems_lab.py
"""


def modeling_unit() -> None:
    print("\n--- 1. Modeling: logical time and causality ---")
    from repro.dist.clocks import concurrent, happens_before, run_message_trace

    events = run_message_trace(
        3, [("local", 0, 0), ("msg", 0, 1), ("msg", 1, 2), ("local", 2, 0)]
    )
    first, last = events[0], events[-1]
    print(f"  first event vector {first.vector} -> last event vector "
          f"{last.vector}: happens-before = "
          f"{happens_before(first.vector, last.vector)}")
    a = run_message_trace(2, [("local", 0, 0), ("local", 1, 0)])
    print(f"  two isolated local events concurrent = "
          f"{concurrent(a[0].vector, a[1].vector)}")


def coordination_unit() -> None:
    print("\n--- 2. Coordination: election, then mutual exclusion ---")
    from repro.dist.election import bully_election
    from repro.dist.mutex import MutexAlgorithm, simulate_mutex

    election = bully_election(list(range(6)), initiator=1, crashed={5})
    print(f"  bully election with node 5 down: leader={election.leader}, "
          f"{election.messages} messages")
    requests = [(1, 0), (2, 2), (3, 4), (4, 1)]
    for algo in MutexAlgorithm:
        result = simulate_mutex(6, requests, algo)
        print(f"  {algo.value:<16s} {result.messages_per_entry:5.2f} "
              f"messages/entry")


def consistency_unit() -> None:
    print("\n--- 3. Consistency models, separated by checkers ---")
    from repro.dist.consistency import (
        EventuallyConsistentStore,
        HistoryEvent,
        is_linearizable,
        is_sequentially_consistent,
    )

    stale_read = [
        HistoryEvent(0, "w", "x", 1, start=0.0, end=1.0),
        HistoryEvent(1, "r", "x", None, start=2.0, end=3.0),  # reads initial
    ]
    print(f"  stale read after a completed write: linearizable="
          f"{is_linearizable(stale_read)}, sequentially consistent="
          f"{is_sequentially_consistent(stale_read)}")

    store = EventuallyConsistentStore(5)
    store.write(0, "profile", "v1", timestamp=1.0)
    store.write(4, "profile", "v2", timestamp=2.0)
    print(f"  eventual consistency: replica 2 reads "
          f"{store.read(2, 'profile')!r} before anti-entropy, "
          f"{(store.converge(), store.read(2, 'profile'))[1]!r} after "
          f"(converged in {store.merges // 5} round(s))")


def placement_unit() -> None:
    print("\n--- 4. Load balancing and process migration ---")
    from repro.dist.loadbalance import compare_policies
    from repro.dist.migration import migration_sweep

    results = compare_policies(8, 1000, seed=4, heavy_tail=True)
    for name, report in results.items():
        print(f"  {name:<13s} max load {report.max_load:7.1f} "
              f"(imbalance {report.imbalance:.2f})")

    print("  migration: makespan vs transfer cost (hotspot on node 0)")
    for cost, row in migration_sweep(transfer_costs=(0.0, 4.0, 16.0)):
        print(f"    cost={cost:4.1f}  never={row['never']:.0f}  "
              f"threshold={row['threshold']:.0f}  greedy={row['greedy']:.0f}")


def challenges_unit() -> None:
    print("\n--- 5. Distributed challenges: snapshots and atomic commit ---")
    from repro.dist.commit import Coordinator, Participant
    from repro.dist.snapshot import TokenSystem

    system = TokenSystem([25, 25, 25, 25])
    system.transfer(0, 1, 5)
    system.transfer(2, 3, 7)
    system.start_snapshot(1)
    system.transfer(3, 0, 2)  # traffic continues during the snapshot
    system.deliver_all()
    snapshot = system.snapshot()
    print(f"  Chandy-Lamport: snapshot total {snapshot.total} == live total "
          f"{system.total} (in-flight recorded: "
          f"{dict(snapshot.channel_states)})")

    happy = Coordinator([Participant(f"db{i}") for i in range(3)]).run()
    print(f"  2PC unanimous: committed={happy.committed} in "
          f"{happy.messages} messages")
    blocked = Participant("db1", crash_after_vote=True)
    outcome = Coordinator([Participant("db0"), blocked]).run()
    print(f"  2PC with a prepared-then-crashed participant: "
          f"committed={outcome.committed}, blocked={outcome.blocked_participants}")
    blocked.recover(outcome)
    print(f"  ...after recovery: db1 state = {blocked.state.value}")


if __name__ == "__main__":
    print("CSCE425 Fundamentals of Distributed Computing — lab session (§IV-B)")
    modeling_unit()
    coordination_unit()
    consistency_unit()
    placement_unit()
    challenges_unit()
